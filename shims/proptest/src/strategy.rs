//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Full-range values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the whole value space of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));

/// Weighted union over boxed strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or the weights sum to zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }

    /// Boxes a strategy for storage inside a union.
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return strategy.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll is bounded by the total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_maps_and_unions_generate() {
        let mut rng = StdRng::seed_from_u64(1);
        let doubled = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let union = crate::prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| union.generate(&mut rng) == 1).count();
        assert!((650..850).contains(&ones), "weighting off: {ones}");
        let pair = (0u8..4, any::<bool>()).generate(&mut rng);
        assert!(pair.0 < 4);
    }
}
