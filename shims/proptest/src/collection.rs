//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of `element` samples with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_the_range() {
        let strategy = vec(0u8..10, 2..5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
