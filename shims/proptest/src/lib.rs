//! Minimal offline stand-in for `proptest`: random-input property
//! testing without shrinking. Each `proptest!` test samples its
//! strategies `cases` times from a deterministic per-case RNG and runs
//! the body; a failing case reports its case number and seed so the run
//! can be reproduced (re-running the test replays the same sequence —
//! sampling is fully deterministic).

pub mod collection;
pub mod strategy;
pub mod test_runner;

// Re-exported for the `proptest!` macro expansion, which runs in the
// calling crate (that crate need not depend on `rand` itself).
#[doc(hidden)]
pub use rand as rand_for_macros;

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Supports the subset of upstream syntax the
/// workspace uses: an optional `#![proptest_config(expr)]` header and
/// `fn name(pattern in strategy, ...) { body }` items carrying outer
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$first_attr:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default())
            $(#[$first_attr])*
            fn $($rest)*
        );
    };
    (
        @impl ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    // Deterministic per-case seed: reruns replay failures.
                    let seed = 0x5052_4f50_5445_5354u64
                        ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut runner_rng =
                        <$crate::rand_for_macros::rngs::StdRng
                            as $crate::rand_for_macros::SeedableRng>::seed_from_u64(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut runner_rng,
                        );
                    )*
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} (seed {seed:#x}) failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Weighted or unweighted union of strategies producing the same value
/// type, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Union::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Union::boxed($strategy))),+
        ])
    };
}
