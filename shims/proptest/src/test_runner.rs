//! Test-runner configuration and case-level failure reporting.

use std::fmt;

/// Knobs of the `proptest!` runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed test case (fails the case, reported with its seed).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from any displayable reason.
    pub fn fail<E: fmt::Display>(reason: E) -> Self {
        TestCaseError(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
