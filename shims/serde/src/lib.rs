//! Minimal offline stand-in for `serde`: marker traits plus no-op
//! derive macros, enough for `#[derive(Serialize, Deserialize)]` to
//! compile. The workspace does its own wire-format encoding (see
//! `psmr_common::envelope`), so no serde serialization runs at runtime.

pub use serde_derive_shim::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
