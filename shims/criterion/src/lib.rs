//! Minimal offline stand-in for `criterion`: the harness types the
//! workspace's benches use, with a simple timing loop and a plain-text
//! report (no statistics, plots or baselines).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark manager; collects groups and prints timings to stdout.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (group_cfg, name) = (self.clone(), name.into());
        run_bench(&group_cfg, &name, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's throughput unit (recorded, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_bench(self.criterion, &label, f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench(cfg: &Criterion, label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up: cfg.warm_up_time,
        measure: cfg.measurement_time,
        samples: cfg.sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.total / bencher.iters
    };
    println!(
        "bench {label:<48} {per_iter:>12?}/iter ({} iters)",
        bencher.iters
    );
}

/// Passed to benchmark closures to drive the timing loop.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let deadline = Instant::now() + self.measure;
        let mut iters = 0u32;
        let started = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if Instant::now() >= deadline || iters as usize >= self.samples * 1000 {
                break;
            }
        }
        self.total += started.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.measure;
        let mut iters = 0u32;
        let mut total = Duration::ZERO;
        loop {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            total += started.elapsed();
            iters += 1;
            if Instant::now() >= deadline || iters as usize >= self.samples * 1000 {
                break;
            }
        }
        self.total += total;
        self.iters += iters;
    }
}

/// Batch sizing hint of `iter_batched` (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Declared throughput unit of a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Builds an id from a function name and parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Declares a benchmark group function, in either the list or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
