//! Minimal offline stand-in for the `rand` crate: the [`Rng`] /
//! [`SeedableRng`] traits and a xoshiro256++ [`rngs::StdRng`]. Not
//! cryptographically secure — statistical quality only, which is all the
//! workspace's workload generators and simulators need.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A sample from the standard distribution of `T` (full range for
    /// integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in 0..=1");
        unit_f64(self.next_u64()) < p
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution.
pub trait Standard {
    /// Draws one sample.
    fn gen_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for f64 {
    fn gen_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn gen_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded through splitmix64 — deterministic, fast, and
    /// statistically strong enough for workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: u64 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
