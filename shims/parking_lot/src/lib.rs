//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and the `Arc`
//! receiver methods (`read_arc`/`write_arc`) return owned guards that
//! keep the lock alive through an `Arc`.

use std::fmt;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Marker standing in for parking_lot's raw rwlock type parameter.
#[derive(Debug, Clone, Copy)]
pub struct RawRwLock;

// ---------------------------------------------------------------- Mutex

/// A mutex whose `lock` ignores poisoning, as parking_lot's does.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// -------------------------------------------------------------- Condvar

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks on the guard's mutex until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

/// A reader-writer lock whose accessors ignore poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Shared access through an `Arc`, returning an owned guard.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T>
    where
        T: 'static,
    {
        let lock = Arc::clone(self);
        // SAFETY: the guard borrows `lock.0`, which lives as long as the
        // Arc stored alongside it; the guard is dropped before the Arc
        // (see Drop below), so the 'static lifetime is never observable.
        let guard = unsafe {
            std::mem::transmute::<
                std::sync::RwLockReadGuard<'_, T>,
                std::sync::RwLockReadGuard<'static, T>,
            >(lock.0.read().unwrap_or_else(|e| e.into_inner()))
        };
        ArcRwLockReadGuard {
            guard: ManuallyDrop::new(guard),
            _lock: lock,
            _raw: PhantomData,
        }
    }

    /// Exclusive access through an `Arc`, returning an owned guard.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: 'static,
    {
        let lock = Arc::clone(self);
        // SAFETY: as in `read_arc`.
        let guard = unsafe {
            std::mem::transmute::<
                std::sync::RwLockWriteGuard<'_, T>,
                std::sync::RwLockWriteGuard<'static, T>,
            >(lock.0.write().unwrap_or_else(|e| e.into_inner()))
        };
        ArcRwLockWriteGuard {
            guard: ManuallyDrop::new(guard),
            _lock: lock,
            _raw: PhantomData,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

/// Shared-access guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive-access guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Owned shared-access guard of [`RwLock::read_arc`].
pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockReadGuard<'static, T>>,
    _lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized + 'static> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized + 'static> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        // Drop the guard before the Arc it borrows from.
        unsafe { ManuallyDrop::drop(&mut self.guard) }
    }
}

/// Owned exclusive-access guard of [`RwLock::write_arc`].
pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
    guard: ManuallyDrop<std::sync::RwLockWriteGuard<'static, T>>,
    _lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized + 'static> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T: ?Sized + 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R, T: ?Sized + 'static> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.guard) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let m = Arc::new(Mutex::new(0));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn arc_guards_keep_the_lock_alive() {
        let lock = Arc::new(RwLock::new(5));
        let read = lock.read_arc();
        assert_eq!(*read, 5);
        drop(read);
        let mut write = lock.write_arc();
        *write = 6;
        drop(write);
        assert_eq!(*lock.read(), 6);
    }
}
