//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer: clones share
//! the underlying allocation through an `Arc`, and `&'static` data is
//! referenced without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps static data without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes(Repr::Static(data))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_data() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..2], &[1, 2]);
    }

    #[test]
    fn static_and_copied_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }
}
