//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer: clones share
//! the underlying allocation through an `Arc`, and `&'static` data is
//! referenced without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A window into a shared allocation: `buf[start..end]`.
    Shared {
        buf: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps static data without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes(Repr::Static(data))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let buf: Arc<[u8]> = Arc::from(data);
        let end = buf.len();
        Bytes(Repr::Shared { buf, start: 0, end })
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a sub-window of this buffer **without copying**: the
    /// returned [`Bytes`] shares the same allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let from = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let to = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            from <= to && to <= self.len(),
            "slice {from}..{to} out of bounds of {}",
            self.len()
        );
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[from..to])),
            Repr::Shared { buf, start, .. } => Bytes(Repr::Shared {
                buf: Arc::clone(buf),
                start: start + from,
                end: start + to,
            }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared { buf, start, end } => &buf[*start..*end],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let buf: Arc<[u8]> = Arc::from(v);
        let end = buf.len();
        Bytes(Repr::Shared { buf, start: 0, end })
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_data() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..2], &[1, 2]);
    }

    #[test]
    fn static_and_copied_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let whole = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = whole.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let inner = mid.slice(1..=1);
        assert_eq!(&inner[..], &[3]);
        assert_eq!(whole.slice(..).len(), 6);
        assert!(whole.slice(6..6).is_empty());
        let s = Bytes::from_static(b"hello").slice(1..3);
        assert_eq!(&s[..], b"el");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let _ = Bytes::from(vec![1, 2]).slice(1..4);
    }
}
