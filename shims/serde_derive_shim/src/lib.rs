//! No-op derive macros backing the offline `serde` shim: the workspace
//! only needs `#[derive(Serialize, Deserialize)]` to *compile*; nothing
//! serializes through serde at runtime.

use proc_macro::TokenStream;

/// Accepts and discards a `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
