//! An mpmc channel with the `crossbeam-channel` API surface the
//! workspace uses: `bounded`/`unbounded` constructors, clonable senders
//! *and* receivers, blocking/timeout/non-blocking receives, and
//! disconnect semantics (a receive on a channel with no senders drains
//! the queue and then errors; a send with no receivers errors).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use crate::select;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    cap: Option<usize>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains an item or the last sender leaves.
    recv_ready: Condvar,
    /// Signalled when the queue loses an item or the last receiver leaves.
    send_ready: Condvar,
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            cap,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// Creates a channel with unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

/// Creates a channel holding at most `cap` queued messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap.max(1)))
}

/// The sending half; clonable.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clonable (multi-consumer).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match state.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.0.send_ready.wait(state).expect("channel lock");
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.0.recv_ready.notify_one();
        Ok(())
    }

    /// Non-blocking send: fails instead of waiting on a full bounded
    /// channel.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone; both
    /// hand the message back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.0.state.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = state.cap {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.0.recv_ready.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.state.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether both halves refer to the same channel.
    pub fn same_channel(&self, other: &Sender<T>) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// Errors once the queue is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock().expect("channel lock");
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.0.send_ready.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.0.recv_ready.wait(state).expect("channel lock");
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.0.state.lock().expect("channel lock");
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.0.send_ready.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .0
                .recv_ready
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() && state.senders > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.0.state.lock().expect("channel lock");
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.0.send_ready.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.state.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel lock").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel lock").receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.0.recv_ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.0.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error of [`Sender::send`]: every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error of [`Receiver::recv`]: channel empty with no senders left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with nothing queued.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(tx.len(), 1);
        assert!(tx.same_channel(&tx.clone()));
        let (other, _keep) = bounded::<i32>(1);
        assert!(!tx.same_channel(&other));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_macro_picks_ready_arm() {
        let (tx, rx) = unbounded();
        let (_tx2, rx2) = unbounded::<u8>();
        tx.send(5u8).unwrap();
        let mut got = None;
        crate::select! {
            recv(rx) -> v => { got = v.ok(); }
            // rx2 never fires; if it somehow did, the assert below catches
            // the clobbered value (a diverging arm would warn in the macro
            // expansion).
            recv(rx2) -> _v => { got = None; }
            default(Duration::from_millis(5)) => {}
        }
        assert_eq!(got, Some(5));
    }

    #[test]
    fn select_macro_hits_default_on_timeout() {
        let (_tx, rx) = unbounded::<u8>();
        let mut fell_through = false;
        crate::select! {
            // rx never fires; if it did, fell_through stays false and the
            // assert below reports it.
            recv(rx) -> _v => {}
            default(Duration::from_millis(2)) => { fell_through = true; }
        }
        assert!(fell_through, "nothing was sent, default must fire");
    }
}
