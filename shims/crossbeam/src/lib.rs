//! Minimal offline stand-in for `crossbeam` — the `channel` module only.

pub mod channel;

/// Polling `select!` over channel receive arms plus a `default(timeout)`
/// arm, mirroring the subset of `crossbeam::channel::select!` the
/// workspace uses. Each `recv(rx) -> var` arm binds `var` to
/// `Result<T, RecvError>`; disconnected channels fire their arm with
/// `Err(RecvError)`.
#[macro_export]
macro_rules! select {
    (
        $(recv($rx:expr) -> $var:pat => $body:block)+
        default($timeout:expr) => $default:block
    ) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        'select_loop: loop {
            $(
                let __polled = match $crate::channel::Receiver::try_recv(&$rx) {
                    ::core::result::Result::Ok(v) => {
                        ::core::option::Option::Some(::core::result::Result::Ok(v))
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        ::core::option::Option::Some(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ))
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {
                        ::core::option::Option::None
                    }
                };
                if let ::core::option::Option::Some(__ready) = __polled {
                    let $var = __ready;
                    { $body }
                    break 'select_loop;
                }
            )+
            if ::std::time::Instant::now() >= __deadline {
                { $default }
                break 'select_loop;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(50));
        }
    }};
}
