//! Workspace-level integration tests: the paper's two services running on
//! the full stack (client proxy → C-G → Paxos-backed multicast →
//! deterministic merge → worker threads → service), checked for agreement
//! across engines and linearizability of concurrent histories.

use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, NoRepEngine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, LockedKvEngine};
use psmr_suite::sim::check::{assert_linearizable, client_session, kv, KEYS};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500));
    cfg
}

/// The same deterministic script must yield identical responses on every
/// engine (they implement the same sequential service).
#[test]
fn all_engines_agree_on_a_sequential_script() {
    let script: Vec<KvOp> = (0..200u64)
        .map(|i| match i % 5 {
            0 => KvOp::Insert {
                key: 1000 + i,
                value: i,
            },
            1 => KvOp::Read { key: i % 50 },
            2 => KvOp::Update {
                key: i % 50,
                value: i * 7,
            },
            3 => KvOp::Read { key: 1000 + i - 3 },
            _ => KvOp::Delete { key: 1000 + i - 4 },
        })
        .collect();

    let run = |mut client: psmr_suite::core::ClientProxy| -> Vec<KvResult> {
        script.iter().map(|op| kv(&mut client, *op)).collect()
    };

    let map = fine_dependency_spec().into_map();
    let factory = || psmr_suite::kvstore::KvService::with_keys(50);

    let smr = SmrEngine::spawn(&cfg(1), factory);
    let expected = run(smr.client());
    smr.shutdown();

    let psmr = PsmrEngine::spawn(&cfg(4), map.clone(), factory);
    assert_eq!(run(psmr.client()), expected, "P-SMR diverged from SMR");
    psmr.shutdown();

    let spsmr = SpSmrEngine::spawn(&cfg(4), map.clone(), factory);
    assert_eq!(run(spsmr.client()), expected, "sP-SMR diverged from SMR");
    spsmr.shutdown();

    let norep = NoRepEngine::spawn(&cfg(4), map, factory);
    assert_eq!(run(norep.client()), expected, "no-rep diverged from SMR");
    norep.shutdown();

    let bdb = LockedKvEngine::spawn(4, 50);
    assert_eq!(run(bdb.client()), expected, "BDB diverged from SMR");
    bdb.shutdown();
}

/// Concurrent multi-client store traffic over P-SMR is linearizable
/// per key (the §IV-E claim, checked with the Wing&Gong searcher).
#[test]
fn psmr_kvstore_history_is_linearizable() {
    let engine = Arc::new(PsmrEngine::spawn(
        &cfg(4),
        fine_dependency_spec().into_map(),
        || psmr_suite::kvstore::KvService::with_keys(KEYS),
    ));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..5u64 {
        let client = engine.client();
        handles.push(std::thread::spawn(move || {
            client_session(client, c, 40, t0)
        }));
    }
    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

/// Deadlock-freedom (§IV-E): a burst of interleaved global and keyed
/// commands from many clients completes without wedging.
#[test]
fn psmr_dependent_burst_makes_progress() {
    let engine = Arc::new(PsmrEngine::spawn(
        &cfg(6),
        fine_dependency_spec().into_map(),
        || psmr_suite::kvstore::KvService::with_keys(100),
    ));
    let mut handles = Vec::new();
    for c in 0..6u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = engine.client();
            for i in 0..60u64 {
                match i % 3 {
                    0 => {
                        kv(
                            &mut client,
                            KvOp::Insert {
                                key: 10_000 + c * 100 + i,
                                value: i,
                            },
                        );
                    }
                    1 => {
                        kv(
                            &mut client,
                            KvOp::Delete {
                                key: 10_000 + c * 100 + i - 1,
                            },
                        );
                    }
                    _ => {
                        kv(
                            &mut client,
                            KvOp::Update {
                                key: i % 100,
                                value: i,
                            },
                        );
                    }
                }
            }
        }));
    }
    // A watchdog bounds the test: if Algorithm 1 deadlocked, joins would
    // hang and the harness timeout would fire; finishing is the assertion.
    for h in handles {
        h.join().unwrap();
    }
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

/// The store stays consistent across a mix of every command type issued
/// through different clients: final reads agree with a serial model run.
#[test]
fn psmr_final_state_matches_observed_acks() {
    let engine = PsmrEngine::spawn(&cfg(3), fine_dependency_spec().into_map(), || {
        psmr_suite::kvstore::KvService::with_keys(0)
    });
    let mut client = engine.client();
    // Inserts either succeed or report Err (already present) — never both
    // succeed for the same key across two clients.
    let mut client2 = engine.client();
    let mut acked = 0;
    for k in 0..50u64 {
        let a = kv(&mut client, KvOp::Insert { key: k, value: 1 });
        let b = kv(&mut client2, KvOp::Insert { key: k, value: 2 });
        match (a, b) {
            (KvResult::Ok, KvResult::Err) | (KvResult::Err, KvResult::Ok) => acked += 1,
            other => panic!("key {k}: double-accepted insert {other:?}"),
        }
    }
    assert_eq!(acked, 50);
    // Every key present exactly once; value is whichever insert won.
    for k in 0..50u64 {
        match kv(&mut client, KvOp::Read { key: k }) {
            KvResult::Value(v) => assert!(v == 1 || v == 2, "key {k} has value {v}"),
            other => panic!("key {k}: {other:?}"),
        }
    }
    drop((client, client2));
    engine.shutdown();
}
