//! Crash/recovery integration tests for the checkpoint subsystem
//! (`psmr-recovery`): a replica crashed under a live kvstore workload
//! rejoins from `(latest checkpoint, retained log suffix)` and converges
//! to byte-identical service state, while the client-observed history
//! stays linearizable; engines keep committing when one acceptor of a
//! Paxos group crash-stops; checkpoints keep the ordered logs trimmed;
//! restarts recover **disk-first with peer fallback** (own durable
//! snapshot, then chunked state transfer from a live peer), survive a
//! peer crashing mid-transfer, and rejoin across a remap epoch.

use psmr_suite::common::ids::{GroupId, ReplicaId};
use psmr_suite::common::metrics::{counters, global};
use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{
    Engine, NoRepEngine, PsmrEngine, RecoverySource, SmrEngine, SpSmrEngine,
};
use psmr_suite::core::remap::{RemapTable, RemappableMap, REMAP};
use psmr_suite::core::ClientProxy;
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, KvService};
use psmr_suite::recovery::{RecoveryError, TransferError};
use psmr_suite::sim::check::{
    assert_linearizable, await_checkpoint, client_session, kv, unique_dir, KEYS,
};
use std::time::{Duration, Instant};

fn cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500))
        .checkpoint_interval(Some(Duration::from_millis(20)));
    cfg
}

/// Polls until both replicas' deterministic snapshots are byte-identical
/// (the shared helper keyed by raw replica index).
fn await_convergence(
    service_of: impl Fn(
        ReplicaId,
    )
        -> Option<std::sync::Arc<dyn psmr_suite::core::service::RecoverableService>>,
) {
    psmr_suite::sim::check::await_convergence(|r| service_of(ReplicaId::new(r)));
}

/// The acceptance scenario for P-SMR: crash replica 1 while 4 clients
/// hammer the store, restart it from the latest coordinated checkpoint,
/// and verify (a) the surviving replica kept the history linearizable
/// throughout, and (b) the restarted replica replays the retained log
/// suffix into byte-identical state.
#[test]
fn psmr_replica_crashes_and_rejoins_from_checkpoint() {
    let restarts_before = global().value(counters::REPLICA_RESTARTS);
    let mut engine =
        PsmrEngine::spawn_recoverable(&cfg(4), fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..4u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 40, t0))
        })
        .collect();

    await_checkpoint(&store);
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    assert!(engine.is_crashed(ReplicaId::new(1)));
    // The deployment keeps serving on the surviving replica while one
    // replica is down; give the workload time to make progress into the
    // retained log suffix the restart must replay.
    std::thread::sleep(Duration::from_millis(50));
    engine.restart_replica(ReplicaId::new(1)).expect("restart");
    assert!(!engine.is_crashed(ReplicaId::new(1)));

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    assert!(store.latest_id() >= 1);
    assert!(global().value(counters::REPLICA_RESTARTS) > restarts_before);
    engine.shutdown();
}

/// The same crash/restart scenario on classical SMR, whose single
/// executor makes every point between two commands a consistent cut.
#[test]
fn smr_replica_crashes_and_rejoins_from_checkpoint() {
    let mut engine = SmrEngine::spawn_recoverable(&cfg(1), || KvService::with_keys(KEYS));
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 40, t0))
        })
        .collect();

    await_checkpoint(&store);
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(50));
    engine.restart_replica(ReplicaId::new(1)).expect("restart");

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    engine.shutdown();
}

/// sP-SMR (the CBASE-style scheduler baseline) supports the same
/// crash/restart cycle through the shared subsystem.
#[test]
fn spsmr_replica_crashes_and_rejoins_from_checkpoint() {
    let mut engine =
        SpSmrEngine::spawn_recoverable(&cfg(3), fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 40, t0))
        })
        .collect();

    await_checkpoint(&store);
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(50));
    engine.restart_replica(ReplicaId::new(1)).expect("restart");

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    engine.shutdown();
}

/// Engine-level Paxos fault tolerance: with 3 acceptors per group, every
/// ordered engine keeps committing after one acceptor of its ordering
/// group crash-stops mid-run (previously only `paxos/tests/faults.rs`
/// exercised this, below the engine layer).
#[test]
fn engines_keep_committing_with_one_acceptor_down() {
    let map = fine_dependency_spec().into_map();
    let factory = || KvService::with_keys(KEYS);

    let run_half = |client: &mut ClientProxy, base: u64| {
        for i in 0..20u64 {
            let key = (base + i) % KEYS;
            assert_eq!(
                kv(
                    client,
                    KvOp::Update {
                        key,
                        value: base + i
                    }
                ),
                KvResult::Ok,
                "update {i} after base {base}"
            );
        }
    };

    // P-SMR: crash an acceptor of a worker group and one of g_all.
    let config = cfg(3);
    let engine = PsmrEngine::spawn(&config, map.clone(), factory);
    let mut client = engine.client();
    run_half(&mut client, 0);
    engine.crash_acceptor(GroupId::new(0), 2);
    engine.crash_acceptor(config.all_group(), 2);
    run_half(&mut client, 100);
    drop(client);
    engine.shutdown();

    // SMR: single ordering group.
    let engine = SmrEngine::spawn(&cfg(1), factory);
    let mut client = engine.client();
    run_half(&mut client, 0);
    engine.crash_acceptor(2);
    run_half(&mut client, 100);
    drop(client);
    engine.shutdown();

    // sP-SMR: single ordering group feeding the scheduler.
    let engine = SpSmrEngine::spawn(&cfg(3), map, factory);
    let mut client = engine.client();
    run_half(&mut client, 0);
    engine.crash_acceptor(2);
    run_half(&mut client, 100);
    drop(client);
    engine.shutdown();
}

/// Checkpoints bound memory: the ordered-delivery logs retained for
/// catch-up are trimmed down to the latest checkpoint's cut.
#[test]
fn checkpoints_trim_retained_ordered_logs() {
    let taken_before = global().value(counters::CHECKPOINTS_TAKEN);
    let mut config = cfg(2);
    config.replicas(1).checkpoint_interval(None); // explicit checkpoints only
    let engine = PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let mut client = engine.client();
    // Sequential closed-loop traffic: every command lands in its own batch,
    // so the per-group logs grow with the run.
    for i in 0..120u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: i % KEYS,
                    value: i
                }
            ),
            KvResult::Ok
        );
    }
    let groups: Vec<GroupId> = (0..2)
        .map(GroupId::new)
        .chain([config.all_group()])
        .collect();
    let retained_before: usize = groups.iter().map(|g| engine.retained_len(*g)).sum();
    assert!(
        retained_before >= 100,
        "logs grew with the workload: {retained_before}"
    );

    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    let id = u64::from_le_bytes(resp[..8].try_into().expect("checkpoint id"));
    assert!(id >= 1, "checkpoint response carries its id");
    let retained_after: usize = groups.iter().map(|g| engine.retained_len(*g)).sum();
    assert!(
        retained_after < retained_before / 2,
        "trim reclaimed the covered prefix ({retained_before} -> {retained_after})"
    );
    assert!(global().value(counters::CHECKPOINTS_TAKEN) > taken_before);
    drop(client);
    engine.shutdown();
}

/// Crashing a replica of an *idle* deployment returns promptly: the
/// worker poll timeout bounds total wait even while ticker skip batches
/// arrive continuously with zero client traffic.
#[test]
fn crash_replica_returns_promptly_on_an_idle_deployment() {
    let mut config = cfg(4);
    config.checkpoint_interval(None);
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    std::thread::sleep(Duration::from_millis(30)); // let skips flow
    let started = Instant::now();
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle crash took {:?}",
        started.elapsed()
    );
    engine.shutdown();
}

/// The no-rep baseline honors `checkpoint_interval` like every other
/// recoverable engine: checkpoints happen without any client submitting
/// CHECKPOINT commands.
#[test]
fn norep_auto_checkpoints_at_the_configured_interval() {
    let mut config = SystemConfig::new(2);
    config
        .replicas(1)
        .checkpoint_interval(Some(Duration::from_millis(10)));
    let engine = NoRepEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let store = engine.checkpoint_store().expect("recoverable deployment");
    await_checkpoint(&store);
    assert!(store.latest_id() >= 1);
    engine.shutdown();
}

/// The recovery API refuses nonsensical transitions with typed errors.
#[test]
fn recovery_api_contract_errors() {
    let mut config = cfg(2);
    config.checkpoint_interval(None);
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    assert_eq!(
        engine.crash_replica(ReplicaId::new(7)),
        Err(RecoveryError::UnknownReplica { replica: 7 })
    );
    assert_eq!(
        engine.restart_replica(ReplicaId::new(0)),
        Err(RecoveryError::NotCrashed)
    );
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    // No checkpoint was ever taken: the live peer answers the fetch with
    // NotFound, there is no disk snapshot, and the replica cannot come
    // back — typed as a failed transfer across every attempted peer.
    assert_eq!(
        engine.restart_replica(ReplicaId::new(1)),
        Err(RecoveryError::Transfer(TransferError::AllPeersFailed {
            attempted: 1
        }))
    );
    engine.shutdown();

    // Non-recoverable deployments refuse restart outright.
    let mut plain = PsmrEngine::spawn(&cfg(2), fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    plain
        .crash_replica(ReplicaId::new(1))
        .expect("crash works without recovery");
    assert_eq!(
        plain.restart_replica(ReplicaId::new(1)),
        Err(RecoveryError::NotRecoverable)
    );
    plain.shutdown();
}

/// The acceptance scenario for durable recovery, modeling a replica
/// killed and restarted as a fresh process: its in-memory state is gone,
/// its disk survives. Phase A restarts while the retained logs still
/// cover the replica's own disk snapshot — recovery is local
/// (`RecoverySource::Disk`) plus log replay. Phase B crashes it again
/// and checkpoints past it, trimming the logs its disk snapshot needs —
/// recovery falls back to chunked peer state transfer
/// (`RecoverySource::Peer`) plus log replay. Clients hammer the store
/// throughout; the observed history must stay linearizable and the
/// restarted replica must converge to byte-identical state.
#[test]
fn psmr_fresh_process_recovers_from_disk_then_catches_up_from_peers() {
    let dir = unique_dir("psmr-durable");
    let mut config = cfg(4);
    config
        .checkpoint_interval(None) // explicit checkpoints: the test controls the trims
        .snapshot_dir(Some(dir.clone()))
        .transfer_chunk_bytes(32)
        .transfer_timeout(Duration::from_millis(150));
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let t0 = Instant::now();
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 60, t0))
        })
        .collect();

    let mut admin = engine.client();
    let checkpoint = |admin: &mut ClientProxy| {
        let resp = admin.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
        u64::from_le_bytes(resp[..8].try_into().expect("checkpoint id"))
    };
    // Phase A: checkpoint, wait until replica 1 has persisted it to its
    // own disk (each replica executes the command and persists locally),
    // crash, restart. The logs still cover the disk cut: recovery is
    // local.
    let id = checkpoint(&mut admin);
    assert!(id >= 1);
    let r1_dir = dir.join("r1");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let persisted = std::fs::read_dir(&r1_dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .any(|e| e.path().extension().is_some_and(|x| x == "psmr"))
            })
            .unwrap_or(false);
        if persisted {
            break;
        }
        assert!(Instant::now() < deadline, "replica 1 never persisted");
        std::thread::sleep(Duration::from_millis(5));
    }
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    std::thread::sleep(Duration::from_millis(30)); // grow the replayable suffix
    let report = engine.restart_replica(ReplicaId::new(1)).expect("restart");
    assert_eq!(
        report.source,
        RecoverySource::Disk,
        "logs still cover the disk cut: recovery must be local ({report:?})"
    );
    assert!(report.disk_checkpoint.is_some());

    // Phase B: crash again, checkpoint on the survivor (trimming the
    // logs past what replica 1's disk covers), restart. Recovery must
    // fetch the fresher checkpoint from the live peer.
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    let id = checkpoint(&mut admin);
    assert!(id >= 2);
    let report = engine.restart_replica(ReplicaId::new(1)).expect("restart");
    assert_eq!(
        report.source,
        RecoverySource::Peer(0),
        "disk cut was trimmed: recovery must transfer from the peer ({report:?})"
    );
    assert!(global().value(counters::TRANSFERS_COMPLETED) >= 1);
    assert!(global().value(counters::SNAPSHOTS_LOADED) >= 1);

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-transfer peer crash: the first serving peer dies after the offer
/// and one chunk; the fetcher times out and completes the transfer from
/// the fallback peer.
#[test]
fn psmr_restart_survives_a_peer_crashing_mid_transfer() {
    let mut config = cfg(2);
    config
        .replicas(3)
        .checkpoint_interval(None)
        .transfer_chunk_bytes(32) // KEYS*16+8 bytes => several chunks
        .transfer_timeout(Duration::from_millis(120));
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let mut client = engine.client();
    for i in 0..30u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: i % KEYS,
                    value: i
                }
            ),
            KvResult::Ok
        );
    }
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    assert!(u64::from_le_bytes(resp[..8].try_into().unwrap()) >= 1);

    engine.crash_replica(ReplicaId::new(2)).expect("crash");
    // Peer 0 (tried first) will die after offer + one chunk.
    engine.sever_transfer_link(ReplicaId::new(0), ReplicaId::new(2), 2);
    let fallbacks_before = global().value(counters::TRANSFER_FALLBACKS);
    let report = engine.restart_replica(ReplicaId::new(2)).expect("restart");
    assert_eq!(
        report.source,
        RecoverySource::Peer(1),
        "transfer must complete on the fallback peer ({report:?})"
    );
    assert_eq!(report.transfer_fallbacks, 1);
    assert!(global().value(counters::TRANSFER_FALLBACKS) > fallbacks_before);

    // The restarted replica serves and converges.
    await_convergence(|r| engine.replica_service(r));
    drop(client);
    engine.shutdown();
}

/// Recovery across a remap epoch: replica 1 checkpoints under the base
/// mapping (epoch 0), crashes, misses a REMAP that pins a hot key to
/// another group (epoch 1), and restarts. The state-transfer handshake
/// carries the current epoch, the replica re-subscribes under the new
/// mapping, and the deployment converges with a linearizable history.
#[test]
fn psmr_restart_across_a_remap_epoch_adopts_the_current_mapping() {
    let mut config = cfg(4);
    config.transfer_timeout(Duration::from_millis(150));
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let mut engine =
        PsmrEngine::spawn_recoverable_remappable(&config, rmap, || KvService::with_keys(KEYS));
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let t0 = Instant::now();
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 60, t0))
        })
        .collect();

    await_checkpoint(&store);
    engine.crash_replica(ReplicaId::new(1)).expect("crash");

    // While replica 1 is down, move key 0 to group 3 — a new C-Dep epoch.
    let mut table = RemapTable {
        epoch: 1,
        ..Default::default()
    };
    table.pins.insert(0, GroupId::new(3));
    let mut admin = engine.client();
    let resp = admin.execute(REMAP, table.encode());
    assert_eq!(&resp[..], [1], "remap installed on the live replicas");
    drop(admin);

    std::thread::sleep(Duration::from_millis(50));
    let report = engine.restart_replica(ReplicaId::new(1)).expect("restart");
    assert_eq!(
        report.epoch, 1,
        "the transfer handshake must carry the current remap epoch ({report:?})"
    );

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    engine.shutdown();
}

/// The no-rep baseline's durable half: a server killed and re-spawned
/// over the same snapshot directory cold-starts from its own newest
/// valid snapshot. State checkpointed before the kill survives; the
/// un-checkpointed tail is lost — exactly the availability gap
/// replication closes.
#[test]
fn norep_cold_starts_from_its_own_disk_snapshot() {
    let dir = unique_dir("norep-cold");
    let mut config = SystemConfig::new(2);
    config.replicas(1).snapshot_dir(Some(dir.clone()));

    // First incarnation: write, checkpoint, write more, die.
    let engine = NoRepEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let mut client = engine.client();
    assert_eq!(
        kv(&mut client, KvOp::Update { key: 1, value: 11 }),
        KvResult::Ok
    );
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    let id = u64::from_le_bytes(resp[..8].try_into().unwrap());
    assert_eq!(id, 1);
    assert_eq!(
        kv(&mut client, KvOp::Update { key: 2, value: 22 }),
        KvResult::Ok,
        "written after the checkpoint: will be lost"
    );
    drop(client);
    engine.shutdown();

    // Second incarnation over the same directory.
    let engine = NoRepEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let store = engine.checkpoint_store().expect("recoverable");
    assert_eq!(store.latest_id(), 1, "cold-started from checkpoint 1");
    let mut client = engine.client();
    assert_eq!(
        kv(&mut client, KvOp::Read { key: 1 }),
        KvResult::Value(11),
        "checkpointed write survived the process death"
    );
    assert_eq!(
        kv(&mut client, KvOp::Read { key: 2 }),
        KvResult::Value(2),
        "un-checkpointed tail rolled back to the pre-load value"
    );
    // Checkpoint numbering continues across incarnations.
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    assert_eq!(u64::from_le_bytes(resp[..8].try_into().unwrap()), 2);
    drop(client);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for response provenance under the retransmit/restart race:
/// a request submitted right before a replica crash is retransmitted
/// while the replica is down and the replica then restarts, so the same
/// logical command is re-ordered and re-executed — up to four responses
/// head for the proxy. The dedup must release exactly one, and that
/// first release must carry `Response::origin` through to the
/// `Released` trace stamp (finalizing the sampled lifecycle); losing
/// the origin on any response path silently breaks end-to-end latency
/// attribution.
#[test]
fn retransmitted_request_racing_a_restart_keeps_provenance_and_dedup() {
    let trace = psmr_suite::common::trace::global();
    let mut engine =
        PsmrEngine::spawn_recoverable(&cfg(2), fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let mut client = engine.client();
    // One settled command proves the pipeline is up before sampling
    // starts, so the traced() delta below belongs to the raced request.
    assert_eq!(
        kv(&mut client, KvOp::Update { key: 0, value: 1 }),
        KvResult::Ok
    );
    await_checkpoint(&store);

    let sample_before = trace.sample();
    trace.set_sample(1);
    let traced_before = trace.traced();

    // The race: submit, crash replica 1 (which may or may not have
    // executed the command yet), retransmit into the degraded
    // deployment, then bring the replica back.
    let op = KvOp::Update {
        key: 1,
        value: 4242,
    };
    let id = client.submit(op.command(), op.encode());
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    assert_eq!(client.retransmit_outstanding(), 1);
    std::thread::sleep(Duration::from_millis(50));
    engine.restart_replica(ReplicaId::new(1)).expect("restart");

    // Exactly one logical response is released …
    let (got, payload) = client.recv_response();
    assert_eq!(got, id);
    assert_eq!(KvResult::decode(&payload), KvResult::Ok);
    assert_eq!(client.outstanding(), 0);
    // … and the duplicates (second replica, retransmitted incarnation)
    // are discarded even after ample time to arrive.
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        client.try_recv_response().is_none(),
        "dedup released a duplicate response"
    );

    // The released response carried its (group, seq) origin into the
    // trace: a sampled lifecycle finalized at Released.
    assert!(
        trace.traced() > traced_before,
        "no lifecycle finalized at Released — Response::origin was lost"
    );

    trace.set_sample(sample_before);
    drop(client);
    engine.shutdown();
}

/// `ChannelSink`-style silent drops and client retransmissions are
/// observable through the metrics registry, so recovery tests (and
/// operators) can tell "lost" from "slow".
#[test]
fn dropped_and_retransmitted_requests_are_observable() {
    let mut config = SystemConfig::new(2);
    config.replicas(1);
    let engine = NoRepEngine::spawn(&config, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let mut client = engine.client();
    assert_eq!(kv(&mut client, KvOp::Read { key: 1 }), KvResult::Value(1));
    engine.shutdown();

    // The server is gone; submissions vanish into the closed sink — but
    // observably so.
    let dropped_before = global().value(counters::REQUESTS_DROPPED);
    let retrans_before = global().value(counters::REQUESTS_RETRANSMITTED);
    let op = KvOp::Read { key: 2 };
    client.submit(op.command(), op.encode());
    assert!(global().value(counters::REQUESTS_DROPPED) > dropped_before);
    // The client-side failover path re-submits everything outstanding and
    // counts what it re-sent.
    assert_eq!(client.retransmit_outstanding(), 1);
    assert!(global().value(counters::REQUESTS_RETRANSMITTED) > retrans_before);
    assert!(global().value(counters::REQUESTS_DROPPED) >= dropped_before + 2);
}
