//! Online C-G reconfiguration end to end: remap tables install through the
//! replicated serialized stream, re-route subsequent keyed commands, and
//! never break safety (dependent same-key commands still serialize).

use psmr_suite::common::ids::GroupId;
use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::core::remap::{RemapTable, RemappableMap, REMAP};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, KvService};
use std::collections::HashMap;
use std::time::Duration;

fn cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500));
    cfg
}

fn kv(client: &mut psmr_suite::core::ClientProxy, op: KvOp) -> KvResult {
    KvResult::decode(&client.execute(op.command(), op.encode()))
}

#[test]
fn remap_installs_and_rerouted_traffic_stays_correct() {
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let rmap_probe = rmap.clone();
    let engine = PsmrEngine::spawn_remappable(&cfg(4), rmap, || KvService::with_keys(64));
    let mut client = engine.client();

    // Warm traffic before the remap.
    for k in 0..32u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: k,
                    value: k + 1
                }
            ),
            KvResult::Ok
        );
    }

    // Pin keys 0..8 all onto group 3.
    let mut table = RemapTable {
        epoch: 1,
        ..Default::default()
    };
    for k in 0..8u64 {
        table.pins.insert(k, GroupId::new(3));
    }
    let resp = client.execute(REMAP, table.encode());
    assert_eq!(resp[0], 1, "install acknowledged");
    assert_eq!(
        rmap_probe.current_table().epoch,
        1,
        "client-side map updated"
    );

    // Rerouted traffic still reads its own writes and serializes per key.
    for k in 0..8u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: k,
                    value: 100 + k
                }
            ),
            KvResult::Ok
        );
        assert_eq!(
            kv(&mut client, KvOp::Read { key: k }),
            KvResult::Value(100 + k)
        );
    }
    // Unpinned keys too.
    assert_eq!(kv(&mut client, KvOp::Read { key: 20 }), KvResult::Value(21));

    // A stale epoch is rejected replica-wide.
    let mut stale = RemapTable {
        epoch: 1,
        ..Default::default()
    };
    stale.pins.insert(0, GroupId::new(0));
    let resp = client.execute(REMAP, stale.encode());
    assert_eq!(resp[0], 0, "stale epoch refused");

    drop(client);
    engine.shutdown();
}

#[test]
fn concurrent_traffic_across_a_remap_stays_consistent() {
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let engine = std::sync::Arc::new(PsmrEngine::spawn_remappable(&cfg(4), rmap, || {
        KvService::with_keys(16)
    }));
    // Writers hammer keys while an admin flips the mapping mid-stream.
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = engine.client();
            let mut wrote: HashMap<u64, u64> = HashMap::new();
            for i in 0..80u64 {
                let key = (c * 5 + i) % 16;
                let value = c * 10_000 + i;
                assert_eq!(kv(&mut client, KvOp::Update { key, value }), KvResult::Ok);
                wrote.insert(key, value);
            }
            // Read-your-writes per client at the end: the value is ours or
            // a later writer's, but never absent and never torn.
            for (key, _) in wrote {
                match kv(&mut client, KvOp::Read { key }) {
                    KvResult::Value(_) => {}
                    other => panic!("key {key}: {other:?}"),
                }
            }
        }));
    }
    {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut admin = engine.client();
            for epoch in 1..=5u64 {
                let mut table = RemapTable {
                    epoch,
                    ..Default::default()
                };
                for k in 0..16u64 {
                    // Rotate the pinning each epoch.
                    table
                        .pins
                        .insert(k, GroupId::new(((k + epoch) % 4) as usize));
                }
                let resp = admin.execute(REMAP, table.encode());
                assert_eq!(resp[0], 1, "epoch {epoch} installs");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    match std::sync::Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}
