//! Whole-deployment crash → cold start: the scenario PR 2 left open.
//!
//! Every replica of a loaded deployment is killed at once — no live
//! peer survives to serve a state transfer — and the deployment is
//! cold-started from disk alone: each group's durable write-ahead log
//! (`psmr-wal`) replays the ordered suffix behind the newest durable
//! snapshot, the streams *continue* their pre-crash sequence numbering,
//! and the restarted replicas re-execute everything the dead deployment
//! ever ordered. The client-observed history across both incarnations
//! must stay linearizable — under the *process-crash* fault model these
//! tests exercise (threads die, the OS and its page cache survive),
//! **no acknowledged write is lost**, which is what the in-memory
//! ordered logs of the earlier PRs could not promise. Against power
//! loss the guarantee weakens by the open group-commit window (up to
//! `wal_batch - 1` appends since the last fsync); `wal_batch = 1`
//! closes that window.

use psmr_suite::common::ids::{GroupId, ReplicaId};
use psmr_suite::common::metrics::{counters, global};
use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, PsmrEngine, RecoverySource, SmrEngine, SpSmrEngine};
use psmr_suite::core::remap::{RemapTable, RemappableMap, REMAP};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, KvService};
use psmr_suite::sim::check::{assert_linearizable, client_session, kv, KEYS};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fresh per-test directories for the WAL and the snapshots.
fn unique_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("psmr-cold-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("wal"), base.join("snap"))
}

fn cleanup(tag: &str) {
    let base = std::env::temp_dir().join(format!("psmr-cold-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
}

fn cfg(mpl: usize, tag: &str) -> SystemConfig {
    let (wal, snap) = unique_dirs(tag);
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500))
        .checkpoint_interval(Some(Duration::from_millis(20)))
        .wal_dir(Some(wal))
        .snapshot_dir(Some(snap));
    cfg
}

/// Blocks until every replica's snapshot directory holds at least one
/// published checkpoint file — the precondition for an all-Disk cold
/// start.
fn await_persisted(snap_dir: &std::path::Path, replicas: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let all = (0..replicas).all(|r| {
            std::fs::read_dir(snap_dir.join(format!("r{r}")))
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .any(|e| e.path().extension().is_some_and(|x| x == "psmr"))
                })
                .unwrap_or(false)
        });
        if all {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "checkpoints never reached every replica's disk"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Polls until both replicas' deterministic snapshots are byte-identical
/// (the shared helper keyed by raw replica index).
fn await_convergence(
    service_of: impl Fn(
        ReplicaId,
    )
        -> Option<std::sync::Arc<dyn psmr_suite::core::service::RecoverableService>>,
) {
    psmr_suite::sim::check::await_convergence(|r| service_of(ReplicaId::new(r)));
}

/// The acceptance scenario: kill every replica of a loaded P-SMR
/// deployment, cold-start all of them from disk with **no surviving
/// peer**, converge, keep serving, and pass the linearizability check
/// across both incarnations.
#[test]
fn psmr_whole_deployment_cold_starts_from_disk_under_load() {
    let config = cfg(4, "psmr");
    let snap_dir = config.snapshot_dir.clone().expect("configured");
    let cold_starts_before = global().value(counters::COLD_STARTS);
    let t0 = Instant::now();

    // Incarnation 1: load the deployment, let checkpoints reach both
    // disks, and keep traffic flowing right up to the blackout.
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 40, t0))
        })
        .collect();
    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    await_persisted(&snap_dir, 2);
    // In-flight fire-and-forget traffic at the moment of the blackout
    // (to an untracked key, so the checker only sees acknowledged ops).
    let mut doomed = engine.client();
    for i in 0..20u64 {
        doomed.submit(
            KvOp::Update {
                key: KEYS + 1,
                value: i,
            }
            .command(),
            KvOp::Update {
                key: KEYS + 1,
                value: i,
            }
            .encode(),
        );
    }
    engine.crash_all_replicas();
    assert!(engine.is_crashed(ReplicaId::new(0)) && engine.is_crashed(ReplicaId::new(1)));
    engine.shutdown();

    // Incarnation 2: cold start from disk. No peer exists; every replica
    // must come back from its own snapshot plus the WAL suffix.
    let replays_before = global().value(counters::WAL_REPLAY_RECORDS);
    let (engine, reports) =
        PsmrEngine::cold_start(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        })
        .expect("cold start");
    assert_eq!(reports.len(), 2);
    for report in &reports {
        assert_eq!(
            report.source,
            RecoverySource::Disk,
            "both replicas persisted a checkpoint pre-crash ({report:?})"
        );
        assert!(report.checkpoint_id >= 1);
    }
    assert!(global().value(counters::COLD_STARTS) > cold_starts_before);
    assert!(
        global().value(counters::WAL_REPLAY_RECORDS) > replays_before,
        "the ordered suffix came back from the WAL"
    );

    await_convergence(|r| engine.replica_service(r));

    // The cold-started deployment keeps serving; the combined history
    // (acknowledged ops of both incarnations) is linearizable — no
    // acknowledged write was lost in the blackout.
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, 10 + c, 40, t0))
        })
        .collect();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    await_convergence(|r| engine.replica_service(r));
    engine.shutdown();
    cleanup("psmr");
}

/// The full blackout scenario with **pipelined group commit**
/// (`wal_pipeline`): fan-out overlaps the fsyncs, responses gate on the
/// durability watermark, and the acknowledged history across both
/// incarnations stays linearizable — under power-failure semantics this
/// mode is *stronger* than inline group commit (acknowledged ⇒
/// fsynced), so the cold-start guarantees of PR 3 carry over unchanged.
#[test]
fn psmr_cold_starts_linearizably_with_pipelined_group_commit() {
    let mut config = cfg(3, "pipe");
    config.wal_pipeline(true);
    let snap_dir = config.snapshot_dir.clone().expect("configured");
    let t0 = Instant::now();

    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, 30, t0))
        })
        .collect();
    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    await_persisted(&snap_dir, 2);
    engine.crash_all_replicas();
    engine.shutdown();

    // Cold start over the same directories: pipelining changes when
    // fsyncs land, never what replay recovers for acknowledged commands.
    let (engine, reports) =
        PsmrEngine::cold_start(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        })
        .expect("cold start");
    assert_eq!(reports.len(), 2);
    await_convergence(|r| engine.replica_service(r));
    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, 10 + c, 30, t0))
        })
        .collect();
    for h in handles {
        records.extend(h.join().unwrap());
    }
    assert_linearizable(records);
    engine.shutdown();
    cleanup("pipe");
}

/// Crash **between fan-out and fsync**: with every sync thread held (the
/// covering fsyncs "in flight forever"), submitted writes execute and
/// replicate but their responses are never released — so when the power
/// failure then erases the un-fsynced suffix, only *unacknowledged*
/// writes are lost and the cold-started state plus acknowledged history
/// stays linearizable.
#[test]
fn pipelined_crash_before_fsync_never_released_the_lost_suffix() {
    let mut config = cfg(2, "heldfsync");
    config.wal_pipeline(true);
    config.checkpoint_interval(None); // WAL-only: the log IS the state
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });

    // Phase 1: acknowledged traffic (fsyncs flowing normally).
    let mut client = engine.client();
    for key in 0..KEYS {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key,
                    value: 5000 + key
                }
            ),
            KvResult::Ok
        );
    }

    // Phase 2: freeze the fsyncs, then submit writes that will execute
    // but can never durably land. Their responses must be withheld.
    // (The short sleep lets a sync pass already in flight finish, so no
    // phase-2 append can slip under a pre-hold fsync.)
    engine.hold_wal_sync(true);
    std::thread::sleep(Duration::from_millis(50));
    let held_ids: Vec<_> = (0..KEYS)
        .map(|key| {
            let op = KvOp::Update {
                key,
                value: 9000 + key,
            };
            client.submit(op.command(), op.encode())
        })
        .collect();
    // Give the deployment ample time to order and execute them.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        client.try_recv_response().is_none(),
        "a response was released for a write whose covering fsync never landed"
    );
    assert_eq!(client.outstanding(), held_ids.len());
    drop(client);

    // Phase 3: crash everything and lose power — the un-fsynced suffix
    // (and only it) is gone.
    engine.crash_all_replicas();
    let dropped = engine.shutdown_power_fail();
    assert!(
        dropped > 0,
        "the held suffix should have been open (un-fsynced) at the crash"
    );

    // Phase 4: cold start. The acknowledged phase-1 values survive; the
    // never-acknowledged phase-2 values are allowed to be lost — and
    // with the suffix discarded they must be.
    let (engine, _reports) =
        PsmrEngine::cold_start(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        })
        .expect("cold start after power failure");
    await_convergence(|r| engine.replica_service(r));
    let mut client = engine.client();
    for key in 0..KEYS {
        assert_eq!(
            kv(&mut client, KvOp::Read { key }),
            KvResult::Value(5000 + key),
            "key {key}: acknowledged write survives, unacknowledged suffix is gone"
        );
    }
    drop(client);
    engine.shutdown();
    cleanup("heldfsync");
}

/// Cold start **before any checkpoint was ever taken**: the durable
/// ordered logs alone rebuild the whole deployment from scratch
/// (`RecoverySource::WalOnly`).
#[test]
fn psmr_cold_starts_from_the_wal_alone_without_any_checkpoint() {
    let mut config = cfg(2, "walonly");
    config.checkpoint_interval(None); // nothing ever snapshots or trims
    let mut engine =
        PsmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let mut client = engine.client();
    for i in 0..30u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: i % KEYS,
                    value: 1000 + i
                }
            ),
            KvResult::Ok
        );
    }
    drop(client);
    engine.crash_all_replicas();
    engine.shutdown();

    let (engine, reports) =
        PsmrEngine::cold_start(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        })
        .expect("cold start from the logs alone");
    assert!(reports
        .iter()
        .all(|r| r.source == RecoverySource::WalOnly && r.checkpoint_id == 0));
    await_convergence(|r| engine.replica_service(r));
    let mut client = engine.client();
    for key in 0..KEYS {
        let last = (0..30u64).filter(|i| i % KEYS == key).max().unwrap();
        assert_eq!(
            kv(&mut client, KvOp::Read { key }),
            KvResult::Value(1000 + last),
            "key {key} rebuilt purely from the replayed log"
        );
    }
    drop(client);
    engine.shutdown();
    cleanup("walonly");
}

/// Cold start **after a remap**: the REMAP command sits *behind* the
/// checkpoint's cut, so the replayed log suffix never re-executes it —
/// the overlay table persisted inside the snapshot file (v2 layout) is
/// the only thing that can restore the pins. A restarted deployment
/// must come back at the remapped epoch with every pin in force, or
/// post-restart traffic on pinned keys re-routes to the pre-remap
/// group.
#[test]
fn psmr_cold_start_preserves_remap_pins_across_the_blackout() {
    let mut config = cfg(4, "remap-cold");
    // The test drives the only checkpoint, strictly after the remap:
    // deterministic "pins live only in the snapshot" setup.
    config.checkpoint_interval(None);
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let mut engine =
        PsmrEngine::spawn_recoverable_remappable(&config, rmap, || KvService::with_keys(KEYS));
    let mut client = engine.client();
    for k in 0..8u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: k,
                    value: 1000 + k
                }
            ),
            KvResult::Ok
        );
    }
    // Pin keys 0..8 onto group 3 at epoch 1.
    let mut table = RemapTable {
        epoch: 1,
        ..Default::default()
    };
    for k in 0..8u64 {
        table.pins.insert(k, GroupId::new(3));
    }
    assert_eq!(
        client.execute(REMAP, table.encode())[0],
        1,
        "remap installs"
    );
    // Rerouted writes, then the checkpoint that captures table + state.
    for k in 0..8u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: k,
                    value: 2000 + k
                }
            ),
            KvResult::Ok
        );
    }
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    assert!(u64::from_le_bytes(resp[..8].try_into().unwrap()) >= 1);
    await_persisted(config.snapshot_dir.as_ref().unwrap(), 2);
    drop(client);
    engine.crash_all_replicas();
    engine.shutdown();

    // Incarnation 2 boots with a *fresh* map (epoch 0, no pins): only
    // the table inside the snapshot file can bring the remap back.
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let probe = rmap.clone();
    let (engine, reports) =
        PsmrEngine::cold_start_remappable(&config, rmap, || KvService::with_keys(KEYS))
            .expect("cold start across the remap");
    assert!(reports.iter().all(|r| r.source == RecoverySource::Disk));
    let restored = probe.current_table();
    assert_eq!(
        restored.epoch, 1,
        "persisted remap epoch survives the blackout"
    );
    for k in 0..8u64 {
        assert_eq!(
            restored.pins.get(&k),
            Some(&GroupId::new(3)),
            "pin for key {k} survives the blackout"
        );
    }
    await_convergence(|r| engine.replica_service(r));
    // Pinned keys read their pre-crash values and stay serializable
    // under fresh dependent traffic.
    let mut client = engine.client();
    for k in 0..8u64 {
        assert_eq!(
            kv(&mut client, KvOp::Read { key: k }),
            KvResult::Value(2000 + k)
        );
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: k,
                    value: 3000 + k
                }
            ),
            KvResult::Ok
        );
        assert_eq!(
            kv(&mut client, KvOp::Read { key: k }),
            KvResult::Value(3000 + k)
        );
    }
    drop(client);
    engine.shutdown();
    cleanup("remap-cold");
}

/// The same blackout on classical SMR: single stream, same durability
/// contract, and checkpoint numbering continues across incarnations.
#[test]
fn smr_whole_deployment_cold_starts_from_disk() {
    let mut config = cfg(1, "smr");
    config.checkpoint_interval(None); // the test drives checkpoints
    let mut engine = SmrEngine::spawn_recoverable(&config, || KvService::with_keys(KEYS));
    let mut client = engine.client();
    for i in 0..20u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: i % KEYS,
                    value: 500 + i
                }
            ),
            KvResult::Ok
        );
    }
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    let ckpt_id = u64::from_le_bytes(resp[..8].try_into().unwrap());
    assert!(ckpt_id >= 1);
    // Writes past the checkpoint live only in the WAL at the blackout.
    assert_eq!(
        kv(&mut client, KvOp::Update { key: 0, value: 999 }),
        KvResult::Ok
    );
    await_persisted(config.snapshot_dir.as_ref().unwrap(), 2);
    drop(client);
    engine.crash_all_replicas();
    engine.shutdown();

    let (engine, reports) =
        SmrEngine::cold_start(&config, || KvService::with_keys(KEYS)).expect("cold start");
    assert!(reports.iter().any(|r| r.source == RecoverySource::Disk));
    await_convergence(|r| engine.replica_service(r));
    let mut client = engine.client();
    assert_eq!(
        kv(&mut client, KvOp::Read { key: 0 }),
        KvResult::Value(999),
        "the un-checkpointed tail survived in the WAL"
    );
    // Checkpoint numbering continues where the dead incarnation left it.
    let resp = client.execute(psmr_suite::recovery::CHECKPOINT, Vec::new());
    assert!(u64::from_le_bytes(resp[..8].try_into().unwrap()) > ckpt_id);
    drop(client);
    engine.shutdown();
    cleanup("smr");
}

/// And on sP-SMR, whose scheduler re-dispatches the replayed suffix.
#[test]
fn spsmr_whole_deployment_cold_starts_from_disk() {
    let config = cfg(3, "spsmr");
    let mut engine =
        SpSmrEngine::spawn_recoverable(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        });
    let mut client = engine.client();
    for i in 0..30u64 {
        assert_eq!(
            kv(
                &mut client,
                KvOp::Update {
                    key: i % KEYS,
                    value: 700 + i
                }
            ),
            KvResult::Ok
        );
    }
    await_persisted(config.snapshot_dir.as_ref().unwrap(), 2);
    drop(client);
    engine.crash_all_replicas();
    engine.shutdown();

    let (engine, reports) =
        SpSmrEngine::cold_start(&config, fine_dependency_spec().into_map(), || {
            KvService::with_keys(KEYS)
        })
        .expect("cold start");
    assert_eq!(reports.len(), 2);
    await_convergence(|r| engine.replica_service(r));
    let mut client = engine.client();
    for key in 0..KEYS {
        let last = (0..30u64).filter(|i| i % KEYS == key).max().unwrap();
        assert_eq!(
            kv(&mut client, KvOp::Read { key }),
            KvResult::Value(700 + last)
        );
    }
    drop(client);
    engine.shutdown();
    cleanup("spsmr");
}
