//! # psmr-suite — Parallel State-Machine Replication, reproduced in Rust
//!
//! This facade crate re-exports the whole workspace so examples,
//! integration tests and downstream users can depend on a single crate.
//!
//! The workspace reproduces *Rethinking State-Machine Replication for
//! Parallelism* (Marandi, Bezerra, Pedone — ICDCS 2014): the P-SMR
//! protocol, the SMR / sP-SMR / no-rep / lock-based baselines it is
//! evaluated against, the Paxos-backed atomic multicast substrate, and the
//! two services of the paper (a B+-tree key-value store and an in-memory
//! networked file system).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results.

pub use psmr_btree as btree;
pub use psmr_common as common;
pub use psmr_core as core;
pub use psmr_kvstore as kvstore;
pub use psmr_lz as lz;
pub use psmr_multicast as multicast;
pub use psmr_net as net;
pub use psmr_netfs as netfs;
pub use psmr_netsim as netsim;
pub use psmr_paxos as paxos;
pub use psmr_recovery as recovery;
pub use psmr_sim as sim;
pub use psmr_wal as wal;
pub use psmr_workload as workload;
