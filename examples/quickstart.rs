//! Quickstart: replicate a tiny service with P-SMR in ~40 lines.
//!
//! A bank of named counters. `bump` commands on different counters are
//! independent (they can run on different worker threads of each replica);
//! `total` reads every counter and is therefore dependent on everything.
//!
//! Run with: `cargo run --example quickstart`

use psmr_suite::common::ids::CommandId;
use psmr_suite::common::SystemConfig;
use psmr_suite::core::conflict::{CommandClass, DependencySpec};
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::core::service::Service;
use std::sync::atomic::{AtomicU64, Ordering};

const BUMP: CommandId = CommandId::new(0);
const TOTAL: CommandId = CommandId::new(1);
const N_COUNTERS: u64 = 64;

struct Counters {
    slots: Vec<AtomicU64>,
}

impl Service for Counters {
    fn execute(&self, cmd: CommandId, payload: &[u8]) -> Vec<u8> {
        match cmd {
            BUMP => {
                let which = u64::from_le_bytes(payload[..8].try_into().unwrap());
                let new =
                    self.slots[(which % N_COUNTERS) as usize].fetch_add(1, Ordering::SeqCst) + 1;
                new.to_le_bytes().to_vec()
            }
            TOTAL => {
                let sum: u64 = self.slots.iter().map(|s| s.load(Ordering::SeqCst)).sum();
                sum.to_le_bytes().to_vec()
            }
            other => panic!("unknown command {other}"),
        }
    }
}

fn main() {
    // 1. Describe the command dependencies (C-Dep, §IV-B of the paper).
    let mut spec = DependencySpec::new();
    spec.declare(BUMP, CommandClass::Keyed { writes: true })
        .declare(TOTAL, CommandClass::Global)
        .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));

    // 2. Spawn two replicas with four worker threads each.
    let mut cfg = SystemConfig::new(4);
    cfg.replicas(2);
    let engine = PsmrEngine::spawn(&cfg, spec.into_map(), || Counters {
        slots: (0..N_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
    });

    // 3. Use it like a local service: replication is transparent.
    let mut client = engine.client();
    for i in 0..1000u64 {
        client.execute(BUMP, i.to_le_bytes().to_vec());
    }
    let total = client.execute(TOTAL, 0u64.to_le_bytes().to_vec());
    println!(
        "bumped 1000 times across {N_COUNTERS} counters; replicated total = {}",
        u64::from_le_bytes(total[..8].try_into().unwrap())
    );
    drop(client);
    engine.shutdown();
}
