//! Crash a replica mid-workload and watch it rejoin from a coordinated
//! checkpoint — the `psmr-recovery` subsystem end to end: durable
//! on-disk snapshots, peer state transfer, and log replay.
//!
//! ```text
//! cargo run --release --example recovery
//! ```

use psmr_suite::common::ids::ReplicaId;
use psmr_suite::common::metrics::{counters, global};
use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, KvService};
use psmr_suite::recovery::{Snapshot, CHECKPOINT};
use std::time::{Duration, Instant};

fn main() {
    let snap_dir = std::env::temp_dir().join(format!("psmr-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let mut cfg = SystemConfig::new(4);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500))
        .snapshot_dir(Some(snap_dir.clone()));
    let mut engine = PsmrEngine::spawn_recoverable(&cfg, fine_dependency_spec().into_map(), || {
        KvService::with_keys(64)
    });
    let store = engine.checkpoint_store().expect("recoverable deployment");
    let mut client = engine.client();

    // Phase 1: live traffic, then a coordinated checkpoint.
    for i in 0..200u64 {
        let op = KvOp::Update {
            key: i % 64,
            value: i,
        };
        assert_eq!(
            KvResult::decode(&client.execute(op.command(), op.encode())),
            KvResult::Ok
        );
    }
    let retained: usize = (0..5)
        .map(|g| engine.retained_len(psmr_suite::common::ids::GroupId::new(g)))
        .sum();
    let resp = client.execute(CHECKPOINT, Vec::new());
    let id = u64::from_le_bytes(resp[..8].try_into().expect("checkpoint id"));
    let trimmed: usize = (0..5)
        .map(|g| engine.retained_len(psmr_suite::common::ids::GroupId::new(g)))
        .sum();
    println!(
        "checkpoint #{id} installed at cut {}",
        store.latest().unwrap().cut
    );
    println!("ordered logs trimmed: {retained} -> {trimmed} retained batches");

    // Phase 2: crash replica s1, keep serving, then bring it back.
    engine.crash_replica(ReplicaId::new(1)).expect("crash");
    println!("replica s1 crashed; deployment keeps serving on s0");
    for i in 200..400u64 {
        let op = KvOp::Update {
            key: i % 64,
            value: i,
        };
        assert_eq!(
            KvResult::decode(&client.execute(op.command(), op.encode())),
            KvResult::Ok
        );
    }
    let report = engine.restart_replica(ReplicaId::new(1)).expect("restart");
    println!(
        "replica s1 restarted from (checkpoint #{}, log suffix): \
         recovered via {:?} at cut {}, disk had {:?}",
        report.checkpoint_id, report.source, report.cut, report.disk_checkpoint
    );

    // Phase 3: the rejoined replica converges to byte-identical state.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s0 = engine
            .replica_service(ReplicaId::new(0))
            .unwrap()
            .snapshot();
        let s1 = engine
            .replica_service(ReplicaId::new(1))
            .unwrap()
            .snapshot();
        if s0 == s1 {
            println!(
                "replicas converged: {} bytes of identical service state",
                s0.len()
            );
            break;
        }
        assert!(Instant::now() < deadline, "no convergence");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "metrics: checkpoints_taken={} replica_restarts={}",
        global().value(counters::CHECKPOINTS_TAKEN),
        global().value(counters::REPLICA_RESTARTS),
    );
    drop(client);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);
}
