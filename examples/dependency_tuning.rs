//! How C-Dep granularity changes concurrency (paper §IV-C).
//!
//! The same update-heavy workload runs twice on P-SMR:
//!
//! * with the **coarse** C-Dep (`set_state` depends on everything → every
//!   update is multicast to all groups and serializes the workers), and
//! * with the **fine** C-Dep (updates depend only on commands touching the
//!   same key → updates spread across groups and run in parallel).
//!
//! "A C-Dep that tightly captures interdependencies will likely result in
//! more concurrency at the replicas."
//!
//! Run with: `cargo run --release --example dependency_tuning`

use psmr_suite::common::SystemConfig;
use psmr_suite::core::conflict::CommandMap;
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::kvstore::{coarse_dependency_spec, fine_dependency_spec, KvOp, KvService};
use psmr_suite::workload::KeyDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const KEYS: u64 = 100_000;
const OPS_PER_CLIENT: u64 = 8_000;
const CLIENTS: u64 = 8;

fn run(label: &str, map: CommandMap, update_fraction: f64) -> f64 {
    let mut cfg = SystemConfig::new(8);
    cfg.replicas(2);
    let engine = PsmrEngine::spawn(&cfg, map, || KvService::with_keys(KEYS));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                let mut client = engine.client();
                let dist = KeyDist::uniform(KEYS);
                let mut rng = StdRng::seed_from_u64(7 + c);
                let mut completed = 0u64;
                let mut issued = 0u64;
                while completed < OPS_PER_CLIENT {
                    while issued < OPS_PER_CLIENT && client.outstanding() < 50 {
                        let key = dist.sample(&mut rng);
                        let op = if rng.gen_bool(update_fraction) {
                            KvOp::Update { key, value: issued }
                        } else {
                            KvOp::Read { key }
                        };
                        client.submit(op.command(), op.encode());
                        issued += 1;
                    }
                    client.recv_response();
                    completed += 1;
                }
            });
        }
    });
    let total = CLIENTS * OPS_PER_CLIENT;
    let kcps = total as f64 / started.elapsed().as_secs_f64() / 1000.0;
    println!("{label:<28} {kcps:>8.1} Kcps");
    engine.shutdown();
    kcps
}

fn main() {
    println!("50% updates / 50% reads, {KEYS} keys, 8 workers, 2 replicas, {CLIENTS} clients\n");
    let coarse = run(
        "coarse C-Dep (writes global)",
        coarse_dependency_spec().into_map(),
        0.5,
    );
    let fine = run(
        "fine C-Dep (writes keyed)",
        fine_dependency_spec().into_map(),
        0.5,
    );
    println!(
        "\nfine-grained C-Dep gives {:.1}x the throughput of the coarse one",
        fine / coarse.max(f64::MIN_POSITIVE)
    );
    println!("(the paper's §IV-C example: get_state/set_state vs keyed C-G)");
}
