//! Kill **every** replica of a loaded deployment, then cold-start the
//! whole thing from disk — the `psmr-wal` durable ordered log end to
//! end: group-commit appends on the ordered path, a blackout with no
//! surviving peer, and a restart that replays `(newest snapshot, WAL
//! suffix)` so no acknowledged write is lost (process-crash fault
//! model; power loss can take the unsynced group-commit tail).
//!
//! ```text
//! cargo run --release --example cold_start
//! ```

use psmr_suite::common::ids::ReplicaId;
use psmr_suite::common::metrics::{counters, global};
use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvResult, KvService};
use psmr_suite::recovery::{Snapshot, CHECKPOINT};
use std::time::{Duration, Instant};

const KEYS: u64 = 64;

fn main() {
    let base = std::env::temp_dir().join(format!("psmr-cold-start-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut cfg = SystemConfig::new(4);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500))
        .wal_dir(Some(base.join("wal")))
        .snapshot_dir(Some(base.join("snap")));
    cfg.validate().expect("durability knobs are sane");

    // ---- Incarnation 1: live traffic, one checkpoint, more traffic.
    let mut engine = PsmrEngine::spawn_recoverable(&cfg, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    });
    let mut client = engine.client();
    for i in 0..200u64 {
        let op = KvOp::Update {
            key: i % KEYS,
            value: i,
        };
        assert_eq!(
            KvResult::decode(&client.execute(op.command(), op.encode())),
            KvResult::Ok
        );
    }
    let resp = client.execute(CHECKPOINT, Vec::new());
    let ckpt = u64::from_le_bytes(resp[..8].try_into().expect("checkpoint id"));
    println!("checkpoint #{ckpt} installed and persisted durably");
    // Everything after this point lives only in the write-ahead logs at
    // the moment of the blackout.
    for i in 200..300u64 {
        let op = KvOp::Update {
            key: i % KEYS,
            value: i,
        };
        assert_eq!(
            KvResult::decode(&client.execute(op.command(), op.encode())),
            KvResult::Ok
        );
    }
    drop(client);

    println!(
        "blackout: crashing both replicas at once ({} WAL appends so far, {} fsyncs — group commit)",
        global().value(counters::WAL_APPENDS),
        global().value(counters::WAL_FSYNCS),
    );
    engine.crash_all_replicas();
    engine.shutdown();

    // ---- Incarnation 2: nothing alive, disks only.
    let started = Instant::now();
    let (engine, reports) = PsmrEngine::cold_start(&cfg, fine_dependency_spec().into_map(), || {
        KvService::with_keys(KEYS)
    })
    .expect("cold start from disk");
    for (replica, report) in reports.iter().enumerate() {
        println!(
            "replica s{replica} cold-started via {:?} from checkpoint #{} at cut {}",
            report.source, report.checkpoint_id, report.cut
        );
    }
    println!(
        "{} records replayed from the WALs in {:?}",
        global().value(counters::WAL_REPLAY_RECORDS),
        started.elapsed(),
    );

    // Both replicas converge on byte-identical state…
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s0 = engine
            .replica_service(ReplicaId::new(0))
            .map(|s| s.snapshot());
        let s1 = engine
            .replica_service(ReplicaId::new(1))
            .map(|s| s.snapshot());
        if s0.is_some() && s0 == s1 {
            break;
        }
        assert!(Instant::now() < deadline, "replicas did not converge");
        std::thread::sleep(Duration::from_millis(5));
    }
    // …and every acknowledged write survived, including the suffix that
    // was never checkpointed.
    let mut client = engine.client();
    for key in 0..KEYS {
        let last = (0..300u64)
            .filter(|i| i % KEYS == key)
            .max()
            .expect("covered");
        let got = KvResult::decode(
            &client.execute(KvOp::Read { key }.command(), KvOp::Read { key }.encode()),
        );
        assert_eq!(got, KvResult::Value(last), "key {key}");
    }
    println!("converged: all 300 acknowledged writes survived the whole-deployment crash");
    drop(client);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
