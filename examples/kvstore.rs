//! The paper's key-value store on every replication technique.
//!
//! Runs the same workload (95% reads, 4.9% updates, 0.1% structural
//! inserts/deletes) against SMR, sP-SMR, P-SMR, no-rep and the lock-based
//! BDB baseline, and prints each technique's throughput — a miniature of
//! the paper's Figures 3 and 4.
//!
//! Run with: `cargo run --release --example kvstore`

use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, NoRepEngine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_suite::kvstore::{fine_dependency_spec, KvOp, KvService, LockedKvEngine};
use psmr_suite::workload::{KeyDist, KvMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const KEYS: u64 = 100_000;
const OPS: u64 = 40_000;

/// Drives `OPS` windowed commands through one client and returns Kcps.
fn drive<E: Engine>(engine: &E) -> f64 {
    let mut client = engine.client();
    let dist = KeyDist::uniform(KEYS);
    let mix = KvMix::new(0.95, 0.049, 0.0005, 0.0005);
    let mut rng = StdRng::seed_from_u64(42);
    let started = Instant::now();
    let mut completed = 0u64;
    let mut issued = 0u64;
    while completed < OPS {
        while issued < OPS && client.outstanding() < 50 {
            let op: KvOp = mix.sample(&dist, &mut rng);
            client.submit(op.command(), op.encode());
            issued += 1;
        }
        client.recv_response();
        completed += 1;
    }
    completed as f64 / started.elapsed().as_secs_f64() / 1000.0
}

fn main() {
    let mut cfg = SystemConfig::new(4);
    cfg.replicas(2);
    let map = fine_dependency_spec().into_map();
    let factory = || KvService::with_keys(KEYS);

    println!("{OPS} commands, {KEYS} keys, 95% reads / 4.9% updates / 0.1% structural\n");

    let engine = SmrEngine::spawn(&cfg, factory);
    println!("{:<8} {:>8.1} Kcps", engine.label(), drive(&engine));
    engine.shutdown();

    let engine = SpSmrEngine::spawn(&cfg, map.clone(), factory);
    println!("{:<8} {:>8.1} Kcps", engine.label(), drive(&engine));
    engine.shutdown();

    let engine = PsmrEngine::spawn(&cfg, map.clone(), factory);
    println!("{:<8} {:>8.1} Kcps", engine.label(), drive(&engine));
    engine.shutdown();

    let engine = NoRepEngine::spawn(&cfg, map, factory);
    println!("{:<8} {:>8.1} Kcps", engine.label(), drive(&engine));
    engine.shutdown();

    let engine = LockedKvEngine::spawn(4, KEYS);
    println!("{:<8} {:>8.1} Kcps", engine.label(), drive(&engine));
    engine.shutdown();

    println!("\n(shapes, not absolutes: see EXPERIMENTS.md and the figN binaries)");
}
