//! A replicated file system session over P-SMR.
//!
//! Builds a small project tree, edits files concurrently from several
//! "applications" (clients), and shows that structural operations (mkdir,
//! create, unlink — all globally dependent) interleave safely with
//! per-path reads and writes that run in parallel.
//!
//! Run with: `cargo run --release --example netfs`

use psmr_suite::common::SystemConfig;
use psmr_suite::core::engines::{Engine, PsmrEngine};
use psmr_suite::netfs::{dependency_spec, NetFsClient, NetFsService};

fn main() {
    // Eight worker threads per replica → eight path ranges plus the
    // serialized group, the paper's NetFS deployment (§VI-C).
    let mut cfg = SystemConfig::new(8);
    cfg.replicas(2);
    let engine = std::sync::Arc::new(PsmrEngine::spawn(
        &cfg,
        dependency_spec().into_map(),
        NetFsService::new,
    ));

    // One client lays out the project tree.
    let mut fs = NetFsClient::new(engine.client());
    fs.mkdir("/src").unwrap();
    fs.mkdir("/docs").unwrap();
    fs.create("/src/main.rs").unwrap();
    fs.create("/docs/README.md").unwrap();
    fs.write("/src/main.rs", 0, b"fn main() { println!(\"hi\"); }\n")
        .unwrap();
    fs.write("/docs/README.md", 0, b"# replicated fs\n")
        .unwrap();

    // Four concurrent editors, each on its own file: per-path commands run
    // in parallel mode on different worker threads.
    let mut editors = Vec::new();
    for e in 0..4u64 {
        let engine = std::sync::Arc::clone(&engine);
        editors.push(std::thread::spawn(move || {
            let mut fs = NetFsClient::new(engine.client());
            let path = format!("/src/module{e}.rs");
            fs.create(&path).unwrap();
            for line in 0..50u64 {
                let text = format!("// edit {line} by editor {e}\n");
                let offset = line * text.len() as u64;
                fs.write(&path, offset, text.as_bytes()).unwrap();
            }
            let stat = fs.lstat(&path).unwrap();
            println!("editor {e}: {path} grew to {} bytes", stat.size);
        }));
    }
    for editor in editors {
        editor.join().unwrap();
    }

    // Directory listing reflects every editor's file on all replicas.
    println!("/src contains: {:?}", fs.readdir("/src").unwrap());
    let readme = fs.read("/docs/README.md", 0, 4096).unwrap();
    println!(
        "/docs/README.md: {}",
        String::from_utf8_lossy(&readme).trim()
    );

    // Clean up the tree (structural, serialized across all workers).
    for e in 0..4 {
        fs.unlink(&format!("/src/module{e}.rs")).unwrap();
    }
    fs.unlink("/src/main.rs").unwrap();
    fs.unlink("/docs/README.md").unwrap();
    fs.rmdir("/src").unwrap();
    fs.rmdir("/docs").unwrap();
    println!(
        "tree removed; root now lists: {:?}",
        fs.readdir("/").unwrap()
    );

    drop(fs);
    match std::sync::Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => unreachable!("all clients dropped"),
    }
}
