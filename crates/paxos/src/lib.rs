//! Paxos consensus: the ordering substrate of the multicast library.
//!
//! The paper's multicast library "uses one Paxos instance per stream, and
//! each stream can have a different set of acceptor nodes" (§III, §VI-A).
//! This crate implements that substrate in two layers:
//!
//! * **Pure protocol state machines** — [`acceptor::Acceptor`],
//!   [`proposer::Proposer`] and [`learner::Learner`] are side-effect-free
//!   (message in → messages out). They implement full single-decree Paxos
//!   with ballots over an unbounded sequence of instances, and are exercised
//!   against adversarial schedules on the deterministic simulator from
//!   `psmr-netsim` (safety: at most one value is ever chosen per instance).
//! * **A threaded runtime** — [`runtime::PaxosGroup`] wires one coordinator
//!   thread and `n` acceptor threads (3 in the paper, tolerating one crash)
//!   through a [`psmr_netsim::live::LiveNet`], batches submitted commands up
//!   to 8 KB (§VI-A), pipelines instances, and delivers decided batches to
//!   subscribers in instance order. One `PaxosGroup` backs one multicast
//!   group/stream in `psmr-multicast`.
//!
//! # Example: deciding a value through the threaded runtime
//!
//! ```
//! use psmr_common::SystemConfig;
//! use psmr_paxos::runtime::PaxosGroup;
//!
//! let cfg = SystemConfig::new(1);
//! let group = PaxosGroup::spawn(0, &cfg);
//! let sub = group.subscribe();
//! group.start();
//! group.submit(bytes::Bytes::from_static(b"command"));
//! let batch = sub.recv().unwrap();
//! assert_eq!(batch.seq, 1);
//! assert_eq!(&batch.commands[0][..], b"command");
//! group.shutdown();
//! ```

pub mod acceptor;
pub mod ballot;
pub mod learner;
pub mod msg;
pub mod proposer;
pub mod runtime;

pub use ballot::Ballot;
pub use msg::{Instance, PaxosMsg};
pub use runtime::{Batch, DecidedBatch, GroupHandle, NetMsg, PaxosGroup, SubscribeError};
