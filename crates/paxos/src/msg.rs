//! Protocol messages.

use crate::ballot::Ballot;

/// A consensus instance number within one group's stream. Instances are
/// decided independently; learners deliver them in increasing order.
pub type Instance = u64;

/// Messages of multi-instance Paxos, generic over the value type `V`.
///
/// Names follow the classic phases: `1a` (prepare), `1b` (promise),
/// `2a` (accept-request), `2b` (accepted). `Decide` is the learn
/// notification a distinguished learner broadcasts once a quorum of `2b`s
/// is observed — an optimization the threaded runtime uses so learners need
/// not track quorums themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg<V> {
    /// Phase 1a: a proposer asks acceptors to promise ballot `ballot` for
    /// every instance at or above `from_instance`.
    Prepare {
        /// The ballot being prepared.
        ballot: Ballot,
        /// First instance covered by the prepare (multi-Paxos: one phase 1
        /// covers the whole suffix of instances).
        from_instance: Instance,
    },
    /// Phase 1b: an acceptor promises `ballot` and reports every value it
    /// has already accepted at or above the prepared instance.
    Promise {
        /// The promised ballot.
        ballot: Ballot,
        /// Previously accepted `(instance, ballot, value)` triples the
        /// proposer must respect when choosing values.
        accepted: Vec<(Instance, Ballot, V)>,
    },
    /// An acceptor rejects a prepare/accept carrying a stale ballot and
    /// reveals the highest ballot it has promised, so the proposer can
    /// retry with a larger one.
    Nack {
        /// The ballot that was rejected.
        rejected: Ballot,
        /// The highest ballot promised by the acceptor.
        promised: Ballot,
    },
    /// Phase 2a: the proposer asks acceptors to accept `value` at
    /// `instance` under `ballot`.
    Accept {
        /// The ballot under which the value is proposed.
        ballot: Ballot,
        /// The instance being decided.
        instance: Instance,
        /// The proposed value.
        value: V,
    },
    /// Phase 2b: the acceptor accepted the value at `instance`.
    Accepted {
        /// The ballot under which the value was accepted.
        ballot: Ballot,
        /// The instance.
        instance: Instance,
    },
    /// Learn notification from a distinguished learner.
    Decide {
        /// The decided instance.
        instance: Instance,
        /// The chosen value.
        value: V,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m: PaxosMsg<u32> = PaxosMsg::Accept {
            ballot: Ballot::new(1, 0),
            instance: 3,
            value: 42,
        };
        assert_eq!(m.clone(), m);
        let d: PaxosMsg<u32> = PaxosMsg::Decide {
            instance: 3,
            value: 42,
        };
        assert_ne!(format!("{d:?}"), "");
    }
}
