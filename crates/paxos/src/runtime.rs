//! Threaded Paxos group runtime.
//!
//! A [`PaxosGroup`] is the execution of one multicast group's ordering
//! protocol (§VI-A of the paper): a **coordinator** thread that batches
//! submitted commands (8 KB cap) and drives phase 2, plus `n` **acceptor**
//! threads (3 in the paper). Coordinator and acceptors communicate over a
//! [`LiveNet`], so tests can inject link faults or crash an acceptor and
//! verify the group still makes progress with a majority.
//!
//! The coordinator doubles as distinguished learner: once a quorum of
//! `Accepted` replies arrives it delivers the batch, in instance order, to
//! every subscriber. Subscribers are the per-replica worker threads of the
//! replication engines in `psmr-core`.
//!
//! **Pacing.** Streams that are merged with others run round-paced
//! ([`Pacing::Ticks`]): a deployment-wide ticker clocks every group, each
//! tick closing one round (empty = *skip*) so all merged streams advance in
//! lockstep, as with the skip messages of Multi-Ring Paxos. Stand-alone
//! streams run traffic-driven ([`Pacing::Batched`]).

use crate::msg::PaxosMsg;
use crate::proposer::Proposer;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use psmr_common::metrics::{counters, gauges, global};
use psmr_common::runtime::{recv_timeout_via, Runtime, SchedulePoint};
use psmr_common::trace::{self, Stage};
use psmr_common::SystemConfig;
use psmr_netsim::live::LiveNet;
use psmr_netsim::sim::NodeId;
use psmr_wal::Wal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The value type a group agrees on: an **Arc-shared** batch of opaque
/// commands.
///
/// Sharing the allocation is what makes the hot path zero-copy: phase-2
/// fan-out hands every acceptor (and the learner bookkeeping inside the
/// proposer) a reference-count bump instead of a deep clone of the batch,
/// and the decided value moves into the delivered [`DecidedBatch`]
/// without being copied out of the consensus layer.
pub type Batch = Arc<Vec<Bytes>>;

/// An ordered batch delivered to a group subscriber.
///
/// `seq` numbers are contiguous and start at 1 within each group's stream;
/// a batch with no commands is a *skip* emitted to keep merge advancing.
/// The command payloads are the same `Bytes` the clients submitted and the
/// same allocation the consensus messages carried — one buffer end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidedBatch {
    /// 1-based position of this batch in the group's stream.
    pub seq: u64,
    /// The ordered commands inside the batch (possibly empty for skips),
    /// shared with every other subscriber rather than cloned per
    /// subscriber.
    pub commands: Batch,
}

impl DecidedBatch {
    /// Returns whether this is a skip (empty) batch.
    pub fn is_skip(&self) -> bool {
        self.commands.is_empty()
    }
}

/// How the coordinator paces its stream.
#[derive(Debug)]
pub enum Pacing {
    /// Traffic-driven batching: batches close when full or after the
    /// linger delay; the stream carries only real traffic. For streams
    /// nobody merges with another (SMR / sP-SMR deployments).
    Batched,
    /// Round-paced: the coordinator closes exactly one round (one
    /// [`DecidedBatch`]) per tick received on this channel — empty when
    /// idle, otherwise everything submitted since the previous tick.
    /// All groups of a deployment share one ticker, so their streams
    /// advance in lockstep and deterministic merge never drifts (the skip
    /// mechanism of Multi-Ring Paxos, centrally clocked).
    Ticks(Receiver<u64>),
}

/// Messages exchanged between coordinator and acceptors over the live net.
pub type NetMsg = PaxosMsg<Batch>;

/// Deployment-wide fsync notification hub for pipelined group commit.
///
/// The WAL sync thread bumps the hub after advancing durability
/// watermarks; response-holdback logic (in `psmr-core`) installs an
/// on-bump observer that runs **inline on the sync thread** — releasing
/// held responses in the same scheduling quantum as the fsync that
/// covered them — and can additionally park on [`DurabilityHub::wait_past`].
#[derive(Default)]
pub struct DurabilityHub {
    version: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
    /// Invoked inline by [`DurabilityHub::bump`] after the version moves.
    observer: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for DurabilityHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityHub")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl DurabilityHub {
    /// Creates a hub at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current notification version (monotonic).
    pub fn version(&self) -> u64 {
        *self.version.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs (or, with `None`, removes) the on-bump observer. Called
    /// with the watermark-advance callback of the response gate; must be
    /// cleared at gate shutdown (the hub holds the observer strongly).
    pub fn set_on_bump(&self, observer: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.observer.lock() = observer;
    }

    /// Advances the version, wakes every waiter and runs the observer
    /// (called by the sync thread after a watermark moved).
    pub fn bump(&self) {
        let mut v = self.version.lock().unwrap_or_else(|e| e.into_inner());
        *v += 1;
        drop(v);
        self.cv.notify_all();
        let observer = self.observer.lock().clone();
        if let Some(observer) = observer {
            observer();
        }
    }

    /// Blocks until the version moves past `seen` or `timeout` elapses;
    /// returns the version observed on wakeup.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut v = self.version.lock().unwrap_or_else(|e| e.into_inner());
        while *v <= seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, _) = self
                .cv
                .wait_timeout(v, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            v = next;
        }
        *v
    }
}

/// How a group's durable log is driven.
#[derive(Debug, Clone)]
pub enum WalMode {
    /// No durable log: the ordered stream lives in memory only.
    None,
    /// Inline group commit: every decided batch is appended **and its
    /// windowed `fsync` runs on the ordering thread** before fan-out —
    /// the conservative mode (`wal_batch` appends per fsync).
    Inline(Arc<Wal>),
    /// Pipelined group commit: the batch is appended and fanned out
    /// immediately; the covering `fsync` runs on the deployment's shared
    /// [`WalSyncer`] thread, which advances
    /// [`GroupHandle::durable_seq`]. Execution overlaps durability;
    /// callers gate externally-visible effects (client responses) on the
    /// watermark.
    Pipelined {
        /// The group's durable log.
        wal: Arc<Wal>,
        /// The deployment's shared sync thread.
        syncer: Arc<WalSyncer>,
    },
}

impl WalMode {
    fn wal(&self) -> Option<&Arc<Wal>> {
        match self {
            WalMode::None => None,
            WalMode::Inline(wal) | WalMode::Pipelined { wal, .. } => Some(wal),
        }
    }
}

/// Per-group pipelined-commit state shared between the ordering thread
/// and the deployment's [`WalSyncer`].
#[derive(Debug)]
struct Pipeline {
    wal: Arc<Wal>,
    /// Which group this log belongs to — labels the trace stamps the
    /// sync thread emits when a pass advances the watermark.
    group: usize,
    /// Highest stream seq appended to the log so far.
    appended: AtomicU64,
    /// Highest appended seq whose batch **carries commands** — the part
    /// of the log a response may be waiting on. Skip-only suffixes sync
    /// lazily: nothing observable gates on them.
    urgent: AtomicU64,
    /// Durability watermark: highest seq covered by an `fsync`
    /// (`u64::MAX` once the log is poisoned — durability abandoned, the
    /// stream keeps flowing, as in inline mode's detach-on-error).
    durable: AtomicU64,
    /// Fault injection: freeze this group's fsyncs (they "never land").
    hold: AtomicBool,
}

impl Pipeline {
    fn new(wal: Arc<Wal>, group: usize) -> Self {
        // Everything replayed from disk at open is already durable.
        let durable = wal.durable_next_seq().saturating_sub(1);
        Self {
            wal,
            group,
            appended: AtomicU64::new(durable),
            urgent: AtomicU64::new(durable),
            durable: AtomicU64::new(durable),
            hold: AtomicBool::new(false),
        }
    }

    /// The append path failed: durability is gone for good, so stop
    /// gating on it (matches inline mode, which detaches the WAL and
    /// keeps the in-memory stream flowing).
    fn poison(&self) {
        self.durable.store(u64::MAX, Ordering::Release);
    }
}

/// The deployment-wide WAL sync thread of pipelined group commit.
///
/// One thread serves **every** group: each pass group-commits all logs
/// with a command batch in their open window, publishes the advanced
/// watermarks and bumps the shared [`DurabilityHub`] once. Passes are
/// floored `pace` apart, so one fsync amortizes a whole pacing window of
/// appends — per-group sync threads chasing every record would burn a
/// core on fsync churn under a steady skip stream. Skip-only windows
/// (nothing observable gates on them) are flushed on a lazy timer
/// instead of eagerly.
#[derive(Debug)]
pub struct WalSyncer {
    shared: Arc<SyncerShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

#[derive(Debug)]
struct SyncerShared {
    hub: Arc<DurabilityHub>,
    /// Injected clock (pacing sleeps, lazy-flush timing) and scheduler
    /// (the `WalFsync` schedule point before each pipeline's fsync).
    rt: Runtime,
    pace: Duration,
    pipelines: Mutex<Vec<Arc<Pipeline>>>,
    stop: AtomicBool,
    /// Skip the final flush on stop (power-failure shutdown: the open
    /// windows are about to be discarded, flushing them would model a
    /// clean shutdown instead).
    abandon: AtomicBool,
    park: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

/// How often skip-only open windows are flushed.
const LAZY_SYNC_EVERY: Duration = Duration::from_millis(20);

impl WalSyncer {
    /// Spawns the sync thread with the given pacing interval on the
    /// production runtime; groups attach as they spawn with
    /// [`WalMode::Pipelined`].
    pub fn spawn(pace: Duration) -> Arc<Self> {
        Self::spawn_rt(pace, Runtime::real())
    }

    /// Like [`WalSyncer::spawn`], but pacing sleeps run on the injected
    /// clock and every per-pipeline fsync crosses the
    /// [`SchedulePoint::WalFsync`] schedule point of the injected
    /// scheduler first.
    pub fn spawn_rt(pace: Duration, rt: Runtime) -> Arc<Self> {
        let shared = Arc::new(SyncerShared {
            hub: Arc::new(DurabilityHub::new()),
            rt,
            pace,
            pipelines: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            park: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-syncer".into())
                .spawn(move || syncer_main(&shared))
                .expect("spawn WAL sync thread")
        };
        Arc::new(Self {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The hub response-holdback threads park on.
    pub fn hub(&self) -> &Arc<DurabilityHub> {
        &self.shared.hub
    }

    fn attach(&self, pipeline: Arc<Pipeline>) {
        self.shared.pipelines.lock().push(pipeline);
    }

    /// Ordering-thread side: an urgent (command-carrying) record landed
    /// in some log; wake the sync thread.
    fn nudge(&self) {
        let mut pending = self.shared.park.lock().unwrap_or_else(|e| e.into_inner());
        *pending = true;
        drop(pending);
        self.shared.cv.notify_one();
    }

    /// Stops the sync thread after one final flush pass (held groups
    /// excepted: their "in-flight" fsync never lands) and joins it.
    /// Call once every attached group has shut down.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
        // Drop the attachments so Wal handles (and their fds) release.
        self.shared.pipelines.lock().clear();
    }

    /// Stops the sync thread **without** the final flush — the
    /// power-failure shutdown, where every open group-commit window is
    /// about to be discarded and flushing it first would silently turn
    /// the scenario into a clean shutdown.
    pub fn abort(&self) {
        self.shared.abandon.store(true, Ordering::Relaxed);
        self.stop();
    }
}

/// One fsync pass over the attached pipelines. Returns whether any
/// watermark advanced.
fn sync_pass(
    shared: &SyncerShared,
    lazy: bool,
    inflight_gauge: &psmr_common::metrics::Gauge,
) -> bool {
    let pipelines: Vec<Arc<Pipeline>> = shared.pipelines.lock().clone();
    let mut advanced = false;
    for pipeline in pipelines {
        if pipeline.hold.load(Ordering::Relaxed) {
            continue;
        }
        let durable = pipeline.durable.load(Ordering::Acquire);
        if durable == u64::MAX {
            continue; // poisoned: nothing gates on this log anymore
        }
        let target = if lazy {
            pipeline.appended.load(Ordering::Acquire)
        } else {
            pipeline.urgent.load(Ordering::Acquire)
        };
        if target <= durable {
            continue;
        }
        // The window between fan-out and fsync is where power failures
        // bite; let an injected scheduler stretch it.
        shared.rt.sched.reach(SchedulePoint::WalFsync {
            group: pipeline.group as u64,
        });
        inflight_gauge.set(pipeline.appended.load(Ordering::Acquire) - durable);
        if pipeline.wal.sync().is_ok() {
            let synced = pipeline.wal.durable_next_seq().saturating_sub(1);
            // Stamp before publishing the watermark so a traced batch can
            // never observe its release without the durability stamp.
            trace::global().stamp_durable_range(pipeline.group, durable, synced);
            pipeline.durable.store(synced, Ordering::Release);
        } else {
            global().counter(counters::WAL_SYNC_FAILURES).inc();
            pipeline.poison();
        }
        advanced = true;
    }
    advanced
}

fn syncer_main(shared: &SyncerShared) {
    let clock = &shared.rt.clock;
    let inflight_gauge = global().gauge(gauges::WAL_INFLIGHT);
    let mut last_pass = clock.now() - shared.pace;
    let mut last_lazy = clock.now();
    loop {
        {
            let mut pending = shared.park.lock().unwrap_or_else(|e| e.into_inner());
            while !*pending && !shared.stop.load(Ordering::Relaxed) {
                let (next, timed_out) = shared
                    .cv
                    .wait_timeout(pending, clock.poll_slice(LAZY_SYNC_EVERY))
                    .unwrap_or_else(|e| e.into_inner());
                pending = next;
                if timed_out.timed_out()
                    && clock.now().saturating_duration_since(last_lazy) >= LAZY_SYNC_EVERY
                {
                    break; // lazy pass: flush skip-only windows
                }
            }
            *pending = false;
        }
        let stopping = shared.stop.load(Ordering::Relaxed);
        if stopping && shared.abandon.load(Ordering::Relaxed) {
            return; // power failure: the open windows die unflushed
        }
        if !stopping {
            // Pace the commits: everything appended while we sleep joins
            // this pass's group commit. `wal_sync_pace` is measured on
            // the injected clock, so a virtual-time test controls when
            // passes run.
            let since = clock.now().saturating_duration_since(last_pass);
            if since < shared.pace {
                clock.sleep(shared.pace - since);
            }
        }
        let lazy = stopping || clock.now().saturating_duration_since(last_lazy) >= LAZY_SYNC_EVERY;
        if sync_pass(shared, lazy, &inflight_gauge) {
            shared.hub.bump();
        }
        last_pass = clock.now();
        if lazy {
            last_lazy = last_pass;
        }
        if stopping {
            return;
        }
    }
}

/// Subscribers plus the retained suffix of the decided stream, guarded
/// together so a late subscriber ([`GroupHandle::subscribe_from`]) can
/// atomically replay the retained batches and join the live feed with
/// neither a gap nor a duplicate.
#[derive(Debug)]
struct StreamState {
    subscribers: Vec<Sender<Arc<DecidedBatch>>>,
    /// Retained decided batches, contiguous by `seq`, oldest first.
    log: VecDeque<Arc<DecidedBatch>>,
    /// Sequence number the next decided batch will carry.
    next_seq: u64,
    /// Maximum retained batches (checkpoints trim below this cap too).
    retention: usize,
    /// Capacity, in batches, of each subscriber's bounded delivery ring.
    queue_cap: usize,
    /// Durable ordered log, when the deployment configured one: every
    /// decided batch is appended before fan-out, so the stream survives
    /// a whole-deployment crash and a cold start can replay it.
    wal: Option<Arc<Wal>>,
}

#[derive(Debug)]
struct Inner {
    /// Commands queued for ordering, each carrying its enqueue time so the
    /// `Submitted` trace stamp covers the channel wait (the proposer loop
    /// can lag behind arrivals, e.g. while an inline-mode fsync runs).
    submit_tx: Sender<(Instant, Bytes)>,
    stream: Mutex<StreamState>,
    /// Pipelined-commit state of a [`WalMode::Pipelined`] group, plus
    /// the deployment syncer to nudge after urgent appends.
    pipeline: Option<Arc<Pipeline>>,
    syncer: Option<Arc<WalSyncer>>,
    shutdown: AtomicBool,
    /// Gate: the coordinator proposes nothing (no batches, no skips) until
    /// the group is started. Subscribers must register before the start so
    /// that every subscriber observes the stream from sequence number 1 —
    /// deterministic merge relies on that alignment.
    started: AtomicBool,
    decided: AtomicU64,
    net: LiveNet<NetMsg>,
    /// Injected clock + scheduler, inherited from the net the group was
    /// spawned on: submit stamps and coordinator timers read the clock,
    /// fan-out crosses the `Delivered` schedule point.
    rt: Runtime,
    group_id: usize,
}

impl Inner {
    /// Appends a decided batch to the log (durably, when a WAL is
    /// attached) and fans it out to every subscriber.
    ///
    /// Only the stream bookkeeping runs under the stream lock; the sends
    /// happen **outside** it, so a full subscriber ring blocks the
    /// ordering thread (backpressure — a slow worker throttles ordering
    /// instead of growing memory without bound) without also blocking
    /// [`GroupHandle::trim_below`] or a catch-up subscription behind the
    /// lock. Only the single ordering thread calls this, so the
    /// out-of-lock sends stay in stream order.
    fn deliver(&self, batch: Arc<DecidedBatch>) {
        if !batch.is_skip() {
            trace::global().stamp(self.group_id, batch.seq, Stage::Ordered);
        }
        let targets: Vec<Sender<Arc<DecidedBatch>>> = {
            let mut stream = self.stream.lock();
            debug_assert_eq!(batch.seq, stream.next_seq, "stream must stay contiguous");
            if let Some(wal) = &stream.wal {
                // Disk trouble must not stop the ordering protocol: the
                // in-memory stream keeps flowing. But a record that failed
                // to land ends the *durable prefix* — replay could never
                // cross the hole, so appending later records would only
                // misrepresent the log. Detach the WAL at the first failure
                // and surface the gap through the counter (and release any
                // responses a pipelined deployment was holding: the
                // durability they wait for can no longer arrive).
                if wal.append(batch.seq, &batch.commands).is_err() {
                    global().counter(counters::WAL_APPEND_FAILURES).inc();
                    stream.wal = None;
                    if let Some(pipeline) = &self.pipeline {
                        pipeline.poison();
                        if let Some(syncer) = &self.syncer {
                            // Release anything held on this log: the
                            // durability it waits for can never arrive.
                            syncer.hub().bump();
                        }
                    }
                } else if let Some(pipeline) = &self.pipeline {
                    pipeline.appended.store(batch.seq, Ordering::Release);
                    if !batch.is_skip() {
                        pipeline.urgent.store(batch.seq, Ordering::Release);
                        if let Some(syncer) = &self.syncer {
                            syncer.nudge();
                        }
                    }
                }
            }
            // Stamped whether or not a WAL is attached: in a no-WAL
            // deployment the append is a no-op and the stage collapses to
            // zero width, keeping the interval chain complete.
            if !batch.is_skip() {
                trace::global().stamp(self.group_id, batch.seq, Stage::WalAppended);
            }
            stream.next_seq = batch.seq + 1;
            stream.log.push_back(Arc::clone(&batch));
            while stream.log.len() > stream.retention {
                stream.log.pop_front();
            }
            // Every subscriber captured here registered before this batch
            // entered the retained log, so none of them saw it through a
            // catch-up replay; every later subscriber replays it from the
            // log instead. Exactly-once either way.
            stream.subscribers.clone()
        };
        // Outside the stream lock, before the fan-out sends: an injected
        // scheduler can stall the ordering thread here — the window
        // between append and fan-out — without holding up `trim_below`.
        self.rt.sched.reach(SchedulePoint::Delivered {
            group: self.group_id as u64,
            seq: batch.seq,
        });
        let mut dead: Vec<&Sender<Arc<DecidedBatch>>> = Vec::new();
        for tx in &targets {
            match tx.try_send(Arc::clone(&batch)) {
                Ok(()) => {}
                Err(TrySendError::Full(b)) => {
                    // Registry lookups stay off the non-stalled path.
                    global()
                        .counter(counters::DELIVERY_BACKPRESSURE_STALLS)
                        .inc();
                    global()
                        .gauge(gauges::DELIVERY_QUEUE_DEPTH)
                        .set(tx.len() as u64);
                    if tx.send(b).is_err() {
                        dead.push(tx);
                    }
                }
                Err(TrySendError::Disconnected(_)) => dead.push(tx),
            }
        }
        if !dead.is_empty() {
            // Prune disconnected subscribers under the lock; identity
            // comparison keeps a subscriber registered between capture
            // and pruning untouched.
            let mut stream = self.stream.lock();
            stream
                .subscribers
                .retain(|s| !dead.iter().any(|d| d.same_channel(s)));
        }
    }
}

/// Handle to a running Paxos group. Cloneable; the group shuts down when
/// [`GroupHandle::shutdown`] is called (threads are detached daemons that
/// exit on shutdown).
#[derive(Debug, Clone)]
pub struct GroupHandle {
    inner: Arc<Inner>,
}

/// Spawner for Paxos group runtimes. See the [crate-level
/// example](crate) for typical usage.
#[derive(Debug)]
pub struct PaxosGroup {
    handle: GroupHandle,
    threads: Vec<JoinHandle<()>>,
}

/// Deterministic node-id layout of a group on its live net: coordinator at
/// `group*100`, acceptor `i` at `group*100 + 1 + i`.
pub fn coordinator_node(group_id: usize) -> NodeId {
    NodeId::new(group_id as u64 * 100)
}

/// Node id of acceptor `i` of a group (see [`coordinator_node`]).
pub fn acceptor_node(group_id: usize, i: usize) -> NodeId {
    NodeId::new(group_id as u64 * 100 + 1 + i as u64)
}

impl PaxosGroup {
    /// Spawns a traffic-driven group with its own private network.
    pub fn spawn(group_id: usize, cfg: &SystemConfig) -> Self {
        Self::spawn_with(group_id, cfg, LiveNet::new(), Pacing::Batched)
    }

    /// Spawns a group on the given network with the given skip policy.
    ///
    /// Tests pass a shared [`LiveNet`] here so they can crash acceptors or
    /// inject link faults while the group runs.
    pub fn spawn_with(
        group_id: usize,
        cfg: &SystemConfig,
        net: LiveNet<NetMsg>,
        pacing: Pacing,
    ) -> Self {
        Self::spawn_with_wal(group_id, cfg, net, pacing, None)
    }

    /// Like [`PaxosGroup::spawn_with`], additionally attaching a durable
    /// write-ahead log in the inline (conservative) mode — shorthand for
    /// [`PaxosGroup::spawn_with_wal_mode`] with [`WalMode::Inline`].
    ///
    /// # Panics
    ///
    /// See [`PaxosGroup::spawn_with_wal_mode`].
    pub fn spawn_with_wal(
        group_id: usize,
        cfg: &SystemConfig,
        net: LiveNet<NetMsg>,
        pacing: Pacing,
        wal: Option<Arc<Wal>>,
    ) -> Self {
        let mode = match wal {
            Some(wal) => WalMode::Inline(wal),
            None => WalMode::None,
        };
        Self::spawn_with_wal_mode(group_id, cfg, net, pacing, mode)
    }

    /// Spawns a group with the given durable-log mode. Every decided
    /// batch is appended to the log before fan-out ([`WalMode::Inline`])
    /// or concurrently with it ([`WalMode::Pipelined`]),
    /// [`GroupHandle::trim_below`] trims its segments, and — crucially
    /// for whole-deployment cold starts — the log's existing records are
    /// **replayed into the retained log** here, so the stream
    /// *continues* the old sequence numbering instead of restarting at
    /// 1: checkpoint cuts taken before the crash stay comparable, and
    /// `subscribe_from` reaches back into the pre-crash suffix.
    ///
    /// # Panics
    ///
    /// Panics when the log's records cannot be replayed, or when replay
    /// stops short of the log's tail (corruption in a *non-tail*
    /// segment — a torn tail self-heals, a hole in the middle of the
    /// stream cannot) — a group asked to be durable must not come up
    /// with a silently truncated stream.
    pub fn spawn_with_wal_mode(
        group_id: usize,
        cfg: &SystemConfig,
        net: LiveNet<NetMsg>,
        pacing: Pacing,
        mode: WalMode,
    ) -> Self {
        let all: Vec<usize> = (0..cfg.n_acceptors).collect();
        Self::spawn_hosted(group_id, cfg, net, pacing, mode, &all)
    }

    /// Like [`PaxosGroup::spawn_with_wal_mode`], but spawns acceptor
    /// threads only for the indices in `local_acceptors`. The remaining
    /// acceptors are expected to run elsewhere — typically in other OS
    /// processes reached through the net's gateway (see
    /// `psmr_netsim::live::LiveNet::set_gateway` and the `psmr-net`
    /// bridge) — as [`RemoteAcceptor`]s registered under the same
    /// [`acceptor_node`] ids. Quorum logic is unchanged: the coordinator
    /// still addresses all `cfg.n_acceptors` acceptors and needs a
    /// majority of them reachable to decide.
    ///
    /// # Panics
    ///
    /// See [`PaxosGroup::spawn_with_wal_mode`].
    pub fn spawn_hosted(
        group_id: usize,
        cfg: &SystemConfig,
        net: LiveNet<NetMsg>,
        pacing: Pacing,
        mode: WalMode,
        local_acceptors: &[usize],
    ) -> Self {
        let mut log = VecDeque::new();
        let mut next_seq = 1;
        if let Some(wal) = mode.wal() {
            for record in wal.replay().expect("replay group write-ahead log") {
                log.push_back(Arc::new(DecidedBatch {
                    seq: record.seq,
                    // The replayed commands move straight into the
                    // retained log — no per-batch deep clone on the
                    // respawn path.
                    commands: Arc::new(record.commands),
                }));
            }
            next_seq = wal.next_seq();
            // Replay must reach the tail: records stopping short mean a
            // corrupt frame in an earlier segment, and bridging the
            // hole would rebuild divergent state with no error.
            let replayed_through = log
                .back()
                .map_or(wal.first_seq(), |b: &Arc<DecidedBatch>| b.seq + 1);
            assert!(
                replayed_through == next_seq,
                "write-ahead log of group {group_id} is corrupt mid-stream: \
                 replay reaches seq {replayed_through}, tail is at {next_seq}"
            );
        }
        let (pipeline, syncer) = match &mode {
            WalMode::Pipelined { wal, syncer } => {
                let pipeline = Arc::new(Pipeline::new(Arc::clone(wal), group_id));
                syncer.attach(Arc::clone(&pipeline));
                (Some(pipeline), Some(Arc::clone(syncer)))
            }
            _ => (None, None),
        };
        let (submit_tx, submit_rx) = bounded::<(Instant, Bytes)>(16 * 1024);
        let inner = Arc::new(Inner {
            submit_tx,
            stream: Mutex::new(StreamState {
                subscribers: Vec::new(),
                log,
                next_seq,
                retention: cfg.log_retention.max(1),
                queue_cap: cfg.delivery_queue.max(1),
                wal: mode.wal().cloned(),
            }),
            pipeline,
            syncer,
            shutdown: AtomicBool::new(false),
            started: AtomicBool::new(false),
            decided: AtomicU64::new(0),
            rt: net.runtime().clone(),
            net: net.clone(),
            group_id,
        });

        let mut threads = Vec::new();
        // Acceptor threads (only the locally hosted subset).
        for &i in local_acceptors {
            assert!(
                i < cfg.n_acceptors,
                "local acceptor index {i} out of range (group has {})",
                cfg.n_acceptors
            );
            let node = acceptor_node(group_id, i);
            let inbox = net.register(node);
            let net = net.clone();
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("acceptor-g{group_id}-a{i}"))
                    .spawn(move || acceptor_main(node, inbox, net, inner))
                    .expect("spawn acceptor thread"),
            );
        }
        // Coordinator thread.
        let coord_inbox = net.register(coordinator_node(group_id));
        let coord_inner = Arc::clone(&inner);
        let cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("coord-g{group_id}"))
                .spawn(move || coordinator_main(cfg, coord_inner, submit_rx, coord_inbox, pacing))
                .expect("spawn coordinator thread"),
        );

        Self {
            handle: GroupHandle { inner },
            threads,
        }
    }

    /// Returns a cloneable handle to the group.
    pub fn handle(&self) -> GroupHandle {
        self.handle.clone()
    }

    /// See [`GroupHandle::submit`].
    pub fn submit(&self, command: Bytes) {
        self.handle.submit(command);
    }

    /// See [`GroupHandle::subscribe`].
    pub fn subscribe(&self) -> Receiver<Arc<DecidedBatch>> {
        self.handle.subscribe()
    }

    /// See [`GroupHandle::start`].
    pub fn start(&self) {
        self.handle.start();
    }

    /// See [`GroupHandle::net`].
    pub fn net(&self) -> LiveNet<NetMsg> {
        self.handle.net()
    }

    /// Stops the group and joins its threads.
    pub fn shutdown(mut self) {
        self.handle.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A stand-alone acceptor thread: one group member hosted by a process
/// that does not run the group's coordinator.
///
/// Multi-process deployments spawn the coordinator (and its co-located
/// acceptor) with [`PaxosGroup::spawn_hosted`] on one node and a
/// `RemoteAcceptor` per remaining node; the coordinator's phase-1/2
/// traffic reaches them through the net's gateway (bridged over TCP by
/// `psmr-net`). The acceptor is intentionally amnesiac across process
/// restarts — safe in this deployment shape because the group runs a
/// fixed coordinator that is also the distinguished learner: a value it
/// decided is retained in its stream/WAL, so a restarted acceptor
/// re-promising from scratch can never help a *different* value win.
#[derive(Debug)]
pub struct RemoteAcceptor {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl RemoteAcceptor {
    /// Registers [`acceptor_node`]`(group_id, index)` on `net` and runs
    /// the acceptor loop until [`RemoteAcceptor::shutdown`].
    pub fn spawn(group_id: usize, index: usize, net: LiveNet<NetMsg>) -> Self {
        let node = acceptor_node(group_id, index);
        let inbox = net.register(node);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let clock = net.runtime().clock.clone();
        let thread = std::thread::Builder::new()
            .name(format!("racceptor-g{group_id}-a{index}"))
            .spawn(move || {
                let mut acceptor = crate::acceptor::Acceptor::<Batch>::new();
                loop {
                    match recv_timeout_via(&*clock, &inbox, Duration::from_millis(50)) {
                        Ok((from, msg)) => {
                            if let Some(reply) = acceptor.handle(msg) {
                                net.send(node, from, reply);
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if stop_flag.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
            .expect("spawn remote acceptor thread");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the acceptor thread and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl GroupHandle {
    /// Submits a command for ordering. Blocks when the group's submission
    /// queue is full (natural client backpressure); silently drops the
    /// command if the group has shut down.
    pub fn submit(&self, command: Bytes) {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            global().counter(counters::REQUESTS_DROPPED).inc();
            return;
        }
        if self
            .inner
            .submit_tx
            .send((self.inner.rt.clock.now(), command))
            .is_err()
        {
            global().counter(counters::REQUESTS_DROPPED).inc();
        }
    }

    /// Registers a new subscriber. The subscriber receives every batch the
    /// group decides, from sequence number 1, in stream order.
    ///
    /// # Panics
    ///
    /// Panics if the group has already been started: late subscribers would
    /// observe a truncated stream and break deterministic merge.
    pub fn subscribe(&self) -> Receiver<Arc<DecidedBatch>> {
        assert!(
            !self.inner.started.load(Ordering::Relaxed),
            "subscribe must happen before the group is started"
        );
        let mut stream = self.inner.stream.lock();
        let (tx, rx) = bounded(stream.queue_cap);
        stream.subscribers.push(tx);
        rx
    }

    /// Registers a subscriber **after** the group started, replaying the
    /// retained log from `from_seq` before joining the live feed — the
    /// catch-up path a restarted replica uses. The replay and the
    /// registration happen atomically with delivery, so the subscriber
    /// observes the stream gap-free from `from_seq`.
    ///
    /// # Errors
    ///
    /// Returns the first retained sequence number if the log has been
    /// trimmed past `from_seq`, or `None` inside the error if `from_seq`
    /// lies in the future of the stream.
    pub fn subscribe_from(
        &self,
        from_seq: u64,
    ) -> Result<Receiver<Arc<DecidedBatch>>, SubscribeError> {
        let mut stream = self.inner.stream.lock();
        if from_seq > stream.next_seq {
            return Err(SubscribeError::Future {
                next_seq: stream.next_seq,
            });
        }
        if let Some(front) = stream.log.front() {
            if from_seq < front.seq {
                return Err(SubscribeError::Trimmed {
                    first_retained: front.seq,
                });
            }
        } else if from_seq < stream.next_seq {
            return Err(SubscribeError::Trimmed {
                first_retained: stream.next_seq,
            });
        }
        // The ring must hold the whole replayed suffix up front (nobody
        // consumes until this returns) plus the normal live headroom;
        // the replayed entries are Arc clones of retained batches, so
        // the extra capacity costs pointers, not payload copies.
        let replayed = stream.log.iter().filter(|b| b.seq >= from_seq).count();
        let (tx, rx) = bounded(replayed + stream.queue_cap);
        for batch in stream.log.iter().filter(|b| b.seq >= from_seq) {
            let _ = tx.send(Arc::clone(batch));
        }
        stream.subscribers.push(tx);
        Ok(rx)
    }

    /// Drops retained batches with `seq < below` — called once a
    /// checkpoint covers them. Keeps everything a recovery from the
    /// latest checkpoint could still need. With a write-ahead log
    /// attached, also unlinks the log segments the trim makes
    /// unreachable (segment granularity: the WAL may retain slightly
    /// more than memory, never less).
    pub fn trim_below(&self, below: u64) {
        let wal = {
            let mut stream = self.inner.stream.lock();
            while stream.log.front().is_some_and(|b| b.seq < below) {
                stream.log.pop_front();
            }
            stream.wal.clone()
        };
        // Segment unlinks happen outside the stream lock: the WAL is
        // internally locked, and delivery must not stall behind file
        // I/O it does not depend on.
        if let Some(wal) = wal {
            let _ = wal.trim_below(below);
        }
    }

    /// Number of decided batches currently retained for catch-up.
    pub fn retained_len(&self) -> usize {
        self.inner.stream.lock().log.len()
    }

    /// Sequence number the next decided batch will carry. Grows
    /// monotonically across process incarnations of a WAL-backed group,
    /// which makes it usable as an incarnation stamp (cold starts derive
    /// fresh client-id ranges from it so new clients never collide with
    /// the client ids inside replayed commands).
    pub fn next_seq(&self) -> u64 {
        self.inner.stream.lock().next_seq
    }

    /// First retained sequence number, if the log is non-empty.
    pub fn first_retained_seq(&self) -> Option<u64> {
        self.inner.stream.lock().log.front().map(|b| b.seq)
    }

    /// The live network this group's coordinator and acceptors run on;
    /// tests use it to crash acceptors or degrade links mid-run.
    pub fn net(&self) -> LiveNet<NetMsg> {
        self.inner.net.clone()
    }

    /// Opens the gate: the coordinator starts deciding batches (and skip
    /// rounds, if enabled). Call after every subscriber has registered.
    pub fn start(&self) {
        self.inner.started.store(true, Ordering::Release);
    }

    /// Number of batches decided so far.
    pub fn decided_count(&self) -> u64 {
        self.inner.decided.load(Ordering::Relaxed)
    }

    /// The group's identifier.
    pub fn group_id(&self) -> usize {
        self.inner.group_id
    }

    /// The group's durability watermark: the highest stream sequence
    /// number whose batch is known covered by an `fsync`.
    ///
    /// * [`WalMode::Pipelined`]: advanced by the sync thread; gates
    ///   response release in the engines. `u64::MAX` once the log failed
    ///   (durability abandoned, nothing left to wait for).
    /// * [`WalMode::Inline`] / no WAL: everything delivered counts as
    ///   stable under the process-crash model, so this tracks
    ///   `next_seq - 1`.
    pub fn durable_seq(&self) -> u64 {
        match &self.inner.pipeline {
            Some(pipeline) => pipeline.durable.load(Ordering::Acquire),
            None => self.inner.stream.lock().next_seq - 1,
        }
    }

    /// Fault injection: freezes (or thaws) the pipelined sync thread, as
    /// if the covering `fsync` never completed. While held, the
    /// durability watermark stops advancing — and a group shut down
    /// while held skips its final flush, modeling a crash between
    /// fan-out and fsync. No-op for non-pipelined groups.
    pub fn hold_wal_sync(&self, hold: bool) {
        if let Some(pipeline) = &self.inner.pipeline {
            pipeline.hold.store(hold, Ordering::Relaxed);
        }
    }

    /// Power-failure fault injection: discards the WAL's un-fsynced
    /// suffix ([`psmr_wal::Wal::discard_unsynced`]). Call after the
    /// group's threads have stopped — a live ordering thread would race
    /// the truncation. Returns how many records were dropped (0 without
    /// a WAL).
    pub fn power_fail(&self) -> u64 {
        let wal = self.inner.stream.lock().wal.clone();
        wal.map_or(0, |wal| wal.discard_unsynced().unwrap_or(0))
    }

    /// Signals all threads of the group to stop. (A pipelined
    /// deployment's shared [`WalSyncer`] is stopped separately, once
    /// every group attached to it has shut down.)
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.net.shutdown();
        self.inner.stream.lock().subscribers.clear();
    }
}

/// Error of [`GroupHandle::subscribe_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// The retained log no longer reaches back to the requested seq.
    Trimmed {
        /// Oldest sequence number still available.
        first_retained: u64,
    },
    /// The requested seq has not been decided yet.
    Future {
        /// The next sequence number the stream will produce.
        next_seq: u64,
    },
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Trimmed { first_retained } => {
                write!(f, "log trimmed; first retained seq is {first_retained}")
            }
            SubscribeError::Future { next_seq } => {
                write!(f, "requested seq is in the future (next is {next_seq})")
            }
        }
    }
}

impl std::error::Error for SubscribeError {}

fn acceptor_main(
    node: NodeId,
    inbox: Receiver<(NodeId, NetMsg)>,
    net: LiveNet<NetMsg>,
    inner: Arc<Inner>,
) {
    let mut acceptor = crate::acceptor::Acceptor::<Batch>::new();
    loop {
        match recv_timeout_via(&*inner.rt.clock, &inbox, Duration::from_millis(50)) {
            Ok((from, msg)) => {
                if let Some(reply) = acceptor.handle(msg) {
                    net.send(node, from, reply);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn coordinator_main(
    cfg: SystemConfig,
    inner: Arc<Inner>,
    submit_rx: Receiver<(Instant, Bytes)>,
    inbox: Receiver<(NodeId, NetMsg)>,
    pacing: Pacing,
) {
    let me = coordinator_node(inner.group_id);
    let acceptors: Vec<NodeId> = (0..cfg.n_acceptors)
        .map(|i| acceptor_node(inner.group_id, i))
        .collect();
    let net = inner.net.clone();
    let broadcast = move |msgs: Vec<NetMsg>| {
        for msg in msgs {
            for &a in &acceptors {
                net.send(me, a, msg.clone());
            }
        }
    };

    let mut prop: Proposer<Batch> = Proposer::new(me.as_raw(), cfg.n_acceptors);
    broadcast(vec![prop.start()]);

    // Wait for leadership (phase 1) before accepting traffic.
    while !prop.is_leading() {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match recv_timeout_via(&*inner.rt.clock, &inbox, Duration::from_millis(20)) {
            Ok((from, msg)) => {
                let out = prop.handle(from.as_raw(), msg);
                broadcast(out);
            }
            Err(RecvTimeoutError::Timeout) => {
                // Retry phase 1: promises may have been lost.
                broadcast(vec![prop.start()]);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }

    match pacing {
        Pacing::Ticks(ticks) => {
            round_paced_main(cfg, inner, submit_rx, inbox, ticks, prop, broadcast)
        }
        Pacing::Batched => batched_main(cfg, inner, submit_rx, inbox, prop, broadcast),
    }
}

/// Traffic-driven batching (single-stream deployments: SMR, sP-SMR).
///
/// Batches close when full (8 KB cap) or after the linger delay. The stream
/// carries only real traffic — fine when nobody merges it with another
/// stream.
fn batched_main(
    cfg: SystemConfig,
    inner: Arc<Inner>,
    submit_rx: Receiver<(Instant, Bytes)>,
    inbox: Receiver<(NodeId, NetMsg)>,
    mut prop: Proposer<Batch>,
    broadcast: impl Fn(Vec<NetMsg>),
) {
    /// Upper bound on instances proposed but not yet decided; bounds memory
    /// under overload while keeping the pipeline full.
    const MAX_INFLIGHT: usize = 256;

    // A WAL-seeded stream continues the pre-crash numbering: Paxos
    // instances restart at 0 each incarnation, the stream seq does not.
    let seq_base = inner.stream.lock().next_seq;
    // Linger timing runs on the injected clock so a virtual-time test
    // controls exactly when batches close.
    let clock = Arc::clone(&inner.rt.clock);
    let mut batch: Vec<Bytes> = Vec::new();
    let mut batch_bytes = 0usize;
    // Linger timer: when this loop *saw* the batch's first command.
    let mut batch_opened_at: Option<Instant> = None;
    // Trace origin: when that command was *enqueued* — includes the
    // channel wait, which grows whenever this loop lags behind arrivals.
    let mut batch_arrived_at: Option<Instant> = None;
    // Mirrors the proposer's instance counter (instances are assigned
    // sequentially in submission order), so the stream seq of a batch is
    // known at submit time — where the Submitted trace stamp belongs.
    let mut submitted: u64 = 0;

    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }

        // 0. Hold the gate until the group is started so every subscriber
        //    sees the stream from its first batch.
        if !inner.started.load(Ordering::Acquire) {
            match inbox.recv_timeout(Duration::from_millis(1)) {
                Ok((from, msg)) => broadcast(prop.handle(from.as_raw(), msg)),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }

        // 1. Wait for work on either channel: a new submission or an
        //    acceptor reply. The timeout covers the batch linger.
        let timeout = match batch_opened_at {
            Some(t) => cfg
                .batch_delay
                .saturating_sub(clock.now().saturating_duration_since(t))
                .max(Duration::from_micros(1)),
            None => Duration::from_millis(5),
        };
        crossbeam::channel::select! {
            recv(submit_rx) -> cmd => {
                if let Ok((at, cmd)) = cmd {
                    batch_bytes += cmd.len();
                    batch.push(cmd);
                    if batch_opened_at.is_none() {
                        batch_opened_at = Some(clock.now());
                        batch_arrived_at = Some(at);
                    }
                }
            }
            recv(inbox) -> msg => {
                match msg {
                    Ok((from, msg)) => broadcast(prop.handle(from.as_raw(), msg)),
                    Err(_) => return,
                }
            }
            default(clock.poll_slice(timeout)) => {}
        }
        // Drain whatever else is queued, without blocking.
        while batch_bytes < cfg.batch_bytes {
            match submit_rx.try_recv() {
                Ok((at, cmd)) => {
                    batch_bytes += cmd.len();
                    batch.push(cmd);
                    if batch_opened_at.is_none() {
                        batch_opened_at = Some(clock.now());
                        batch_arrived_at = Some(at);
                    }
                }
                Err(_) => break,
            }
        }
        while let Ok((from, msg)) = inbox.try_recv() {
            broadcast(prop.handle(from.as_raw(), msg));
        }

        // 2. Close the batch if full or lingered long enough (respect the
        //    pipeline cap).
        let linger_expired = batch_opened_at
            .map(|t| clock.now().saturating_duration_since(t) >= cfg.batch_delay)
            .unwrap_or(false);
        if (batch_bytes >= cfg.batch_bytes || (linger_expired && !batch.is_empty()))
            && prop.inflight_len() < MAX_INFLIGHT
        {
            let full = std::mem::take(&mut batch);
            batch_bytes = 0;
            batch_opened_at = None;
            if let Some(arrived) = batch_arrived_at.take() {
                trace::global().stamp_at(
                    inner.group_id,
                    seq_base + submitted,
                    Stage::Submitted,
                    arrived,
                );
            }
            submitted += 1;
            // One Arc for phase 2: every acceptor receives the same
            // shared value, never a deep clone of the commands.
            broadcast(prop.submit(Arc::new(full)));
        }

        // 3. Deliver decided batches to subscribers, in order (one stream
        //    batch per decided instance). The decided value moves into
        //    the stream batch as the same shared allocation.
        for (instance, commands) in prop.take_decided() {
            inner.decided.fetch_add(1, Ordering::Relaxed);
            inner.deliver(Arc::new(DecidedBatch {
                seq: seq_base + instance,
                commands,
            }));
        }
    }
}

/// Round-paced operation (P-SMR groups, Multi-Ring Paxos style).
///
/// Deterministic merge pairs batch `r` of every merged stream, so **all
/// streams must produce batches at the same rate** — otherwise their
/// sequence numbers drift apart without bound and a command routed through
/// the slow stream waits for the fast one to be re-consumed from far
/// behind. All groups of a deployment therefore share one ticker; on each
/// tick a group closes exactly one round: everything submitted since the
/// previous tick, split across Paxos instances of at most `batch_bytes`
/// each (the paper's 8 KB message cap), or a single empty *skip* instance
/// when idle.
fn round_paced_main(
    cfg: SystemConfig,
    inner: Arc<Inner>,
    submit_rx: Receiver<(Instant, Bytes)>,
    inbox: Receiver<(NodeId, NetMsg)>,
    ticks: Receiver<u64>,
    mut prop: Proposer<Batch>,
    broadcast: impl Fn(Vec<NetMsg>),
) {
    // Rounds not yet fully decided: (instances remaining, commands so far).
    let mut open_rounds: VecDeque<(usize, Vec<Bytes>)> = VecDeque::new();
    // A WAL-seeded stream continues the pre-crash numbering.
    let mut next_seq: u64 = inner.stream.lock().next_seq;
    // Commands received between ticks, and when the oldest was enqueued.
    // The enqueue time travels with the command, so the Submitted trace
    // stamp covers both the channel wait and the up-to-one-tick round
    // wait — all of it is round-paced latency, not measurement setup.
    let mut pending: Vec<Bytes> = Vec::new();
    let mut pending_opened: Option<Instant> = None;

    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }

        // 1. Wait for a tick, a submission, or an acceptor reply (ticks
        //    only flow once the deployment has started, which also gates
        //    the first round).
        crossbeam::channel::select! {
            recv(ticks) -> tick => {
                if tick.is_err() {
                    return; // ticker gone: deployment shut down
                }
                // Close one round: everything submitted since the last
                // tick, split into <= batch_bytes instances.
                while let Ok((at, cmd)) = submit_rx.try_recv() {
                    if pending_opened.is_none() {
                        pending_opened = Some(at);
                    }
                    pending.push(cmd);
                }
                let mut instances: Vec<Vec<Bytes>> = vec![Vec::new()];
                let mut last_bytes = 0usize;
                for cmd in pending.drain(..) {
                    if last_bytes + cmd.len() > cfg.batch_bytes
                        && !instances.last().expect("non-empty").is_empty()
                    {
                        instances.push(Vec::new());
                        last_bytes = 0;
                    }
                    last_bytes += cmd.len();
                    instances.last_mut().expect("non-empty").push(cmd);
                }
                // Each queued round consumes exactly one stream seq, so
                // this round's seq is known now — stamp the submit time
                // of its oldest command before proposing.
                if let Some(opened) = pending_opened.take() {
                    trace::global().stamp_at(
                        inner.group_id,
                        next_seq + open_rounds.len() as u64,
                        Stage::Submitted,
                        opened,
                    );
                }
                open_rounds.push_back((instances.len(), Vec::new()));
                for instance_batch in instances {
                    broadcast(prop.submit(Arc::new(instance_batch)));
                }
            }
            recv(submit_rx) -> cmd => {
                if let Ok((at, cmd)) = cmd {
                    if pending_opened.is_none() {
                        pending_opened = Some(at);
                    }
                    pending.push(cmd);
                }
            }
            recv(inbox) -> msg => {
                match msg {
                    Ok((from, msg)) => broadcast(prop.handle(from.as_raw(), msg)),
                    Err(_) => return,
                }
            }
            default(inner.rt.clock.poll_slice(Duration::from_millis(5))) => {}
        }
        // Drain queued replies without blocking.
        while let Ok((from, msg)) = inbox.try_recv() {
            broadcast(prop.handle(from.as_raw(), msg));
        }

        // 2. Fold decided instances into their rounds; deliver every round
        //    whose instances are all decided (instance order == submission
        //    order, so rounds complete in order). Folding clones only the
        //    `Bytes` handles — the payload allocations stay shared with
        //    the consensus layer.
        for (_, commands) in prop.take_decided() {
            let front = open_rounds
                .front_mut()
                .expect("instance belongs to a round");
            front.1.extend(commands.iter().cloned());
            front.0 -= 1;
            if front.0 == 0 {
                let (_, commands) = open_rounds.pop_front().expect("front exists");
                inner.decided.fetch_add(1, Ordering::Relaxed);
                let out = Arc::new(DecidedBatch {
                    seq: next_seq,
                    commands: Arc::new(commands),
                });
                next_seq += 1;
                inner.deliver(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::new(1);
        cfg.batch_delay(Duration::from_micros(100))
            .skip_interval(Duration::from_millis(5));
        cfg
    }

    #[test]
    fn single_command_is_delivered() {
        let group = PaxosGroup::spawn(1, &test_cfg());
        let sub = group.subscribe();
        group.start();
        group.submit(Bytes::from_static(b"hello"));
        let batch = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(batch.seq, 1);
        assert_eq!(&batch.commands[..], &[Bytes::from_static(b"hello")]);
        group.shutdown();
    }

    #[test]
    fn stream_seq_numbers_are_contiguous() {
        let group = PaxosGroup::spawn(2, &test_cfg());
        let sub = group.subscribe();
        group.start();
        for i in 0..200u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        }
        let mut got = Vec::new();
        let mut expect_seq = 1;
        while got.len() < 200 {
            let batch = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
            assert_eq!(batch.seq, expect_seq, "contiguous stream");
            expect_seq += 1;
            got.extend(
                batch
                    .commands
                    .iter()
                    .map(|c| u32::from_le_bytes(c[..4].try_into().unwrap())),
            );
        }
        assert_eq!(got, (0..200).collect::<Vec<_>>(), "FIFO order preserved");
        group.shutdown();
    }

    #[test]
    fn all_subscribers_see_the_same_stream() {
        let group = PaxosGroup::spawn(3, &test_cfg());
        let sub1 = group.subscribe();
        let sub2 = group.subscribe();
        group.start();
        for i in 0..50u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        }
        let drain = |rx: &Receiver<Arc<DecidedBatch>>| {
            let mut cmds = Vec::new();
            while cmds.len() < 50 {
                let b = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
                cmds.extend(b.commands.iter().cloned());
            }
            cmds
        };
        assert_eq!(drain(&sub1), drain(&sub2));
        group.shutdown();
    }

    #[test]
    fn batching_respects_size_cap() {
        let mut cfg = test_cfg();
        cfg.batch_bytes(64);
        let group = PaxosGroup::spawn(4, &cfg);
        let sub = group.subscribe();
        group.start();
        // 32 commands of 16 bytes each; no batch may exceed ~64+16 bytes.
        for i in 0..32u64 {
            group.submit(Bytes::from(vec![i as u8; 16]));
        }
        let mut seen = 0;
        while seen < 32 {
            let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
            let bytes: usize = b.commands.iter().map(|c| c.len()).sum();
            assert!(bytes <= 64 + 16, "batch of {bytes} bytes exceeds cap");
            seen += b.commands.len();
        }
        group.shutdown();
    }

    #[test]
    fn ticked_group_emits_skip_rounds_when_idle() {
        let (tick_tx, tick_rx) = crossbeam::channel::unbounded();
        let group = PaxosGroup::spawn_with(5, &test_cfg(), LiveNet::new(), Pacing::Ticks(tick_rx));
        let sub = group.subscribe();
        group.start();
        tick_tx.send(1).unwrap();
        let batch = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("skip arrives");
        assert!(batch.is_skip());
        assert_eq!(batch.seq, 1);
        group.shutdown();
    }

    #[test]
    fn ticked_group_packs_submissions_into_one_round() {
        let (tick_tx, tick_rx) = crossbeam::channel::unbounded();
        let group = PaxosGroup::spawn_with(9, &test_cfg(), LiveNet::new(), Pacing::Ticks(tick_rx));
        let sub = group.subscribe();
        group.start();
        for i in 0..10u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        }
        // Give submissions time to land in the queue, then tick once.
        std::thread::sleep(Duration::from_millis(20));
        tick_tx.send(1).unwrap();
        let batch = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("round arrives");
        assert_eq!(batch.seq, 1);
        assert_eq!(batch.commands.len(), 10, "whole backlog in one round");
        // The next tick with no traffic yields a skip with the next seq.
        tick_tx.send(2).unwrap();
        let batch = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("skip arrives");
        assert!(batch.is_skip());
        assert_eq!(batch.seq, 2);
        group.shutdown();
    }

    #[test]
    fn ticked_round_splits_oversized_backlog_into_capped_instances() {
        let (tick_tx, tick_rx) = crossbeam::channel::unbounded();
        let mut cfg = test_cfg();
        cfg.batch_bytes(64);
        let group = PaxosGroup::spawn_with(10, &cfg, LiveNet::new(), Pacing::Ticks(tick_rx));
        let sub = group.subscribe();
        group.start();
        for i in 0..32u64 {
            group.submit(Bytes::from(vec![i as u8; 16]));
        }
        std::thread::sleep(Duration::from_millis(20));
        tick_tx.send(1).unwrap();
        // All 32 commands arrive as ONE stream batch (one round) even
        // though they were decided as multiple 64-byte Paxos instances.
        let batch = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("round arrives");
        assert_eq!(batch.seq, 1);
        assert_eq!(batch.commands.len(), 32);
        group.shutdown();
    }

    #[test]
    fn survives_one_acceptor_crash() {
        let net: LiveNet<NetMsg> = LiveNet::new();
        let group = PaxosGroup::spawn_with(6, &test_cfg(), net.clone(), Pacing::Batched);
        let sub = group.subscribe();
        group.start();
        group.submit(Bytes::from_static(b"before"));
        let b = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("pre-crash traffic");
        assert_eq!(&b.commands[0][..], b"before");
        // Crash one of the three acceptors: majority (2) remains.
        net.crash(acceptor_node(6, 2));
        for _ in 0..20 {
            group.submit(Bytes::from_static(b"after"));
        }
        let mut seen = 0;
        while seen < 20 {
            let b = sub
                .recv_timeout(Duration::from_secs(5))
                .expect("post-crash progress");
            seen += b.commands.len();
        }
        group.shutdown();
    }

    #[test]
    fn decided_count_tracks_batches() {
        let group = PaxosGroup::spawn(7, &test_cfg());
        let sub = group.subscribe();
        group.start();
        group.submit(Bytes::from_static(b"x"));
        let _ = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert!(group.handle().decided_count() >= 1);
        assert_eq!(group.handle().group_id(), 7);
        group.shutdown();
    }

    #[test]
    fn late_subscriber_replays_the_retained_suffix() {
        let group = PaxosGroup::spawn(11, &test_cfg());
        let live = group.subscribe();
        group.start();
        for i in 0..20u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        }
        // Wait until the live subscriber saw everything.
        let mut seen = 0;
        let mut last_seq = 0;
        while seen < 20 {
            let b = live
                .recv_timeout(Duration::from_secs(5))
                .expect("delivered");
            seen += b.commands.len();
            last_seq = b.seq;
        }
        // A catch-up subscriber from seq 1 replays the identical stream.
        let replay = group.handle().subscribe_from(1).expect("log retained");
        let mut got = Vec::new();
        let mut expect_seq = 1;
        while got.len() < 20 {
            let b = replay
                .recv_timeout(Duration::from_secs(5))
                .expect("replayed");
            assert_eq!(b.seq, expect_seq, "replay is gap-free");
            expect_seq += 1;
            got.extend(
                b.commands
                    .iter()
                    .map(|c| u32::from_le_bytes(c[..4].try_into().unwrap())),
            );
        }
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        // Mid-stream resumption also works.
        let partial = group
            .handle()
            .subscribe_from(last_seq)
            .expect("still retained");
        let b = partial
            .recv_timeout(Duration::from_secs(5))
            .expect("replayed");
        assert_eq!(b.seq, last_seq);
        group.shutdown();
    }

    #[test]
    fn trim_below_bounds_the_log_and_fails_stale_subscribers() {
        let group = PaxosGroup::spawn(12, &test_cfg());
        let sub = group.subscribe();
        group.start();
        // Submit one at a time, waiting for delivery, so the batcher
        // cannot coalesce: the stream is guaranteed to span seq >= 3.
        for i in 0..30u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
            let mut seen = 0;
            while seen < 1 {
                let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
                seen += b.commands.len();
            }
        }
        let handle = group.handle();
        let retained_before = handle.retained_len();
        assert!(retained_before >= 1);
        handle.trim_below(3);
        assert_eq!(handle.first_retained_seq(), Some(3));
        assert!(handle.retained_len() < retained_before + 1);
        match handle.subscribe_from(1) {
            Err(SubscribeError::Trimmed { first_retained }) => {
                assert_eq!(first_retained, 3)
            }
            other => panic!("expected trimmed error, got {other:?}"),
        }
        assert!(matches!(
            handle.subscribe_from(u64::MAX),
            Err(SubscribeError::Future { .. })
        ));
        group.shutdown();
    }

    #[test]
    fn retention_cap_bounds_memory_without_checkpoints() {
        let mut cfg = test_cfg();
        cfg.log_retention(4);
        let group = PaxosGroup::spawn(13, &cfg);
        let sub = group.subscribe();
        group.start();
        for i in 0..200u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        }
        let mut seen = 0;
        while seen < 200 {
            let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
            seen += b.commands.len();
        }
        assert!(
            group.handle().retained_len() <= 4,
            "retained {} > cap 4",
            group.handle().retained_len()
        );
        group.shutdown();
    }

    /// Corruption in a *non-tail* segment leaves a hole in the stream
    /// that replay cannot cross; respawning over such a log must fail
    /// loudly instead of bridging the gap into divergent state.
    #[test]
    #[should_panic(expected = "corrupt mid-stream")]
    fn respawn_over_a_mid_stream_hole_refuses_to_bridge_it() {
        use psmr_wal::{Wal, WalOptions};
        let dir = std::env::temp_dir().join(format!("psmr-paxos-wal-hole-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = WalOptions {
            segment_bytes: 64,
            batch: 1,
        };
        {
            let wal = Wal::open(&dir, opts).unwrap();
            for seq in 1..=10 {
                wal.append(seq, &[Bytes::from(vec![seq as u8; 48])])
                    .unwrap();
            }
            assert!(
                wal.segment_count() >= 3,
                "rotation produced a middle segment"
            );
        }
        // Flip a byte inside the FIRST segment's records.
        let mut seg: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        seg.sort();
        let mut bytes = std::fs::read(&seg[0]).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg[0], bytes).unwrap();

        let wal = Arc::new(Wal::open(&dir, opts).unwrap());
        // (The panic unwinds before any cleanup; the pid-stamped dir is
        // reclaimed by the next run's remove_dir_all.)
        let _group =
            PaxosGroup::spawn_with_wal(21, &test_cfg(), LiveNet::new(), Pacing::Batched, Some(wal));
    }

    /// The durable-ordered-log contract: a group spawned over the WAL a
    /// previous incarnation wrote *continues* its stream — the retained
    /// log replays the pre-crash suffix, the sequence numbering does not
    /// restart, and new decisions land behind the replayed ones.
    #[test]
    fn wal_backed_group_survives_a_full_respawn() {
        use psmr_wal::{Wal, WalOptions};
        let dir = std::env::temp_dir().join(format!("psmr-paxos-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open_wal = || Some(Arc::new(Wal::open(&dir, WalOptions::default()).unwrap()));

        // First incarnation: decide a few batches, then die (shutdown).
        let group = PaxosGroup::spawn_with_wal(
            20,
            &test_cfg(),
            LiveNet::new(),
            Pacing::Batched,
            open_wal(),
        );
        let sub = group.subscribe();
        group.start();
        let mut last_seq = 0;
        for i in 0..10u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
            let mut seen = 0;
            while seen < 1 {
                let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
                seen += b.commands.len();
                last_seq = b.seq;
            }
        }
        assert!(last_seq >= 10);
        group.shutdown();

        // Second incarnation over the same directory: the whole stream
        // replays from the retained log and the numbering continues.
        let group = PaxosGroup::spawn_with_wal(
            20,
            &test_cfg(),
            LiveNet::new(),
            Pacing::Batched,
            open_wal(),
        );
        let replay = group
            .handle()
            .subscribe_from(1)
            .expect("pre-crash suffix retained");
        group.start();
        group.submit(Bytes::from_static(b"post-crash"));
        let mut got = Vec::new();
        let mut expect_seq = 1;
        loop {
            let b = replay
                .recv_timeout(Duration::from_secs(5))
                .expect("replayed");
            assert_eq!(b.seq, expect_seq, "contiguous across incarnations");
            expect_seq += 1;
            got.extend(b.commands.iter().map(|c| c.to_vec()));
            if got.last().is_some_and(|c| c == b"post-crash") {
                break;
            }
        }
        assert!(
            expect_seq > last_seq + 1,
            "new decisions continue the old numbering"
        );
        let pre_crash: Vec<u32> = got[..got.len() - 1]
            .iter()
            .map(|c| u32::from_le_bytes(c[..4].try_into().unwrap()))
            .collect();
        assert_eq!(pre_crash, (0..10).collect::<Vec<_>>());
        // trim_below reclaims WAL segments too (covered in psmr-wal's own
        // tests; here we just exercise the wiring).
        group.handle().trim_below(last_seq);
        group.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The WAL/execution overlap contract: with the sync thread held
    /// (the fsync "in flight forever"), decided batches still fan out —
    /// execution is never gated on durability — while the durability
    /// watermark stays put; releasing the hold lets the watermark catch
    /// up and bumps the hub.
    #[test]
    fn pipelined_group_fans_out_before_the_covering_fsync() {
        use psmr_wal::{Wal, WalOptions};
        let dir = std::env::temp_dir().join(format!("psmr-paxos-pipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Arc::new(
            Wal::open(
                &dir,
                WalOptions {
                    segment_bytes: 4 * 1024 * 1024,
                    batch: usize::MAX,
                },
            )
            .unwrap(),
        );
        let syncer = WalSyncer::spawn(Duration::from_micros(200));
        let hub = Arc::clone(syncer.hub());
        let group = PaxosGroup::spawn_with_wal_mode(
            30,
            &test_cfg(),
            LiveNet::new(),
            Pacing::Batched,
            WalMode::Pipelined {
                wal,
                syncer: Arc::clone(&syncer),
            },
        );
        let handle = group.handle();
        let sub = group.subscribe();
        group.start();
        handle.hold_wal_sync(true);
        let hub_before = hub.version();
        group.submit(Bytes::from_static(b"overlapped"));
        let batch = sub
            .recv_timeout(Duration::from_secs(5))
            .expect("fan-out does not wait for the fsync");
        assert_eq!(&batch.commands[0][..], b"overlapped");
        assert_eq!(
            handle.durable_seq(),
            0,
            "held sync thread must not advance the watermark"
        );
        handle.hold_wal_sync(false);
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.durable_seq() < batch.seq {
            assert!(Instant::now() < deadline, "watermark never caught up");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            hub.version() > hub_before,
            "fsync completion bumped the hub"
        );
        group.shutdown();
        syncer.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash between fan-out and fsync: a pipelined group shut down
    /// while its sync thread is held loses exactly the un-fsynced
    /// suffix to a power failure — the respawned stream replays the
    /// durable prefix and nothing after the watermark.
    #[test]
    fn pipelined_power_failure_loses_only_the_unsynced_suffix() {
        use psmr_wal::{Wal, WalOptions};
        let dir = std::env::temp_dir().join(format!("psmr-paxos-pwr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            batch: usize::MAX,
        };
        let syncer = WalSyncer::spawn(Duration::from_micros(200));
        let group = PaxosGroup::spawn_with_wal_mode(
            31,
            &test_cfg(),
            LiveNet::new(),
            Pacing::Batched,
            WalMode::Pipelined {
                wal: Arc::new(Wal::open(&dir, opts).unwrap()),
                syncer: Arc::clone(&syncer),
            },
        );
        let handle = group.handle();
        let sub = group.subscribe();
        group.start();
        // Phase 1: decided and fsynced (watermark catches up).
        let mut durable_seq = 0;
        for i in 0..5u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
            let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
            durable_seq = b.seq;
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.durable_seq() < durable_seq {
            assert!(Instant::now() < deadline, "watermark never caught up");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Phase 2: the fsync never lands — decided, fanned out, undurable.
        handle.hold_wal_sync(true);
        for i in 100..103u32 {
            group.submit(Bytes::from(i.to_le_bytes().to_vec()));
            let _ = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
        }
        assert_eq!(handle.durable_seq(), durable_seq, "suffix is not durable");
        // Crash + power failure: threads stop, the unsynced tail is gone.
        group.shutdown();
        syncer.stop();
        let dropped = handle.power_fail();
        assert!(dropped >= 3, "the held suffix was discarded ({dropped})");

        // The respawn sees exactly the durable prefix.
        let group = PaxosGroup::spawn_with_wal(
            31,
            &test_cfg(),
            LiveNet::new(),
            Pacing::Batched,
            Some(Arc::new(Wal::open(&dir, opts).unwrap())),
        );
        assert_eq!(group.handle().next_seq(), durable_seq + 1);
        let replay = group.handle().subscribe_from(1).expect("prefix retained");
        let mut got = Vec::new();
        while got.len() < 5 {
            let b = replay
                .recv_timeout(Duration::from_secs(5))
                .expect("replayed");
            got.extend(
                b.commands
                    .iter()
                    .map(|c| u32::from_le_bytes(c[..4].try_into().unwrap())),
            );
        }
        assert_eq!(
            got,
            (0..5).collect::<Vec<_>>(),
            "prefix intact, suffix gone"
        );
        group.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bounded delivery rings: a subscriber that stops consuming
    /// throttles the ordering thread at its ring's capacity — memory
    /// stays bounded, the stall is counted, and everything flows once
    /// the subscriber drains.
    #[test]
    fn slow_subscriber_throttles_ordering_with_bounded_memory() {
        let mut cfg = test_cfg();
        cfg.batch_bytes(32).delivery_queue(4);
        let group = PaxosGroup::spawn_with(32, &cfg, LiveNet::new(), Pacing::Batched);
        let sub = group.subscribe();
        group.start();
        let stalls_before = global().value(counters::DELIVERY_BACKPRESSURE_STALLS);
        // 48-byte commands against a 32-byte cap: one batch per command,
        // far more batches than the 4-slot ring holds.
        for i in 0..32u8 {
            group.submit(Bytes::from(vec![i; 48]));
        }
        // The ring fills and delivery stalls behind it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while global().value(counters::DELIVERY_BACKPRESSURE_STALLS) == stalls_before {
            assert!(Instant::now() < deadline, "backpressure stall never seen");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            sub.len() <= 4,
            "ring exceeded its bound: {} batches queued",
            sub.len()
        );
        // Draining un-throttles ordering: every command still arrives,
        // in order.
        let mut got = Vec::new();
        while got.len() < 32 {
            let b = sub.recv_timeout(Duration::from_secs(5)).expect("delivered");
            got.extend(b.commands.iter().map(|c| c[0]));
        }
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        group.shutdown();
    }

    #[test]
    fn durability_hub_wakes_waiters_past_a_version() {
        let hub = Arc::new(DurabilityHub::new());
        let seen = hub.version();
        // Timeout path: nothing bumps.
        assert_eq!(hub.wait_past(seen, Duration::from_millis(5)), seen);
        let waiter = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || hub.wait_past(seen, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(10));
        hub.bump();
        assert!(waiter.join().unwrap() > seen);
    }

    #[test]
    fn shutdown_disconnects_subscribers() {
        let group = PaxosGroup::spawn(8, &test_cfg());
        let sub = group.subscribe();
        group.start();
        group.shutdown();
        // After shutdown the subscriber eventually disconnects.
        loop {
            match sub.recv_timeout(Duration::from_secs(5)) {
                Ok(_) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => panic!("subscriber not disconnected"),
            }
        }
    }
}
