//! The proposer (coordinator) state machine.

use crate::ballot::Ballot;
use crate::msg::{Instance, PaxosMsg};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Which phase the proposer is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not yet started phase 1.
    Idle,
    /// Waiting for a quorum of promises.
    Preparing,
    /// Phase 1 complete: values may be proposed directly (phase 2).
    Leading,
}

#[derive(Debug, Clone)]
struct Inflight<V> {
    ballot: Ballot,
    value: V,
    accepted_by: HashSet<u64>,
    decided: bool,
}

/// A multi-instance Paxos proposer, acting as coordinator and distinguished
/// learner for its group.
///
/// Pure state machine: inputs are [`Proposer::start`], [`Proposer::submit`]
/// and [`Proposer::handle`]; outputs are messages to broadcast to all
/// acceptors plus an ordered queue of decisions ([`Proposer::take_decided`]).
///
/// # Example
///
/// ```
/// use psmr_paxos::proposer::Proposer;
/// use psmr_paxos::PaxosMsg;
///
/// let mut prop: Proposer<u32> = Proposer::new(0, 3);
/// let prepare = prop.start();
/// assert!(matches!(prepare, PaxosMsg::Prepare { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Proposer<V> {
    id: u64,
    n_acceptors: usize,
    ballot: Ballot,
    phase: Phase,
    promised_by: HashSet<u64>,
    /// Values reported accepted by promisers: instance → highest-ballot value.
    recovered: BTreeMap<Instance, (Ballot, V)>,
    pending: VecDeque<V>,
    next_instance: Instance,
    inflight: BTreeMap<Instance, Inflight<V>>,
    /// Decisions not yet handed to the caller, flushed in instance order.
    decided: BTreeMap<Instance, V>,
    next_delivery: Instance,
}

impl<V: Clone> Proposer<V> {
    /// Creates a proposer with the given node id and acceptor count.
    ///
    /// # Panics
    ///
    /// Panics if `n_acceptors` is zero.
    pub fn new(id: u64, n_acceptors: usize) -> Self {
        assert!(n_acceptors > 0, "need at least one acceptor");
        Self {
            id,
            n_acceptors,
            ballot: Ballot::ZERO,
            phase: Phase::Idle,
            promised_by: HashSet::new(),
            recovered: BTreeMap::new(),
            pending: VecDeque::new(),
            next_instance: 0,
            inflight: BTreeMap::new(),
            decided: BTreeMap::new(),
            next_delivery: 0,
        }
    }

    fn quorum(&self) -> usize {
        self.n_acceptors / 2 + 1
    }

    /// Returns whether phase 1 has completed.
    pub fn is_leading(&self) -> bool {
        self.phase == Phase::Leading
    }

    /// The proposer's current ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// Starts (or restarts) phase 1 with a fresh, larger ballot. Returns the
    /// `Prepare` to broadcast to all acceptors.
    pub fn start(&mut self) -> PaxosMsg<V> {
        self.ballot = self.ballot.next_for(self.id);
        self.phase = Phase::Preparing;
        self.promised_by.clear();
        self.recovered.clear();
        PaxosMsg::Prepare {
            ballot: self.ballot,
            from_instance: self.next_delivery,
        }
    }

    /// Queues a value for consensus. If the proposer is leading, the value
    /// is assigned the next instance and the `Accept` to broadcast is
    /// returned; otherwise it stays queued until leadership is established.
    pub fn submit(&mut self, value: V) -> Vec<PaxosMsg<V>> {
        self.pending.push_back(value);
        if self.phase == Phase::Leading {
            self.flush_pending()
        } else {
            Vec::new()
        }
    }

    /// Number of instances proposed but not yet decided.
    pub fn inflight_len(&self) -> usize {
        self.inflight.values().filter(|f| !f.decided).count()
    }

    fn flush_pending(&mut self) -> Vec<PaxosMsg<V>> {
        let mut out = Vec::new();
        while let Some(value) = self.pending.pop_front() {
            let instance = self.next_instance;
            self.next_instance += 1;
            self.inflight.insert(
                instance,
                Inflight {
                    ballot: self.ballot,
                    value: value.clone(),
                    accepted_by: HashSet::new(),
                    decided: false,
                },
            );
            out.push(PaxosMsg::Accept {
                ballot: self.ballot,
                instance,
                value,
            });
        }
        out
    }

    /// Processes an acceptor reply. `from` identifies the acceptor. Returns
    /// messages to broadcast (possibly empty).
    pub fn handle(&mut self, from: u64, msg: PaxosMsg<V>) -> Vec<PaxosMsg<V>> {
        match msg {
            PaxosMsg::Promise { ballot, accepted } if ballot == self.ballot => {
                if self.phase != Phase::Preparing {
                    return Vec::new();
                }
                self.promised_by.insert(from);
                for (instance, b, v) in accepted {
                    match self.recovered.get(&instance) {
                        Some((prev, _)) if *prev >= b => {}
                        _ => {
                            self.recovered.insert(instance, (b, v));
                        }
                    }
                }
                if self.promised_by.len() >= self.quorum() {
                    self.become_leader()
                } else {
                    Vec::new()
                }
            }
            PaxosMsg::Accepted { ballot, instance } => {
                let quorum = self.quorum();
                let Some(flight) = self.inflight.get_mut(&instance) else {
                    return Vec::new();
                };
                if flight.ballot != ballot || flight.decided {
                    return Vec::new();
                }
                flight.accepted_by.insert(from);
                if flight.accepted_by.len() >= quorum {
                    flight.decided = true;
                    let value = flight.value.clone();
                    self.decided.insert(instance, value.clone());
                    return vec![PaxosMsg::Decide { instance, value }];
                }
                Vec::new()
            }
            PaxosMsg::Nack { rejected, promised }
                if rejected == self.ballot && promised > self.ballot =>
            {
                // Another proposer got in: restart phase 1 above it.
                self.ballot = Ballot::new(promised.round, 0);
                // Requeue undecided in-flight values ahead of pending ones.
                let mut requeue: Vec<V> = Vec::new();
                for (_, flight) in std::mem::take(&mut self.inflight) {
                    if flight.decided {
                        continue;
                    }
                    requeue.push(flight.value);
                }
                for v in requeue.into_iter().rev() {
                    self.pending.push_front(v);
                }
                self.next_instance = self.next_delivery;
                vec![self.start()]
            }
            _ => Vec::new(),
        }
    }

    fn become_leader(&mut self) -> Vec<PaxosMsg<V>> {
        self.phase = Phase::Leading;
        let mut out = Vec::new();
        // Re-propose recovered values first: safety requires the leader to
        // propose the highest-ballot accepted value for any instance a
        // quorum member reported.
        for (instance, (_, value)) in std::mem::take(&mut self.recovered) {
            self.next_instance = self.next_instance.max(instance + 1);
            self.inflight.insert(
                instance,
                Inflight {
                    ballot: self.ballot,
                    value: value.clone(),
                    accepted_by: HashSet::new(),
                    decided: false,
                },
            );
            out.push(PaxosMsg::Accept {
                ballot: self.ballot,
                instance,
                value,
            });
        }
        out.extend(self.flush_pending());
        out
    }

    /// Drains decisions that are contiguous from the last delivery point,
    /// in instance order. This is the ordered stream a group feeds to its
    /// subscribers.
    pub fn take_decided(&mut self) -> Vec<(Instance, V)> {
        let mut out = Vec::new();
        while let Some(value) = self.decided.remove(&self.next_delivery) {
            out.push((self.next_delivery, value));
            self.inflight.remove(&self.next_delivery);
            self.next_delivery += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a proposer and three acceptors to completion synchronously.
    fn decide_all(values: Vec<u32>) -> Vec<(Instance, u32)> {
        use crate::acceptor::Acceptor;
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        let mut accs: Vec<Acceptor<u32>> = (0..3).map(|_| Acceptor::new()).collect();
        let mut to_acceptors = vec![prop.start()];
        for v in values {
            to_acceptors.extend(prop.submit(v));
        }
        let mut decided = Vec::new();
        while let Some(msg) = to_acceptors.pop() {
            for (i, acc) in accs.iter_mut().enumerate() {
                if let Some(reply) = acc.handle(msg.clone()) {
                    to_acceptors.extend(prop.handle(i as u64, reply));
                }
            }
            decided.extend(prop.take_decided());
        }
        decided.sort();
        decided
    }

    #[test]
    fn needs_quorum_before_leading() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        let prepare = prop.start();
        assert!(!prop.is_leading());
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        assert!(!prop.is_leading(), "one promise is not a quorum of 3");
        prop.handle(1, promise);
        assert!(prop.is_leading());
        drop(prepare);
    }

    #[test]
    fn duplicate_promises_do_not_fake_a_quorum() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        prop.start();
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        prop.handle(0, promise);
        assert!(!prop.is_leading());
    }

    #[test]
    fn decides_submitted_values_in_order() {
        let decided = decide_all(vec![10, 20, 30]);
        assert_eq!(decided, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn values_submitted_before_leadership_are_flushed_after() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        assert!(prop.submit(99).is_empty(), "not leading yet");
        prop.start();
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        let out = prop.handle(1, promise);
        assert!(
            out.iter()
                .any(|m| matches!(m, PaxosMsg::Accept { value, .. } if *value == 99)),
            "queued value proposed on leadership: {out:?}"
        );
    }

    #[test]
    fn recovered_values_are_reproposed() {
        let mut prop: Proposer<u32> = Proposer::new(1, 3);
        prop.start();
        let b = prop.ballot();
        // Acceptor 0 reports it accepted 77 at instance 0 under an older ballot.
        prop.handle(
            0,
            PaxosMsg::Promise {
                ballot: b,
                accepted: vec![(0, Ballot::new(1, 0), 77)],
            },
        );
        let out = prop.handle(
            1,
            PaxosMsg::Promise {
                ballot: b,
                accepted: vec![],
            },
        );
        match &out[..] {
            [PaxosMsg::Accept {
                instance: 0,
                value: 77,
                ..
            }] => {}
            other => panic!("expected re-proposal of 77, got {other:?}"),
        }
    }

    #[test]
    fn highest_ballot_recovered_value_wins() {
        let mut prop: Proposer<u32> = Proposer::new(1, 3);
        prop.start();
        let b = prop.ballot();
        prop.handle(
            0,
            PaxosMsg::Promise {
                ballot: b,
                accepted: vec![(0, Ballot::new(1, 0), 7)],
            },
        );
        let out = prop.handle(
            1,
            PaxosMsg::Promise {
                ballot: b,
                accepted: vec![(0, Ballot::new(2, 0), 8)],
            },
        );
        assert!(
            out.iter().any(|m| matches!(
                m,
                PaxosMsg::Accept {
                    instance: 0,
                    value: 8,
                    ..
                }
            )),
            "value accepted under the higher ballot must win: {out:?}"
        );
    }

    #[test]
    fn quorum_of_accepted_emits_decide() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        prop.start();
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        prop.handle(1, promise);
        let accepts = prop.submit(5);
        let (ballot, instance) = match &accepts[..] {
            [PaxosMsg::Accept {
                ballot, instance, ..
            }] => (*ballot, *instance),
            other => panic!("expected one accept, got {other:?}"),
        };
        assert!(prop
            .handle(0, PaxosMsg::Accepted { ballot, instance })
            .is_empty());
        let out = prop.handle(1, PaxosMsg::Accepted { ballot, instance });
        assert!(matches!(
            &out[..],
            [PaxosMsg::Decide {
                instance: 0,
                value: 5
            }]
        ));
        assert_eq!(prop.take_decided(), vec![(0, 5)]);
        assert_eq!(prop.take_decided(), vec![], "decisions drained once");
    }

    #[test]
    fn decisions_are_delivered_in_contiguous_order() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        prop.start();
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        prop.handle(1, promise);
        let a0 = prop.submit(10);
        let a1 = prop.submit(11);
        let ext = |msgs: &[PaxosMsg<u32>]| match msgs {
            [PaxosMsg::Accept {
                ballot, instance, ..
            }] => (*ballot, *instance),
            other => panic!("expected accept, got {other:?}"),
        };
        let (b0, i0) = ext(&a0);
        let (b1, i1) = ext(&a1);
        // Decide instance 1 first: nothing deliverable yet.
        prop.handle(
            0,
            PaxosMsg::Accepted {
                ballot: b1,
                instance: i1,
            },
        );
        prop.handle(
            1,
            PaxosMsg::Accepted {
                ballot: b1,
                instance: i1,
            },
        );
        assert!(prop.take_decided().is_empty(), "gap at instance 0");
        prop.handle(
            0,
            PaxosMsg::Accepted {
                ballot: b0,
                instance: i0,
            },
        );
        prop.handle(
            1,
            PaxosMsg::Accepted {
                ballot: b0,
                instance: i0,
            },
        );
        assert_eq!(prop.take_decided(), vec![(0, 10), (1, 11)]);
    }

    #[test]
    fn nack_restarts_with_higher_ballot_and_requeues() {
        let mut prop: Proposer<u32> = Proposer::new(0, 3);
        prop.start();
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        prop.handle(1, promise);
        let accepts = prop.submit(42);
        let (ballot, _) = match &accepts[..] {
            [PaxosMsg::Accept {
                ballot, instance, ..
            }] => (*ballot, *instance),
            other => panic!("{other:?}"),
        };
        let out = prop.handle(
            2,
            PaxosMsg::Nack {
                rejected: ballot,
                promised: Ballot::new(9, 2),
            },
        );
        match &out[..] {
            [PaxosMsg::Prepare { ballot: newb, .. }] => {
                assert!(*newb > Ballot::new(9, 2));
            }
            other => panic!("expected restart prepare, got {other:?}"),
        }
        assert!(!prop.is_leading());
        // On re-acquiring leadership the value must be re-proposed.
        let promise = PaxosMsg::Promise {
            ballot: prop.ballot(),
            accepted: vec![],
        };
        prop.handle(0, promise.clone());
        let out = prop.handle(1, promise);
        assert!(
            out.iter()
                .any(|m| matches!(m, PaxosMsg::Accept { value: 42, .. })),
            "{out:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one acceptor")]
    fn zero_acceptors_rejected() {
        let _: Proposer<u32> = Proposer::new(0, 0);
    }
}
