//! The learner state machine.

use crate::ballot::Ballot;
use crate::msg::{Instance, PaxosMsg};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A Paxos learner: watches `Accept`/`Accepted` traffic (or `Decide`
/// shortcuts) and delivers chosen values in instance order.
///
/// A value is *chosen* at an instance once a quorum of acceptors report
/// `Accepted` for the same ballot there; the value itself is learned from
/// the corresponding `Accept`. Learners deliver chosen values contiguously:
/// instance `i+1` is never delivered before instance `i`.
///
/// # Example
///
/// ```
/// use psmr_paxos::learner::Learner;
/// use psmr_paxos::{Ballot, PaxosMsg};
///
/// let mut learner: Learner<u32> = Learner::new(3);
/// learner.observe(0, PaxosMsg::Accept { ballot: Ballot::new(1, 0), instance: 0, value: 9 });
/// learner.observe(0, PaxosMsg::Accepted { ballot: Ballot::new(1, 0), instance: 0 });
/// learner.observe(1, PaxosMsg::Accepted { ballot: Ballot::new(1, 0), instance: 0 });
/// assert_eq!(learner.poll(), vec![9]);
/// ```
#[derive(Debug, Clone)]
pub struct Learner<V> {
    n_acceptors: usize,
    /// Values observed in `Accept` messages: (instance, ballot) → value.
    proposals: HashMap<(Instance, Ballot), V>,
    /// Acceptors that reported `Accepted` per (instance, ballot).
    votes: HashMap<(Instance, Ballot), HashSet<u64>>,
    /// Chosen but not yet delivered values.
    chosen: BTreeMap<Instance, V>,
    next_delivery: Instance,
    delivered_count: u64,
}

impl<V: Clone> Learner<V> {
    /// Creates a learner for a group with `n_acceptors` acceptors.
    ///
    /// # Panics
    ///
    /// Panics if `n_acceptors` is zero.
    pub fn new(n_acceptors: usize) -> Self {
        assert!(n_acceptors > 0, "need at least one acceptor");
        Self {
            n_acceptors,
            proposals: HashMap::new(),
            votes: HashMap::new(),
            chosen: BTreeMap::new(),
            next_delivery: 0,
            delivered_count: 0,
        }
    }

    fn quorum(&self) -> usize {
        self.n_acceptors / 2 + 1
    }

    /// Total values delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Next instance the learner is waiting to deliver.
    pub fn next_instance(&self) -> Instance {
        self.next_delivery
    }

    /// Feeds an observed protocol message. `from` is the sender's id (used
    /// to de-duplicate acceptor votes).
    pub fn observe(&mut self, from: u64, msg: PaxosMsg<V>) {
        match msg {
            PaxosMsg::Accept {
                ballot,
                instance,
                value,
            } => {
                self.proposals.insert((instance, ballot), value);
                self.maybe_choose(instance, ballot);
            }
            PaxosMsg::Accepted { ballot, instance } => {
                self.votes
                    .entry((instance, ballot))
                    .or_default()
                    .insert(from);
                self.maybe_choose(instance, ballot);
            }
            // A Decide may arrive after the learner already chose (and
            // delivered) the instance via a quorum of Accepted votes;
            // re-inserting it would deliver the instance twice.
            PaxosMsg::Decide { instance, value } if instance >= self.next_delivery => {
                self.chosen.entry(instance).or_insert(value);
            }
            _ => {}
        }
    }

    fn maybe_choose(&mut self, instance: Instance, ballot: Ballot) {
        if self.chosen.contains_key(&instance) || instance < self.next_delivery {
            return;
        }
        let quorum = self.quorum();
        let has_quorum = self
            .votes
            .get(&(instance, ballot))
            .is_some_and(|voters| voters.len() >= quorum);
        if has_quorum {
            if let Some(value) = self.proposals.get(&(instance, ballot)) {
                self.chosen.insert(instance, value.clone());
            }
        }
    }

    /// Drains values that are deliverable: chosen and contiguous from the
    /// last delivered instance.
    pub fn poll(&mut self) -> Vec<V> {
        let mut out = Vec::new();
        while let Some(value) = self.chosen.remove(&self.next_delivery) {
            // Garbage-collect bookkeeping for the delivered instance.
            let delivered = self.next_delivery;
            self.proposals.retain(|(i, _), _| *i != delivered);
            self.votes.retain(|(i, _), _| *i != delivered);
            out.push(value);
            self.next_delivery += 1;
            self.delivered_count += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept(instance: Instance, round: u64, value: u32) -> PaxosMsg<u32> {
        PaxosMsg::Accept {
            ballot: Ballot::new(round, 0),
            instance,
            value,
        }
    }

    fn accepted(instance: Instance, round: u64) -> PaxosMsg<u32> {
        PaxosMsg::Accepted {
            ballot: Ballot::new(round, 0),
            instance,
        }
    }

    #[test]
    fn learns_from_quorum_of_accepted() {
        let mut l: Learner<u32> = Learner::new(3);
        l.observe(9, accept(0, 1, 7));
        l.observe(0, accepted(0, 1));
        assert!(l.poll().is_empty(), "one vote is not a quorum");
        l.observe(1, accepted(0, 1));
        assert_eq!(l.poll(), vec![7]);
        assert_eq!(l.delivered_count(), 1);
    }

    #[test]
    fn duplicate_votes_from_same_acceptor_do_not_count_twice() {
        let mut l: Learner<u32> = Learner::new(3);
        l.observe(9, accept(0, 1, 7));
        l.observe(0, accepted(0, 1));
        l.observe(0, accepted(0, 1));
        assert!(l.poll().is_empty());
    }

    #[test]
    fn votes_for_different_ballots_do_not_mix() {
        let mut l: Learner<u32> = Learner::new(3);
        l.observe(9, accept(0, 1, 7));
        l.observe(9, accept(0, 2, 8));
        l.observe(0, accepted(0, 1));
        l.observe(1, accepted(0, 2));
        assert!(l.poll().is_empty(), "no single ballot has a quorum");
        l.observe(2, accepted(0, 2));
        assert_eq!(l.poll(), vec![8]);
    }

    #[test]
    fn delivery_is_contiguous() {
        let mut l: Learner<u32> = Learner::new(1);
        l.observe(9, accept(1, 1, 11));
        l.observe(0, accepted(1, 1));
        assert!(l.poll().is_empty(), "instance 0 missing");
        l.observe(9, accept(0, 1, 10));
        l.observe(0, accepted(0, 1));
        assert_eq!(l.poll(), vec![10, 11]);
        assert_eq!(l.next_instance(), 2);
    }

    #[test]
    fn decide_shortcut_delivers_without_votes() {
        let mut l: Learner<u32> = Learner::new(3);
        l.observe(
            0,
            PaxosMsg::Decide {
                instance: 0,
                value: 5,
            },
        );
        assert_eq!(l.poll(), vec![5]);
    }

    #[test]
    fn vote_before_value_still_learns() {
        let mut l: Learner<u32> = Learner::new(3);
        l.observe(0, accepted(0, 1));
        l.observe(1, accepted(0, 1));
        assert!(l.poll().is_empty(), "value not yet known");
        l.observe(9, accept(0, 1, 3));
        assert_eq!(l.poll(), vec![3]);
    }

    #[test]
    fn stale_instances_are_ignored_after_delivery() {
        let mut l: Learner<u32> = Learner::new(1);
        l.observe(9, accept(0, 1, 1));
        l.observe(0, accepted(0, 1));
        assert_eq!(l.poll(), vec![1]);
        // Late re-delivery of the same instance must not deliver again.
        l.observe(9, accept(0, 1, 1));
        l.observe(0, accepted(0, 1));
        assert!(l.poll().is_empty());
    }

    #[test]
    fn late_decide_after_quorum_delivery_is_ignored() {
        let mut l: Learner<u32> = Learner::new(1);
        l.observe(9, accept(0, 1, 1));
        l.observe(0, accepted(0, 1));
        assert_eq!(l.poll(), vec![1]);
        // A distinguished learner's Decide for the same instance arrives late.
        l.observe(
            9,
            PaxosMsg::Decide {
                instance: 0,
                value: 1,
            },
        );
        assert!(l.poll().is_empty(), "instance 0 must not deliver twice");
    }

    #[test]
    #[should_panic(expected = "at least one acceptor")]
    fn zero_acceptors_rejected() {
        let _: Learner<u32> = Learner::new(0);
    }
}
