//! The acceptor state machine.

use crate::ballot::Ballot;
use crate::msg::{Instance, PaxosMsg};
use std::collections::BTreeMap;

/// A Paxos acceptor over an unbounded sequence of instances.
///
/// The acceptor is a pure state machine: [`Acceptor::handle`] consumes a
/// message and returns the reply to send back to its origin (if any). All
/// instances share a single promised ballot, as in multi-Paxos where one
/// phase 1 covers the whole instance suffix.
///
/// # Example
///
/// ```
/// use psmr_paxos::acceptor::Acceptor;
/// use psmr_paxos::{Ballot, PaxosMsg};
///
/// let mut acc: Acceptor<u32> = Acceptor::new();
/// let reply = acc.handle(PaxosMsg::Prepare { ballot: Ballot::new(1, 0), from_instance: 0 });
/// assert!(matches!(reply, Some(PaxosMsg::Promise { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct Acceptor<V> {
    promised: Ballot,
    accepted: BTreeMap<Instance, (Ballot, V)>,
}

impl<V: Clone> Acceptor<V> {
    /// Creates an acceptor that has promised nothing.
    pub fn new() -> Self {
        Self {
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
        }
    }

    /// Highest ballot promised so far.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The value accepted at `instance`, if any.
    pub fn accepted_at(&self, instance: Instance) -> Option<&(Ballot, V)> {
        self.accepted.get(&instance)
    }

    /// Number of instances with an accepted value.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }

    /// Processes a proposer message, returning the acceptor's reply.
    ///
    /// `Prepare` yields `Promise` or `Nack`; `Accept` yields `Accepted` or
    /// `Nack`; other messages are ignored (`None`).
    pub fn handle(&mut self, msg: PaxosMsg<V>) -> Option<PaxosMsg<V>> {
        match msg {
            PaxosMsg::Prepare {
                ballot,
                from_instance,
            } => {
                // `>=` (not `>`) makes re-prepares of the promised ballot
                // idempotent: with network reordering a proposer's Prepare
                // may arrive after one of its own Accepts already bumped the
                // promise to the same ballot, and nacking it would trigger a
                // needless leadership restart. Equal ballots belong to the
                // same proposer (ballots embed the proposer id), so this is
                // safe.
                if ballot >= self.promised {
                    self.promised = ballot;
                    let accepted = self
                        .accepted
                        .range(from_instance..)
                        .map(|(&i, (b, v))| (i, *b, v.clone()))
                        .collect();
                    Some(PaxosMsg::Promise { ballot, accepted })
                } else {
                    Some(PaxosMsg::Nack {
                        rejected: ballot,
                        promised: self.promised,
                    })
                }
            }
            PaxosMsg::Accept {
                ballot,
                instance,
                value,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.accepted.insert(instance, (ballot, value));
                    Some(PaxosMsg::Accepted { ballot, instance })
                } else {
                    Some(PaxosMsg::Nack {
                        rejected: ballot,
                        promised: self.promised,
                    })
                }
            }
            // Promise/Accepted/Nack/Decide are proposer- or learner-bound.
            _ => None,
        }
    }
}

impl<V: Clone> Default for Acceptor<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepare(round: u64) -> PaxosMsg<u32> {
        PaxosMsg::Prepare {
            ballot: Ballot::new(round, 0),
            from_instance: 0,
        }
    }

    fn accept(round: u64, instance: Instance, value: u32) -> PaxosMsg<u32> {
        PaxosMsg::Accept {
            ballot: Ballot::new(round, 0),
            instance,
            value,
        }
    }

    #[test]
    fn promises_higher_ballots_only() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        assert!(matches!(
            acc.handle(prepare(2)),
            Some(PaxosMsg::Promise { .. })
        ));
        // Same ballot again: idempotent re-promise.
        assert!(matches!(
            acc.handle(prepare(2)),
            Some(PaxosMsg::Promise { .. })
        ));
        assert!(matches!(
            acc.handle(prepare(1)),
            Some(PaxosMsg::Nack { .. })
        ));
        assert!(matches!(
            acc.handle(prepare(3)),
            Some(PaxosMsg::Promise { .. })
        ));
        assert_eq!(acc.promised(), Ballot::new(3, 0));
    }

    #[test]
    fn accepts_at_or_above_promise() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        acc.handle(prepare(5));
        // Equal ballot accepted.
        assert!(matches!(
            acc.handle(accept(5, 0, 10)),
            Some(PaxosMsg::Accepted { .. })
        ));
        // Stale ballot rejected, reveals promised ballot.
        match acc.handle(accept(4, 1, 11)) {
            Some(PaxosMsg::Nack { rejected, promised }) => {
                assert_eq!(rejected, Ballot::new(4, 0));
                assert_eq!(promised, Ballot::new(5, 0));
            }
            other => panic!("expected nack, got {other:?}"),
        }
        assert_eq!(acc.accepted_at(0), Some(&(Ballot::new(5, 0), 10)));
        assert_eq!(acc.accepted_at(1), None);
    }

    #[test]
    fn accept_with_higher_ballot_bumps_promise() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        assert!(matches!(
            acc.handle(accept(7, 0, 1)),
            Some(PaxosMsg::Accepted { .. })
        ));
        assert_eq!(acc.promised(), Ballot::new(7, 0));
        // A (reordered) Prepare of the same ballot is re-promised, and the
        // promise reports the accepted value so no information is lost.
        match acc.handle(prepare(7)) {
            Some(PaxosMsg::Promise { accepted, .. }) => {
                assert_eq!(accepted, vec![(0, Ballot::new(7, 0), 1)]);
            }
            other => panic!("expected idempotent promise, got {other:?}"),
        }
        assert!(matches!(
            acc.handle(prepare(6)),
            Some(PaxosMsg::Nack { .. })
        ));
    }

    #[test]
    fn promise_reports_previously_accepted_suffix() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        acc.handle(accept(1, 3, 30));
        acc.handle(accept(1, 7, 70));
        match acc.handle(PaxosMsg::Prepare {
            ballot: Ballot::new(2, 1),
            from_instance: 5,
        }) {
            Some(PaxosMsg::Promise { accepted, .. }) => {
                assert_eq!(accepted, vec![(7, Ballot::new(1, 0), 70)]);
            }
            other => panic!("expected promise, got {other:?}"),
        }
    }

    #[test]
    fn re_accept_overwrites_with_newer_ballot() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        acc.handle(accept(1, 0, 10));
        acc.handle(accept(2, 0, 20));
        assert_eq!(acc.accepted_at(0), Some(&(Ballot::new(2, 0), 20)));
        assert_eq!(acc.accepted_count(), 1);
    }

    #[test]
    fn ignores_peer_replies() {
        let mut acc: Acceptor<u32> = Acceptor::new();
        assert!(acc
            .handle(PaxosMsg::Decide {
                instance: 0,
                value: 1
            })
            .is_none());
        assert!(acc
            .handle(PaxosMsg::Accepted {
                ballot: Ballot::ZERO,
                instance: 0
            })
            .is_none());
    }
}
