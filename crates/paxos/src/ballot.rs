//! Ballot numbers.

use std::fmt;

/// A Paxos ballot: a round number paired with the proposing node, so that
/// ballots of distinct proposers never collide.
///
/// Ordering is lexicographic on `(round, proposer)`, as required for the
/// usual Paxos safety argument.
///
/// # Example
///
/// ```
/// use psmr_paxos::Ballot;
///
/// let b1 = Ballot::new(1, 0);
/// let b2 = Ballot::new(1, 1);
/// let b3 = Ballot::new(2, 0);
/// assert!(b1 < b2 && b2 < b3);
/// assert!(b1.next_for(0) > b3 || b1.next_for(0).round > b1.round);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonically increasing round number.
    pub round: u64,
    /// Identifier of the proposer that owns this ballot.
    pub proposer: u64,
}

impl Ballot {
    /// The null ballot, smaller than any ballot a proposer emits.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        proposer: 0,
    };

    /// Creates a ballot.
    pub const fn new(round: u64, proposer: u64) -> Self {
        Self { round, proposer }
    }

    /// The smallest ballot owned by `proposer` that is larger than `self`.
    pub const fn next_for(self, proposer: u64) -> Self {
        Self {
            round: self.round + 1,
            proposer,
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_then_proposer() {
        assert!(Ballot::new(1, 5) < Ballot::new(2, 0));
        assert!(Ballot::new(2, 0) < Ballot::new(2, 1));
        assert_eq!(Ballot::new(3, 3), Ballot::new(3, 3));
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Ballot::ZERO < Ballot::new(1, 0));
        assert!(Ballot::ZERO <= Ballot::new(0, 0));
    }

    #[test]
    fn next_for_is_strictly_larger_regardless_of_proposer() {
        let b = Ballot::new(7, 9);
        assert!(b.next_for(0) > b);
        assert!(b.next_for(9) > b);
    }

    #[test]
    fn display_shows_round_and_proposer() {
        assert_eq!(Ballot::new(4, 2).to_string(), "b4.2");
    }
}
