//! Paxos safety under adversarial schedules.
//!
//! Runs the pure proposer/acceptor/learner state machines on the
//! deterministic discrete-event simulator from `psmr-netsim`, with message
//! loss, duplication and extreme reordering, plus competing proposers, and
//! checks the fundamental invariant: **at most one value is ever chosen per
//! instance**, and every learner delivers the same prefix.

use proptest::prelude::*;
use psmr_netsim::sim::{NodeId, SimConfig, SimNetwork};
use psmr_paxos::acceptor::Acceptor;
use psmr_paxos::learner::Learner;
use psmr_paxos::proposer::Proposer;
use psmr_paxos::PaxosMsg;
use std::collections::HashMap;

const N_ACCEPTORS: usize = 3;

/// Node layout: proposers 0..P, acceptors 100.., learners 200..
fn acceptor_id(i: usize) -> NodeId {
    NodeId::new(100 + i as u64)
}
fn learner_id(i: usize) -> NodeId {
    NodeId::new(200 + i as u64)
}

/// A full system: P proposers competing over the same acceptors, with two
/// learners observing all acceptor traffic (the simulation forwards copies).
struct System {
    net: SimNetwork<PaxosMsg<u32>>,
    proposers: Vec<Proposer<u32>>,
    acceptors: Vec<Acceptor<u32>>,
    learners: Vec<Learner<u32>>,
    delivered: Vec<Vec<u32>>,
}

impl System {
    fn new(n_proposers: usize, seed: u64, cfg: SimConfig) -> Self {
        Self {
            net: SimNetwork::new(cfg, seed),
            proposers: (0..n_proposers)
                .map(|i| Proposer::new(i as u64, N_ACCEPTORS))
                .collect(),
            acceptors: (0..N_ACCEPTORS).map(|_| Acceptor::new()).collect(),
            learners: (0..2).map(|_| Learner::new(N_ACCEPTORS)).collect(),
            delivered: vec![Vec::new(); 2],
        }
    }

    fn broadcast_from_proposer(&mut self, p: usize, msgs: Vec<PaxosMsg<u32>>) {
        for msg in msgs {
            // Learners snoop on Accept traffic (they need values).
            for l in 0..self.learners.len() {
                self.net
                    .send(NodeId::new(p as u64), learner_id(l), msg.clone());
            }
            for a in 0..N_ACCEPTORS {
                self.net
                    .send(NodeId::new(p as u64), acceptor_id(a), msg.clone());
            }
        }
    }

    /// Runs the simulation until quiescence, returns per-instance chosen sets.
    fn run(&mut self, submissions: &[(usize, u32)], max_steps: usize) {
        for p in 0..self.proposers.len() {
            let prepare = self.proposers[p].start();
            self.broadcast_from_proposer(p, vec![prepare]);
        }
        let mut queued = submissions.to_vec();
        let mut steps = 0usize;
        loop {
            // Feed one submission every few steps to interleave with protocol.
            if steps.is_multiple_of(3) {
                if let Some((p, v)) = queued.pop() {
                    let out = self.proposers[p].submit(v);
                    self.broadcast_from_proposer(p, out);
                }
            }
            let Some(delivery) = self.net.step() else {
                if queued.is_empty() {
                    break;
                }
                // Nothing in flight but submissions remain: push them now.
                let (p, v) = queued.pop().expect("non-empty");
                let out = self.proposers[p].submit(v);
                self.broadcast_from_proposer(p, out);
                continue;
            };
            steps += 1;
            if steps > max_steps {
                break;
            }
            let to = delivery.to.as_raw();
            if (100..200).contains(&to) {
                let a = (to - 100) as usize;
                if let Some(reply) = self.acceptors[a].handle(delivery.message.clone()) {
                    // Learners also observe Accepted votes.
                    for l in 0..self.learners.len() {
                        self.net.send(delivery.to, learner_id(l), reply.clone());
                    }
                    self.net.send(delivery.to, delivery.from, reply);
                }
            } else if (200..300).contains(&to) {
                let l = (to - 200) as usize;
                self.learners[l].observe(delivery.from.as_raw(), delivery.message);
                self.delivered[l].extend(self.learners[l].poll());
            } else {
                let p = to as usize;
                let out = self.proposers[p].handle(delivery.from.as_raw(), delivery.message);
                self.broadcast_from_proposer(p, out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two competing proposers, lossy reordering network: learners never
    /// disagree on a delivered prefix, and no instance yields two values.
    #[test]
    fn learners_agree_under_adversarial_network(
        seed in any::<u64>(),
        values in prop::collection::vec(0u32..1000, 1..20),
    ) {
        let cfg = SimConfig { min_delay_us: 1, max_delay_us: 5_000, loss: 0.03, duplicate: 0.05 };
        let mut sys = System::new(2, seed, cfg);
        let submissions: Vec<(usize, u32)> =
            values.iter().enumerate().map(|(i, &v)| (i % 2, v)).collect();
        sys.run(&submissions, 200_000);

        // Prefix agreement between the two learners.
        let (a, b) = (&sys.delivered[0], &sys.delivered[1]);
        let common = a.len().min(b.len());
        prop_assert_eq!(&a[..common], &b[..common], "learner prefixes diverged");

        // No instance has two different chosen values across acceptor states:
        // a value is chosen iff a quorum accepted the same ballot. Verify by
        // recomputing choices from final acceptor states.
        let mut by_instance: HashMap<u64, Vec<u32>> = HashMap::new();
        for acc in &sys.acceptors {
            let mut i = 0u64;
            while i < 100 {
                if let Some((_, v)) = acc.accepted_at(i) {
                    by_instance.entry(i).or_default().push(*v);
                }
                i += 1;
            }
        }
        // Every delivered value must be one some acceptor accepted.
        for &v in a.iter().chain(b.iter()) {
            prop_assert!(
                by_instance.values().any(|vs| vs.contains(&v)),
                "delivered value {} never accepted", v
            );
        }
    }

    /// Loss-free single-proposer run decides every submitted value exactly
    /// once, in submission order.
    #[test]
    fn lossless_single_proposer_delivers_everything(
        seed in any::<u64>(),
        values in prop::collection::vec(0u32..1000, 1..30),
    ) {
        let mut sys = System::new(1, seed, SimConfig::default());
        let submissions: Vec<(usize, u32)> = values.iter().map(|&v| (0, v)).collect();
        sys.run(&submissions, 500_000);
        // Learner 0 must deliver all values; submissions were pushed LIFO
        // from the queue, so compare as multisets and check agreement.
        let mut got = sys.delivered[0].clone();
        let mut want = values.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(&sys.delivered[0].len(), &sys.delivered[1].len());
    }
}
