//! Runtime fault injection: groups must keep delivering under degraded
//! acceptor links and after acceptor crashes (f = 1 of 3, §II's failure
//! model), and the stream must stay gap-free throughout.

use bytes::Bytes;
use psmr_common::SystemConfig;
use psmr_netsim::live::{LinkFault, LiveNet};
use psmr_paxos::runtime::{acceptor_node, coordinator_node, Pacing, PaxosGroup};
use std::time::Duration;

fn test_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::new(1);
    cfg.batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_millis(1));
    cfg
}

fn drain_exactly(
    sub: &crossbeam::channel::Receiver<std::sync::Arc<psmr_paxos::DecidedBatch>>,
    want: usize,
) -> Vec<u32> {
    let mut got = Vec::new();
    let mut expect_seq = 1u64;
    while got.len() < want {
        let batch = sub
            .recv_timeout(Duration::from_secs(10))
            .expect("group keeps delivering under faults");
        assert_eq!(batch.seq, expect_seq, "stream must stay gap-free");
        expect_seq += 1;
        got.extend(
            batch
                .commands
                .iter()
                .map(|c| u32::from_le_bytes(c[..4].try_into().expect("payload"))),
        );
    }
    got
}

#[test]
fn delivers_with_one_lossy_acceptor_link() {
    let net = LiveNet::new();
    let group = PaxosGroup::spawn_with(1, &test_cfg(), net.clone(), Pacing::Batched);
    let sub = group.subscribe();
    group.start();
    // Coordinator→acceptor-0 link drops everything: quorum {1, 2} remains.
    net.inject(
        coordinator_node(1),
        acceptor_node(1, 0),
        LinkFault::loss(1.0),
    );
    for i in 0..100u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
    }
    let got = drain_exactly(&sub, 100);
    assert_eq!(got, (0..100).collect::<Vec<_>>());
    group.shutdown();
}

#[test]
fn delivers_with_a_slow_acceptor() {
    let net = LiveNet::new();
    let group = PaxosGroup::spawn_with(2, &test_cfg(), net.clone(), Pacing::Batched);
    let sub = group.subscribe();
    group.start();
    // One acceptor's replies are delayed well beyond the batch linger; the
    // other two still form a timely quorum.
    net.inject(
        acceptor_node(2, 1),
        coordinator_node(2),
        LinkFault::delay(Duration::from_millis(20)),
    );
    for i in 0..50u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
    }
    let got = drain_exactly(&sub, 50);
    assert_eq!(got, (0..50).collect::<Vec<_>>());
    group.shutdown();
}

#[test]
fn crash_then_heavy_traffic_keeps_fifo_order() {
    let net = LiveNet::new();
    let group = PaxosGroup::spawn_with(3, &test_cfg(), net.clone(), Pacing::Batched);
    let sub = group.subscribe();
    group.start();
    for i in 0..200u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
        if i == 50 {
            net.crash(acceptor_node(3, 2));
        }
    }
    let got = drain_exactly(&sub, 200);
    assert_eq!(got, (0..200).collect::<Vec<_>>());
    group.shutdown();
}

#[test]
fn round_paced_group_survives_acceptor_crash() {
    let net = LiveNet::new();
    let (tick_tx, tick_rx) = crossbeam::channel::unbounded();
    let group = PaxosGroup::spawn_with(4, &test_cfg(), net.clone(), Pacing::Ticks(tick_rx));
    let sub = group.subscribe();
    group.start();
    net.crash(acceptor_node(4, 0));
    let ticker = std::thread::spawn(move || {
        for tick in 1..=200u64 {
            let _ = tick_tx.send(tick);
            std::thread::sleep(Duration::from_micros(500));
        }
    });
    for i in 0..30u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
    }
    let got = drain_exactly(&sub, 30);
    assert_eq!(got, (0..30).collect::<Vec<_>>());
    ticker.join().expect("ticker finishes");
    group.shutdown();
}

#[test]
fn two_crashed_acceptors_block_progress_until_heal() {
    // With 2 of 3 acceptors unreachable no quorum exists; traffic must NOT
    // be delivered (safety over liveness). We verify no delivery within a
    // grace period, then heal one link and watch the backlog flush.
    let net = LiveNet::new();
    let group = PaxosGroup::spawn_with(5, &test_cfg(), net.clone(), Pacing::Batched);
    let sub = group.subscribe();
    group.start();
    net.inject(
        coordinator_node(5),
        acceptor_node(5, 0),
        LinkFault::loss(1.0),
    );
    net.inject(
        coordinator_node(5),
        acceptor_node(5, 1),
        LinkFault::loss(1.0),
    );
    for i in 0..10u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
    }
    assert!(
        sub.recv_timeout(Duration::from_millis(200)).is_err(),
        "no quorum, no delivery"
    );
    net.heal(coordinator_node(5), acceptor_node(5, 0));
    // New traffic re-proposes; the coordinator retries its open batch only
    // when new submissions arrive, so nudge it.
    for i in 10..20u32 {
        group.submit(Bytes::from(i.to_le_bytes().to_vec()));
    }
    let got = drain_exactly(&sub, 20);
    assert_eq!(got, (0..20).collect::<Vec<_>>());
    group.shutdown();
}
