//! Online C-G reconfiguration (the paper's future-work item, §IV-D).
//!
//! "Accommodating dynamic changes in access patterns … would require
//! recomputing the C-G. While updating the C-G function online is
//! possible, in our prototype this is done offline."
//!
//! This module makes it online. A [`RemappableMap`] wraps a base
//! [`CommandMap`] with an overlay that pins individual keys to chosen
//! groups (e.g. spreading hot keys that the default `key mod k` rule lands
//! on the same worker). The overlay is versioned by *epoch* and updated
//! through a dedicated **remap command** that C-Dep classifies as `Global`:
//! it travels through the serialized group and installs while every worker
//! of every replica is stopped at the synchronous-mode barrier, so all
//! replicas switch tables at the same point of the serialized stream.
//!
//! # Transition window
//!
//! Within one table version the §IV-C guarantee is intact: dependent keyed
//! commands on the same key share a group and serialize. **Across** a
//! remap there is a bounded transition window: a command routed with the
//! old table may still be queued in its old group's stream when traffic
//! routed with the new table starts arriving at the new group, and the two
//! are then ordered only per group, not relative to each other. Operators
//! should therefore either quiesce traffic to the keys being moved (the
//! usual practice for hot-key migration) or tolerate relaxed ordering
//! between a moved key's last old-group write and first new-group write.
//! Removing the window entirely requires epoch-stamping every request and
//! holding mismatched deliveries, which the paper's offline prototype side-
//! steps by restarting; we document the trade-off instead of hiding it.

use crate::conflict::{CommandClass, CommandMap};
use parking_lot::RwLock;
use psmr_common::ids::{CommandId, GroupId};
use psmr_multicast::Destinations;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The reserved command id carrying remap tables. Services using
/// [`RemappableMap`] must not declare their own command with this id.
pub const REMAP: CommandId = CommandId::new(u32::MAX);

/// A key→group overlay with its epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemapTable {
    /// Monotonically increasing version.
    pub epoch: u64,
    /// Keys pinned to explicit groups; unlisted keys use the base rule.
    pub pins: HashMap<u64, GroupId>,
}

impl RemapTable {
    /// Serializes the table for transport inside a [`REMAP`] command.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.epoch.to_le_bytes().to_vec();
        out.extend_from_slice(&(self.pins.len() as u32).to_le_bytes());
        // Deterministic order so every replica hashes identical bytes.
        let mut pins: Vec<(&u64, &GroupId)> = self.pins.iter().collect();
        pins.sort();
        for (key, group) in pins {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(group.as_raw() as u64).to_le_bytes());
        }
        out
    }

    /// Parses a table encoded by [`RemapTable::encode`].
    ///
    /// Returns `None` on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let epoch = u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?);
        let n = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        let mut pins = HashMap::with_capacity(n);
        let mut at = 12usize;
        for _ in 0..n {
            let key = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
            let group = u64::from_le_bytes(bytes.get(at + 8..at + 16)?.try_into().ok()?);
            pins.insert(key, GroupId::new(group as usize));
            at += 16;
        }
        Some(Self { epoch, pins })
    }
}

/// A C-G function whose key→group assignment can be changed at runtime.
///
/// Cloneable; clones share the overlay, so the engine's client sinks and
/// server proxies all observe an installed table.
///
/// # Example
///
/// ```
/// use psmr_common::ids::{CommandId, GroupId};
/// use psmr_core::conflict::{CommandClass, DependencySpec};
/// use psmr_core::remap::{RemapTable, RemappableMap};
///
/// const UPDATE: CommandId = CommandId::new(0);
/// let mut spec = DependencySpec::new();
/// spec.declare(UPDATE, CommandClass::Keyed { writes: true })
///     .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));
/// let map = RemappableMap::new(spec.into_map());
///
/// // Key 0 follows the base rule (0 mod k)…
/// let d = map.destinations(UPDATE, &0u64.to_le_bytes(), 4);
/// assert_eq!(d.executor(), GroupId::new(0));
/// // …until a remap pins it elsewhere.
/// let mut table = RemapTable::default();
/// table.epoch = 1;
/// table.pins.insert(0, GroupId::new(3));
/// map.install(table);
/// let d = map.destinations(UPDATE, &0u64.to_le_bytes(), 4);
/// assert_eq!(d.executor(), GroupId::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct RemappableMap {
    base: CommandMap,
    table: Arc<RwLock<RemapTable>>,
    installed_epochs: Arc<AtomicU64>,
}

impl RemappableMap {
    /// Wraps a base map with an empty overlay (epoch 0).
    pub fn new(base: CommandMap) -> Self {
        Self {
            base,
            table: Arc::new(RwLock::new(RemapTable::default())),
            installed_epochs: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The overlay currently in force.
    pub fn current_table(&self) -> RemapTable {
        self.table.read().clone()
    }

    /// Number of successful installs (diagnostics).
    pub fn installed_count(&self) -> u64 {
        self.installed_epochs.load(Ordering::Relaxed)
    }

    /// Installs a new overlay. Tables with a stale epoch are ignored so a
    /// replayed or reordered remap cannot roll the mapping back.
    /// Re-installing the table already in force acks success without
    /// effect: every replica executes the same REMAP command against the
    /// shared overlay, and the acks must be deterministic across replicas
    /// (the client keeps whichever response arrives first).
    pub fn install(&self, table: RemapTable) -> bool {
        let mut current = self.table.write();
        if table.epoch < current.epoch {
            return false;
        }
        if table.epoch == current.epoch {
            return *current == table;
        }
        *current = table;
        self.installed_epochs.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The class of a command; [`REMAP`] is always `Global`.
    pub fn class(&self, cmd: CommandId) -> CommandClass {
        if cmd == REMAP {
            CommandClass::Global
        } else {
            self.base.class(cmd)
        }
    }

    /// The C-G function with the overlay applied: pinned keys go to their
    /// pinned group; everything else follows the base rule.
    pub fn destinations(&self, cmd: CommandId, payload: &[u8], mpl: usize) -> Destinations {
        if cmd == REMAP {
            return Destinations::all(mpl);
        }
        if matches!(self.base.class(cmd), CommandClass::Keyed { .. }) {
            let key = self.base.key(payload);
            if let Some(&group) = self.table.read().pins.get(&key) {
                return Destinations::one(GroupId::new(group.as_raw() % mpl));
            }
        }
        self.base.destinations(cmd, payload, mpl)
    }

    /// Access to the wrapped base map.
    pub fn base(&self) -> &CommandMap {
        &self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::DependencySpec;

    const UPDATE: CommandId = CommandId::new(0);

    fn map() -> RemappableMap {
        let mut spec = DependencySpec::new();
        spec.declare(UPDATE, CommandClass::Keyed { writes: true })
            .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));
        RemappableMap::new(spec.into_map())
    }

    fn key(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    #[test]
    fn table_round_trips() {
        let mut table = RemapTable {
            epoch: 7,
            pins: HashMap::new(),
        };
        table.pins.insert(1, GroupId::new(3));
        table.pins.insert(99, GroupId::new(0));
        let back = RemapTable::decode(&table.encode()).expect("decodes");
        assert_eq!(back, table);
        assert_eq!(RemapTable::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn encoding_is_deterministic_regardless_of_insertion_order() {
        let mut a = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        a.pins.insert(1, GroupId::new(1));
        a.pins.insert(2, GroupId::new(2));
        let mut b = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        b.pins.insert(2, GroupId::new(2));
        b.pins.insert(1, GroupId::new(1));
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn pins_override_the_base_rule() {
        let map = map();
        assert_eq!(
            map.destinations(UPDATE, &key(5), 4).executor(),
            GroupId::new(1)
        );
        let mut table = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        table.pins.insert(5, GroupId::new(2));
        assert!(map.install(table));
        assert_eq!(
            map.destinations(UPDATE, &key(5), 4).executor(),
            GroupId::new(2)
        );
        // Unpinned keys still follow the base rule.
        assert_eq!(
            map.destinations(UPDATE, &key(6), 4).executor(),
            GroupId::new(2)
        );
    }

    #[test]
    fn stale_epochs_are_rejected() {
        let map = map();
        let mut t1 = RemapTable {
            epoch: 2,
            pins: HashMap::new(),
        };
        t1.pins.insert(1, GroupId::new(3));
        assert!(map.install(t1));
        let mut stale = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        stale.pins.insert(1, GroupId::new(0));
        assert!(!map.install(stale), "older epoch must not roll back");
        assert_eq!(map.current_table().epoch, 2);
        assert_eq!(map.installed_count(), 1);
    }

    #[test]
    fn remap_command_is_global() {
        let map = map();
        assert_eq!(map.class(REMAP), CommandClass::Global);
        assert_eq!(map.destinations(REMAP, &[], 4).groups().len(), 4);
    }

    #[test]
    fn pins_are_reduced_modulo_mpl() {
        let map = map();
        let mut table = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        table.pins.insert(5, GroupId::new(9));
        map.install(table);
        let d = map.destinations(UPDATE, &key(5), 4);
        assert_eq!(d.executor(), GroupId::new(1)); // 9 % 4
    }

    #[test]
    fn clones_share_the_overlay() {
        let map = map();
        let clone = map.clone();
        let mut table = RemapTable {
            epoch: 1,
            pins: HashMap::new(),
        };
        table.pins.insert(7, GroupId::new(0));
        map.install(table);
        assert_eq!(clone.current_table().epoch, 1);
    }
}
