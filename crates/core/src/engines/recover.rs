//! Engine-side halves of the checkpoint & recovery subsystem shared by
//! every engine: executing a delivered [`CHECKPOINT`](psmr_recovery::CHECKPOINT)
//! command at its consistent cut, the per-engine recovery context
//! (service factory + checkpoint store + optional periodic driver), and
//! the replica bookkeeping crash/restart operates on.

use crate::client::RequestSink;
use crate::service::RecoverableService;
use psmr_common::envelope::Request;
use psmr_common::ids::{ClientId, RequestId};
use psmr_common::metrics::{counters, global};
use psmr_multicast::{Delivered, MulticastHandle};
use psmr_recovery::{
    AutoCheckpointer, Checkpoint, CheckpointStore, RecoveryError, StreamCut, CHECKPOINT,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked replica threads re-check their crash flag.
pub(crate) const CRASH_POLL: Duration = Duration::from_millis(20);

/// What an executor needs to take a checkpoint when the control command
/// reaches it: a way to snapshot its replica's service, the shared store
/// to install into, and (for multicast-backed engines) the handle whose
/// ordered logs become trimmable afterwards.
#[derive(Clone)]
pub(crate) struct CheckpointHook {
    snapshot: Arc<dyn Fn() -> Vec<u8> + Send + Sync>,
    store: Arc<CheckpointStore>,
    trim: Option<MulticastHandle>,
    /// CHECKPOINT commands this replica has executed, seeded at restart
    /// with the recovery checkpoint's id. Replicas execute the same
    /// CHECKPOINT commands in the same order, so every replica derives
    /// the identical id for a given command without consulting the shared
    /// store — a lagging replica answers an old request with the same id
    /// the fast replicas already did, no matter how far behind it is.
    executed: Arc<AtomicU64>,
}

impl CheckpointHook {
    /// Builds the hook for one replica's service. `seed` is 0 for a fresh
    /// replica and the recovery checkpoint's id for a restarted one (its
    /// stream resumes just past that checkpoint's command).
    pub fn new(
        service: &Arc<dyn RecoverableService>,
        store: Arc<CheckpointStore>,
        trim: Option<MulticastHandle>,
        seed: u64,
    ) -> Self {
        let svc = Arc::clone(service);
        Self {
            snapshot: Arc::new(move || svc.snapshot()),
            store,
            trim,
            executed: Arc::new(AtomicU64::new(seed)),
        }
    }

    /// Executes a delivered [`CHECKPOINT`] command: snapshots the
    /// (quiesced) service, installs the checkpoint at the command's cut,
    /// and trims the ordered logs it makes reclaimable. Returns the
    /// response payload (the checkpoint id, little-endian).
    pub fn execute(&self, delivered: &Delivered) -> Vec<u8> {
        let cut = StreamCut {
            group: delivered.group,
            seq: delivered.batch_seq,
            offset: delivered.offset,
        };
        let id = self.executed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.store.install(cut, id, (self.snapshot)()) {
            global().counter(counters::CHECKPOINTS_TAKEN).inc();
        }
        if let Some(handle) = &self.trim {
            handle.trim_to_cut(&cut);
        }
        id.to_le_bytes().to_vec()
    }
}

/// The shared restart path: fetches the latest checkpoint, restores a
/// fresh service from its snapshot, and subscribes the replica's streams
/// at its cut through `subscribe`. A checkpoint installed *while we
/// restore* trims the logs past the cut we fetched; when `subscribe`
/// loses that race, the newer checkpoint is the recovery point — retry
/// with it instead of failing.
pub(crate) fn restore_from_latest<S>(
    store: &CheckpointStore,
    factory: &(dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync),
    mut subscribe: impl FnMut(StreamCut) -> Result<S, RecoveryError>,
) -> Result<(Arc<dyn RecoverableService>, S, Checkpoint), RecoveryError> {
    let mut checkpoint = store.latest().ok_or(RecoveryError::NoCheckpoint)?;
    loop {
        let service = factory();
        service.restore(&checkpoint.snapshot)?;
        match subscribe(checkpoint.cut) {
            Ok(streams) => return Ok((service, streams, checkpoint)),
            Err(err) => {
                let newer = store.latest().ok_or(RecoveryError::NoCheckpoint)?;
                if newer.cut.is_newer_than(&checkpoint.cut) {
                    checkpoint = newer;
                    continue;
                }
                return Err(err);
            }
        }
    }
}

/// Engine-level recovery context of a `spawn_recoverable` deployment.
pub(crate) struct EngineRecovery {
    /// Produces a fresh (empty) service instance for a restarting
    /// replica; `restore` then replays the snapshot into it.
    pub factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync>,
    /// The deployment-wide checkpoint repository.
    pub store: Arc<CheckpointStore>,
    /// Periodic CHECKPOINT driver (when `cfg.checkpoint_interval` set).
    pub checkpointer: Option<AutoCheckpointer>,
}

impl EngineRecovery {
    /// Stops the periodic driver (call during engine shutdown).
    pub fn stop(mut self) {
        if let Some(driver) = self.checkpointer.take() {
            driver.stop();
        }
    }
}

/// Client id the periodic checkpointer stamps on its control requests.
/// Never registered with the response router, so the (identical)
/// responses from all replicas are dropped on arrival.
const CHECKPOINTER_CLIENT: ClientId = ClientId::new(u64::MAX);

/// Spawns the periodic driver that multicasts a [`CHECKPOINT`] through
/// `sink` every `interval`.
pub(crate) fn auto_checkpointer(
    sink: Arc<dyn RequestSink>,
    interval: Duration,
) -> AutoCheckpointer {
    let mut next_request = 0u64;
    AutoCheckpointer::spawn(interval, move || {
        let request = Request::new(
            CHECKPOINTER_CLIENT,
            RequestId::new(next_request),
            CHECKPOINT,
            Vec::new(),
        );
        next_request += 1;
        sink.submit(&request);
    })
}

/// One replica's runtime state, uniform across engines: its threads, the
/// flag that crash-stops them, and (for recoverable deployments) the
/// live service instance so tests can compare replica states.
pub(crate) struct ReplicaSlot {
    pub threads: Vec<JoinHandle<()>>,
    pub kill: Arc<AtomicBool>,
    pub service: Option<Arc<dyn RecoverableService>>,
    pub crashed: bool,
}

impl ReplicaSlot {
    /// Crash-stops the replica: raises the kill flag, runs `unblock`
    /// (engine-specific wakeup of parked threads), joins every thread
    /// and discards the replica's service state.
    pub fn crash(&mut self, unblock: impl FnOnce()) {
        if self.crashed {
            return;
        }
        self.kill.store(true, Ordering::Relaxed);
        unblock();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.service = None;
        self.crashed = true;
    }

    /// Joins the replica's threads at shutdown (same path as crash, but
    /// keeps the slot's bookkeeping untouched).
    pub fn stop(&mut self, unblock: impl FnOnce()) {
        self.kill.store(true, Ordering::Relaxed);
        unblock();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use psmr_common::ids::{CommandId, GroupId};
    use psmr_recovery::{RestoreError, Snapshot};

    struct Null;

    impl Service for Null {
        fn execute(&self, _c: CommandId, _p: &[u8]) -> Vec<u8> {
            Vec::new()
        }
    }

    impl Snapshot for Null {
        fn snapshot(&self) -> Vec<u8> {
            vec![7]
        }

        fn restore(&self, _s: &[u8]) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    fn delivered(seq: u64) -> Delivered {
        Delivered {
            group: GroupId::new(0),
            batch_seq: seq,
            offset: 0,
            payload: bytes::Bytes::new(),
        }
    }

    /// Replicas derive checkpoint ids from their own execution count, so
    /// a replica lagging arbitrarily far behind answers an old CHECKPOINT
    /// request with the same id the fast replicas already did.
    #[test]
    fn replicas_derive_identical_checkpoint_ids() {
        let store = Arc::new(CheckpointStore::new());
        let fast: Arc<dyn RecoverableService> = Arc::new(Null);
        let fast_hook = CheckpointHook::new(&fast, Arc::clone(&store), None, 0);
        let slow: Arc<dyn RecoverableService> = Arc::new(Null);
        let slow_hook = CheckpointHook::new(&slow, Arc::clone(&store), None, 0);
        // The fast replica executes checkpoints 1 and 2 before the slow
        // replica gets to the first one.
        assert_eq!(fast_hook.execute(&delivered(10)), 1u64.to_le_bytes());
        assert_eq!(fast_hook.execute(&delivered(20)), 2u64.to_le_bytes());
        assert_eq!(slow_hook.execute(&delivered(10)), 1u64.to_le_bytes());
        assert_eq!(slow_hook.execute(&delivered(20)), 2u64.to_le_bytes());
        assert_eq!(store.latest_id(), 2);
        // A restarted replica seeds from the checkpoint it recovered and
        // continues the same numbering for the replayed suffix.
        let restarted_hook = CheckpointHook::new(&slow, store, None, 2);
        assert_eq!(restarted_hook.execute(&delivered(30)), 3u64.to_le_bytes());
    }
}
