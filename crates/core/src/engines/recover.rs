//! Engine-side halves of the checkpoint & recovery subsystem shared by
//! every engine: executing a delivered [`psmr_recovery::CHECKPOINT`]
//! command at its consistent cut (and persisting it durably), the
//! per-engine recovery context — per-replica checkpoint stores, the
//! state-transfer fabric replicas recover over, durable snapshot
//! directories, the optional periodic driver — and the replica
//! bookkeeping crash/restart operates on.
//!
//! Recovery is **deployment-shaped**, not a shared-memory fiction: each
//! replica owns its checkpoint store and serves it to peers through a
//! [`StateTransferServer`]; a restarting replica recovers from its own
//! disk snapshot when the retained logs still cover it, and falls back
//! to fetching a fresher checkpoint from a live peer otherwise.

use crate::client::RequestSink;
use crate::service::RecoverableService;
use psmr_common::envelope::Request;
use psmr_common::ids::{ClientId, GroupId, RequestId};
use psmr_common::metrics::{counters, global};
use psmr_common::runtime::{ClockHandle, RealClock};
use psmr_common::SystemConfig;
use psmr_multicast::{Delivered, MulticastHandle};
use psmr_netsim::NodeId;
use psmr_recovery::transfer::{
    fetch_latest_via, probe_latest_via, StateTransferServer, TransferNet, TransferSource,
};
use psmr_recovery::{
    AutoCheckpointer, Checkpoint, CheckpointStore, DurableStore, RecoveryError, StreamCut,
    TransferError, CHECKPOINT,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked replica threads re-check their crash flag.
pub(crate) const CRASH_POLL: Duration = Duration::from_millis(20);

/// How often a restart re-fetches from peers when a concurrent trim
/// races the cut it is restoring at, before giving up with
/// [`RecoveryError::CutTrimmed`].
const REFETCH_ATTEMPTS: usize = 3;

/// Durable snapshot files each replica keeps on disk (the newest ones).
const DISK_RETAIN: usize = 2;

/// Supplies the remap epoch currently in force and its encoded overlay
/// table — `(0, empty)` for fixed-C-G deployments.
pub(crate) type EpochSource = Arc<dyn Fn() -> (u64, Vec<u8>) + Send + Sync>;

/// An [`EpochSource`] for engines without online remapping.
pub(crate) fn fixed_epoch() -> EpochSource {
    Arc::new(|| (0, Vec::new()))
}

/// The state-transfer address of a replica.
fn transfer_node(replica: usize) -> NodeId {
    NodeId::new(replica as u64)
}

/// Adapts one replica's checkpoint store (plus the deployment's epoch
/// source) into what a [`StateTransferServer`] serves.
struct StoreSource {
    store: Arc<CheckpointStore>,
    epoch: EpochSource,
}

impl TransferSource for StoreSource {
    fn latest(&self) -> Option<Checkpoint> {
        self.store.latest()
    }

    fn epoch_table(&self) -> (u64, Vec<u8>) {
        (self.epoch)()
    }
}

/// What an executor needs to take a checkpoint when the control command
/// reaches it: a way to snapshot its replica's service, the replica's
/// own store to install into, the durable store to persist into, and
/// (for multicast-backed engines) the handle whose ordered logs become
/// trimmable afterwards.
#[derive(Clone)]
pub(crate) struct CheckpointHook {
    snapshot: Arc<dyn Fn() -> Vec<u8> + Send + Sync>,
    store: Arc<CheckpointStore>,
    durable: Option<Arc<DurableStore>>,
    epoch: EpochSource,
    trim: Option<MulticastHandle>,
    /// CHECKPOINT commands this replica has executed, seeded at restart
    /// with the recovery checkpoint's id. Replicas execute the same
    /// CHECKPOINT commands in the same order, so every replica derives
    /// the identical id for a given command deterministically — a lagging
    /// replica answers an old request with the same id the fast replicas
    /// already did, no matter how far behind it is.
    executed: Arc<AtomicU64>,
}

impl CheckpointHook {
    /// Builds the hook for one replica's service. `seed` is 0 for a fresh
    /// replica and the recovery checkpoint's id for a restarted one (its
    /// stream resumes just past that checkpoint's command).
    pub fn new(
        service: &Arc<dyn RecoverableService>,
        store: Arc<CheckpointStore>,
        durable: Option<Arc<DurableStore>>,
        epoch: EpochSource,
        trim: Option<MulticastHandle>,
        seed: u64,
    ) -> Self {
        let svc = Arc::clone(service);
        Self {
            snapshot: Arc::new(move || svc.snapshot()),
            store,
            durable,
            epoch,
            trim,
            executed: Arc::new(AtomicU64::new(seed)),
        }
    }

    /// Executes a delivered [`CHECKPOINT`] command: snapshots the
    /// (quiesced) service, installs the checkpoint at the command's cut,
    /// persists it durably (when the deployment configured a snapshot
    /// directory), and trims the ordered logs it makes reclaimable.
    /// Returns the response payload (the checkpoint id, little-endian).
    pub fn execute(&self, delivered: &Delivered) -> Vec<u8> {
        let cut = StreamCut {
            group: delivered.group,
            seq: delivered.batch_seq,
            offset: delivered.offset,
        };
        let id = self.executed.fetch_add(1, Ordering::Relaxed) + 1;
        let snapshot = (self.snapshot)();
        match &self.durable {
            // Workers are quiesced while this runs: without a durable
            // store, hand the bytes straight over — no copy on the path
            // that lengthens the checkpoint stall.
            None => {
                if self.store.install(cut, id, snapshot) {
                    global().counter(counters::CHECKPOINTS_TAKEN).inc();
                }
            }
            Some(durable) => {
                if self.store.install(cut, id, snapshot.clone()) {
                    global().counter(counters::CHECKPOINTS_TAKEN).inc();
                    // The overlay table rides the snapshot file: a cold
                    // start must re-install the remap pins in force at
                    // this cut before replaying the log suffix.
                    let (epoch, table) = (self.epoch)();
                    // Disk trouble must not take the replica down with
                    // it: the in-memory checkpoint is installed either
                    // way, and load-time crc checks keep a bad write
                    // from ever being trusted.
                    let checkpoint = Checkpoint { id, cut, snapshot };
                    if durable.persist(&checkpoint, epoch, &table).is_ok() {
                        let _ = durable.retain_newest(DISK_RETAIN);
                    }
                }
            }
        }
        if let Some(handle) = &self.trim {
            handle.trim_to_cut(&cut);
        }
        id.to_le_bytes().to_vec()
    }
}

/// Where a restarted replica's recovery snapshot came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The replica's own durable snapshot directory.
    Disk,
    /// State transfer from the given live replica.
    Peer(usize),
    /// No snapshot at all: the replica rebuilt its entire state by
    /// replaying the durable ordered log from the beginning (a cold
    /// start before any checkpoint was ever taken).
    WalOnly,
}

/// What a completed restart reports back: enough for operators (and
/// tests) to see which recovery path ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Where the recovery snapshot came from.
    pub source: RecoverySource,
    /// Id of the checkpoint the replica restored from.
    pub checkpoint_id: u64,
    /// The stream cut the replica resumed its subscriptions at.
    pub cut: StreamCut,
    /// Remap epoch learned from the transfer handshake (falling back to
    /// the epoch persisted with the disk snapshot when no peer answered).
    pub epoch: u64,
    /// Peers abandoned mid-transfer before one served (0 when recovery
    /// came from disk or the first peer).
    pub transfer_fallbacks: u64,
    /// Id of the newest valid snapshot found on the replica's own disk,
    /// whether or not it was used.
    pub disk_checkpoint: Option<u64>,
}

/// Per-replica recovery state: the replica's own checkpoint store, its
/// durable snapshot directory, and the server streaming its checkpoints
/// to restarting peers.
pub(crate) struct ReplicaRecovery {
    pub store: Arc<CheckpointStore>,
    pub durable: Option<Arc<DurableStore>>,
    server: Option<StateTransferServer>,
}

/// Engine-level recovery context of a `spawn_recoverable` deployment.
pub(crate) struct EngineRecovery {
    /// Produces a fresh (empty) service instance for a restarting
    /// replica; `restore` then replays the snapshot into it.
    pub factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync>,
    /// Per-replica stores/servers/disks (index = replica id).
    pub replicas: Vec<ReplicaRecovery>,
    /// The network state transfers run over.
    net: TransferNet,
    epoch: EpochSource,
    chunk_bytes: usize,
    timeout: Duration,
    /// Timebase the transfer timeouts are measured on (injected by
    /// runtime-aware spawn paths; real time by default).
    clock: ClockHandle,
    /// Periodic CHECKPOINT driver (when `cfg.checkpoint_interval` set).
    pub checkpointer: Option<AutoCheckpointer>,
}

impl EngineRecovery {
    /// Builds the recovery context of a fresh deployment: one store,
    /// transfer server and (with `cfg.snapshot_dir`) durable directory
    /// per replica.
    ///
    /// # Panics
    ///
    /// Panics when a configured snapshot directory cannot be created —
    /// a deployment asked to be durable must not come up silently
    /// non-durable.
    pub fn build(
        cfg: &SystemConfig,
        factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync>,
        epoch: EpochSource,
    ) -> Self {
        let net: TransferNet = TransferNet::new();
        let replicas = (0..cfg.n_replicas)
            .map(|idx| {
                let store = Arc::new(CheckpointStore::new());
                let durable = cfg.snapshot_dir.as_ref().map(|dir| {
                    Arc::new(
                        DurableStore::open(dir.join(format!("r{idx}")))
                            .expect("create replica snapshot directory"),
                    )
                });
                let server = StateTransferServer::spawn(
                    net.clone(),
                    transfer_node(idx),
                    Arc::new(StoreSource {
                        store: Arc::clone(&store),
                        epoch: Arc::clone(&epoch),
                    }),
                    cfg.transfer_chunk_bytes,
                );
                ReplicaRecovery {
                    store,
                    durable,
                    server: Some(server),
                }
            })
            .collect();
        Self {
            factory,
            replicas,
            net,
            epoch,
            chunk_bytes: cfg.transfer_chunk_bytes,
            timeout: cfg.transfer_timeout,
            clock: Arc::new(RealClock),
            checkpointer: None,
        }
    }

    /// Measures the transfer timeouts on `clock` instead of real time
    /// (runtime-aware spawn paths call this right after `build`).
    pub fn set_clock(&mut self, clock: ClockHandle) {
        self.clock = clock;
    }

    /// The checkpoint hook of one replica, seeded for a fresh spawn
    /// (`seed` 0) or a restart (the recovery checkpoint's id).
    pub fn hook_for(
        &self,
        replica: usize,
        service: &Arc<dyn RecoverableService>,
        trim: Option<MulticastHandle>,
        seed: u64,
    ) -> CheckpointHook {
        let slot = &self.replicas[replica];
        CheckpointHook::new(
            service,
            Arc::clone(&slot.store),
            slot.durable.clone(),
            Arc::clone(&self.epoch),
            trim,
            seed,
        )
    }

    /// Takes a crashed replica off the transfer fabric: its serving
    /// thread stops and its node crash-stops, so fetching peers see it
    /// as silence.
    pub fn on_crash(&mut self, replica: usize) {
        if let Some(server) = self.replicas[replica].server.take() {
            server.stop();
        }
        self.net.crash(transfer_node(replica));
    }

    /// The restart path shared by every replicated engine: recover the
    /// replica's state **disk-first** (its own durable snapshot, when the
    /// retained logs still cover that cut) with **peer fallback** (a
    /// fresher checkpoint fetched from the first live peer that completes
    /// a digest-verified transfer), restore a fresh service from the
    /// chosen snapshot, and subscribe its streams at the cut through
    /// `subscribe`.
    ///
    /// The handshake comes first and costs no snapshot bytes: a
    /// [`probe_latest`] asks the peers for their newest checkpoint's
    /// manifest, whose remap epoch and table are handed to
    /// `install_table` before any stream is subscribed — a replica that
    /// checkpointed under an old C-Dep mapping rejoins under the current
    /// one. The full chunked transfer runs only if the disk candidate is
    /// absent or its log suffix is gone.
    ///
    /// A checkpoint installed *while we restore* trims the logs past the
    /// cut being restored; when `subscribe` loses that race the restart
    /// re-fetches a fresher checkpoint from the peers (bounded attempts)
    /// and, if none exists, surfaces [`RecoveryError::CutTrimmed`]
    /// instead of looping on the stale cut.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::NoCheckpoint`] when there is no disk snapshot and
    /// no live peer; [`RecoveryError::Transfer`] when peers exist but
    /// none completed a transfer and no disk snapshot stood in;
    /// [`RecoveryError::CutTrimmed`] when trims raced every candidate
    /// cut; plus whatever `subscribe` or snapshot decoding surface.
    pub fn recover<S>(
        &mut self,
        replica: usize,
        live_peers: &[usize],
        install_table: &dyn Fn(&[u8]),
        mut subscribe: impl FnMut(StreamCut) -> Result<S, RecoveryError>,
    ) -> Result<(Arc<dyn RecoverableService>, S, RecoveryReport), RecoveryError> {
        let me = transfer_node(replica);
        self.net.restart(me);
        let durable = self.replicas[replica].durable.clone();
        let disk = durable.as_ref().and_then(|d| d.load_latest());
        let disk_checkpoint = disk.as_ref().map(|d| d.checkpoint.id);
        let peer_nodes: Vec<NodeId> = live_peers.iter().map(|&p| transfer_node(p)).collect();
        // The remap-epoch handshake: adopt the cluster's current mapping
        // before subscribing any stream. Manifest only — no snapshot
        // bytes move unless the disk candidate fails below. A disk-only
        // recovery (no peer answering) keeps the epoch persisted with
        // the snapshot.
        let probed = probe_latest_via(&*self.clock, &self.net, me, &peer_nodes, self.timeout).ok();
        if let Some(p) = &probed {
            install_table(&p.table);
        }
        let cluster_epoch = probed.as_ref().map(|p| p.epoch);

        let mut newest_tried: Option<StreamCut> = None;
        if let Some(d) = disk {
            let epoch = cluster_epoch.unwrap_or(d.epoch);
            // No live peer answered the probe: the overlay table persisted
            // with the snapshot is the best (and correct) routing state —
            // it was in force at this cut.
            if probed.is_none() {
                install_table(&d.table);
            }
            let table = d.table;
            newest_tried = Some(d.checkpoint.cut);
            // An inner Err(()) means the cut was trimmed; fall through to
            // the peers.
            if let Ok((service, streams, checkpoint)) =
                self.try_restore(d.checkpoint, &mut subscribe)?
            {
                return Ok(self.finish(
                    replica,
                    service,
                    streams,
                    checkpoint,
                    RecoverySource::Disk,
                    epoch,
                    &table,
                    0,
                    disk_checkpoint,
                ));
            }
        }

        // Peer transfer, re-fetching a bounded number of times when a
        // checkpoint installed mid-restart trims the cut being restored.
        for _ in 0..=REFETCH_ATTEMPTS {
            let f = match fetch_latest_via(&*self.clock, &self.net, me, &peer_nodes, self.timeout) {
                Ok(f) => f,
                Err(e) => {
                    return Err(match (newest_tried, e) {
                        // A disk candidate was tried and trimmed, and no
                        // peer can offer anything fresher.
                        (Some(cut), _) => RecoveryError::CutTrimmed { cut },
                        (None, TransferError::NoPeers) => RecoveryError::NoCheckpoint,
                        (None, e) => e.into(),
                    });
                }
            };
            if let Some(tried) = newest_tried {
                if !f.checkpoint.cut.is_newer_than(&tried) {
                    // No fresher point exists; looping on the stale cut
                    // would never terminate. Surface the race as a typed
                    // error.
                    return Err(RecoveryError::CutTrimmed { cut: tried });
                }
            }
            newest_tried = Some(f.checkpoint.cut);
            install_table(&f.table);
            let peer = f.from.as_raw() as usize;
            let (epoch, fallbacks) = (f.epoch, f.fallbacks);
            let table = f.table;
            if let Ok((service, streams, checkpoint)) =
                self.try_restore(f.checkpoint, &mut subscribe)?
            {
                return Ok(self.finish(
                    replica,
                    service,
                    streams,
                    checkpoint,
                    RecoverySource::Peer(peer),
                    epoch,
                    &table,
                    fallbacks,
                    disk_checkpoint,
                ));
            }
        }
        Err(RecoveryError::CutTrimmed {
            cut: newest_tried.expect("at least one candidate was tried"),
        })
    }

    /// The whole-deployment cold-start path of one replica: **no live
    /// peer exists**, so recovery is disk-only. The replica walks its
    /// own durable snapshots newest-first (a corrupt newest file was
    /// already skipped by the store; a snapshot whose stream position
    /// the replayed WAL cannot serve falls through to the next), and —
    /// when it has no usable snapshot at all — rebuilds from scratch by
    /// replaying the entire durable ordered log (`subscribe_start`).
    /// The recovered checkpoint is installed into the replica's (fresh)
    /// in-memory store so the transfer fabric serves it to later
    /// single-replica restarts.
    ///
    /// `scratch_group` tags the synthetic stream cut of a from-scratch
    /// report (the serialized group for P-SMR, `g0` for single-stream
    /// engines).
    ///
    /// `install_table` receives the remap overlay table persisted with
    /// the snapshot being restored, **before** its streams are
    /// subscribed: pins taken before the checkpoint are not in the
    /// replayed log suffix, so this hand-off is the only way they
    /// survive a whole-deployment restart. The from-scratch path skips
    /// it — a full log replay re-executes the REMAP commands themselves.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::CutTrimmed`] when snapshots exist but the WAL no
    /// longer covers any of their cuts; [`RecoveryError::LogTrimmed`]
    /// when no snapshot exists and the WAL does not reach back to the
    /// stream's beginning; plus whatever restore surfaces.
    pub fn cold_start<S>(
        &mut self,
        replica: usize,
        scratch_group: GroupId,
        install_table: &dyn Fn(&[u8]),
        mut subscribe_at: impl FnMut(StreamCut) -> Result<S, RecoveryError>,
        subscribe_start: impl FnOnce() -> Result<S, RecoveryError>,
    ) -> Result<(Arc<dyn RecoverableService>, S, RecoveryReport), RecoveryError> {
        let durable = self.replicas[replica].durable.clone();
        let candidates = durable.as_ref().map(|d| d.load_all()).unwrap_or_default();
        let disk_checkpoint = candidates.first().map(|d| d.checkpoint.id);
        let mut newest_tried: Option<StreamCut> = None;
        for candidate in candidates {
            let epoch = candidate.epoch;
            if newest_tried.is_none() {
                newest_tried = Some(candidate.checkpoint.cut);
            }
            install_table(&candidate.table);
            // Inner Err(()) = this cut's suffix is unavailable; an older
            // snapshot may still sit inside the replayed stream (e.g.
            // when the newest outlived a partially lost WAL directory).
            if let Ok((service, streams, checkpoint)) =
                self.try_restore(candidate.checkpoint, &mut subscribe_at)?
            {
                self.replicas[replica].store.install(
                    checkpoint.cut,
                    checkpoint.id,
                    checkpoint.snapshot.clone(),
                );
                let report = RecoveryReport {
                    source: RecoverySource::Disk,
                    checkpoint_id: checkpoint.id,
                    cut: checkpoint.cut,
                    epoch,
                    transfer_fallbacks: 0,
                    disk_checkpoint,
                };
                return Ok((service, streams, report));
            }
        }
        if let Some(cut) = newest_tried {
            // Snapshots exist but none of their cuts can be served: the
            // WAL was trimmed past them (or lost). Surface the typed
            // race instead of silently rebuilding a truncated state.
            return Err(RecoveryError::CutTrimmed { cut });
        }
        let service = (self.factory)();
        let streams = subscribe_start()?;
        let report = RecoveryReport {
            source: RecoverySource::WalOnly,
            checkpoint_id: 0,
            cut: StreamCut {
                group: scratch_group,
                seq: 0,
                offset: 0,
            },
            epoch: 0,
            transfer_fallbacks: 0,
            disk_checkpoint: None,
        };
        Ok((service, streams, report))
    }

    /// Takes **every** replica off the transfer fabric at once — the
    /// whole-deployment power failure. All serving threads stop and the
    /// fabric crash-stops every node, so nothing survives to answer a
    /// fetch.
    pub fn crash_everything(&mut self) {
        self.net.crash_all();
        for slot in &mut self.replicas {
            if let Some(server) = slot.server.take() {
                server.stop();
            }
        }
    }

    /// Restores a fresh service from `checkpoint` and subscribes at its
    /// cut. The outer `Result` carries fatal errors; the inner `Err(())`
    /// means "this cut's log suffix is trimmed — try a fresher one".
    #[allow(clippy::type_complexity)]
    fn try_restore<S>(
        &self,
        checkpoint: Checkpoint,
        subscribe: &mut impl FnMut(StreamCut) -> Result<S, RecoveryError>,
    ) -> Result<Result<(Arc<dyn RecoverableService>, S, Checkpoint), ()>, RecoveryError> {
        let service = (self.factory)();
        service.restore(&checkpoint.snapshot)?;
        match subscribe(checkpoint.cut) {
            Ok(streams) => Ok(Ok((service, streams, checkpoint))),
            Err(RecoveryError::LogTrimmed { .. }) => Ok(Err(())),
            Err(other) => Err(other),
        }
    }

    /// Installs the recovered replica back into the fabric: a fresh store
    /// seeded with the recovery checkpoint, the checkpoint persisted to
    /// its own disk (so the *next* restart finds it locally), and a new
    /// transfer server.
    #[allow(clippy::too_many_arguments)]
    fn finish<S>(
        &mut self,
        replica: usize,
        service: Arc<dyn RecoverableService>,
        streams: S,
        checkpoint: Checkpoint,
        source: RecoverySource,
        epoch: u64,
        table: &[u8],
        transfer_fallbacks: u64,
        disk_checkpoint: Option<u64>,
    ) -> (Arc<dyn RecoverableService>, S, RecoveryReport) {
        let durable = self.replicas[replica].durable.clone();
        let store = Arc::new(CheckpointStore::new());
        store.install(checkpoint.cut, checkpoint.id, checkpoint.snapshot.clone());
        if let (Some(durable), RecoverySource::Peer(_)) = (&durable, source) {
            if durable.persist(&checkpoint, epoch, table).is_ok() {
                let _ = durable.retain_newest(DISK_RETAIN);
            }
        }
        let server = StateTransferServer::spawn(
            self.net.clone(),
            transfer_node(replica),
            Arc::new(StoreSource {
                store: Arc::clone(&store),
                epoch: Arc::clone(&self.epoch),
            }),
            self.chunk_bytes,
        );
        self.replicas[replica] = ReplicaRecovery {
            store,
            durable,
            server: Some(server),
        };
        let report = RecoveryReport {
            source,
            checkpoint_id: checkpoint.id,
            cut: checkpoint.cut,
            epoch,
            transfer_fallbacks,
            disk_checkpoint,
        };
        (service, streams, report)
    }

    /// Severs the transfer-fabric link `from → to` after `budget` more
    /// messages (fault injection: a serving peer dying mid-transfer).
    pub fn sever_transfer_link(&self, from: usize, to: usize, budget: u64) {
        self.net
            .sever_after(transfer_node(from), transfer_node(to), budget);
    }

    /// Stops the periodic driver, every transfer server and the fabric
    /// (call during engine shutdown).
    pub fn stop(mut self) {
        if let Some(driver) = self.checkpointer.take() {
            driver.stop();
        }
        self.net.shutdown();
        for slot in &mut self.replicas {
            if let Some(server) = slot.server.take() {
                server.stop();
            }
        }
    }
}

/// Client id the periodic checkpointer stamps on its control requests.
/// Never registered with the response router, so the (identical)
/// responses from all replicas are dropped on arrival.
const CHECKPOINTER_CLIENT: ClientId = ClientId::new(u64::MAX);

/// Spawns the periodic driver that multicasts a [`CHECKPOINT`] through
/// `sink` every `interval`.
pub(crate) fn auto_checkpointer(
    sink: Arc<dyn RequestSink>,
    interval: Duration,
    clock: ClockHandle,
) -> AutoCheckpointer {
    let mut next_request = 0u64;
    AutoCheckpointer::spawn_with_clock(interval, clock, move || {
        let request = Request::new(
            CHECKPOINTER_CLIENT,
            RequestId::new(next_request),
            CHECKPOINT,
            Vec::new(),
        );
        next_request += 1;
        sink.submit(&request);
    })
}

/// One replica's runtime state, uniform across engines: its threads, the
/// flag that crash-stops them, and (for recoverable deployments) the
/// live service instance so tests can compare replica states.
pub(crate) struct ReplicaSlot {
    pub threads: Vec<JoinHandle<()>>,
    pub kill: Arc<AtomicBool>,
    pub service: Option<Arc<dyn RecoverableService>>,
    pub crashed: bool,
}

impl ReplicaSlot {
    /// Crash-stops the replica: raises the kill flag, runs `unblock`
    /// (engine-specific wakeup of parked threads), joins every thread
    /// and discards the replica's service state.
    pub fn crash(&mut self, unblock: impl FnOnce()) {
        if self.crashed {
            return;
        }
        self.kill.store(true, Ordering::Relaxed);
        unblock();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.service = None;
        self.crashed = true;
    }

    /// Joins the replica's threads at shutdown (same path as crash, but
    /// keeps the slot's bookkeeping untouched).
    pub fn stop(&mut self, unblock: impl FnOnce()) {
        self.kill.store(true, Ordering::Relaxed);
        unblock();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use parking_lot::Mutex;
    use psmr_common::ids::{CommandId, GroupId};
    use psmr_recovery::{RestoreError, Snapshot};

    struct Null;

    impl Service for Null {
        fn execute(&self, _c: CommandId, _p: &[u8]) -> Vec<u8> {
            Vec::new()
        }
    }

    impl Snapshot for Null {
        fn snapshot(&self) -> Vec<u8> {
            vec![7]
        }

        fn restore(&self, _s: &[u8]) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    fn delivered(seq: u64) -> Delivered {
        Delivered {
            group: GroupId::new(0),
            batch_seq: seq,
            offset: 0,
            payload: bytes::Bytes::new(),
        }
    }

    fn hook(
        service: &Arc<dyn RecoverableService>,
        store: Arc<CheckpointStore>,
        seed: u64,
    ) -> CheckpointHook {
        CheckpointHook::new(service, store, None, fixed_epoch(), None, seed)
    }

    /// Replicas derive checkpoint ids from their own execution count, so
    /// a replica lagging arbitrarily far behind answers an old CHECKPOINT
    /// request with the same id the fast replicas already did.
    #[test]
    fn replicas_derive_identical_checkpoint_ids() {
        let store = Arc::new(CheckpointStore::new());
        let fast: Arc<dyn RecoverableService> = Arc::new(Null);
        let fast_hook = hook(&fast, Arc::clone(&store), 0);
        let slow: Arc<dyn RecoverableService> = Arc::new(Null);
        let slow_hook = hook(&slow, Arc::clone(&store), 0);
        // The fast replica executes checkpoints 1 and 2 before the slow
        // replica gets to the first one.
        assert_eq!(fast_hook.execute(&delivered(10)), 1u64.to_le_bytes());
        assert_eq!(fast_hook.execute(&delivered(20)), 2u64.to_le_bytes());
        assert_eq!(slow_hook.execute(&delivered(10)), 1u64.to_le_bytes());
        assert_eq!(slow_hook.execute(&delivered(20)), 2u64.to_le_bytes());
        assert_eq!(store.latest_id(), 2);
        // A restarted replica seeds from the checkpoint it recovered and
        // continues the same numbering for the replayed suffix.
        let restarted_hook = hook(&slow, store, 2);
        assert_eq!(restarted_hook.execute(&delivered(30)), 3u64.to_le_bytes());
    }

    fn test_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::new(1);
        cfg.replicas(2)
            .transfer_timeout(Duration::from_millis(60))
            .transfer_chunk_bytes(4);
        cfg
    }

    fn null_factory() -> Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> {
        Arc::new(|| Arc::new(Null) as Arc<dyn RecoverableService>)
    }

    fn cut_at(seq: u64) -> StreamCut {
        StreamCut {
            group: GroupId::new(1),
            seq,
            offset: 0,
        }
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("psmr-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The CutTrimmed fix: when every candidate cut's log suffix is
    /// trimmed and the peers have nothing fresher, recovery surfaces a
    /// typed error instead of looping on the stale checkpoint.
    #[test]
    fn recover_surfaces_cut_trimmed_when_trims_race() {
        let mut recovery = EngineRecovery::build(&test_cfg(), null_factory(), fixed_epoch());
        recovery.replicas[0].store.install(cut_at(5), 1, vec![7]);
        recovery.on_crash(1);
        let result = recovery.recover::<()>(1, &[0], &|_| {}, |cut| {
            Err(RecoveryError::LogTrimmed {
                group: cut.group,
                needed: cut.seq,
            })
        });
        let Err(err) = result else {
            panic!("expected CutTrimmed");
        };
        assert_eq!(err, RecoveryError::CutTrimmed { cut: cut_at(5) });
        recovery.stop();
    }

    /// No disk snapshot, no live peer: nothing to restart from.
    #[test]
    fn recover_without_disk_or_peers_is_no_checkpoint() {
        let mut recovery = EngineRecovery::build(&test_cfg(), null_factory(), fixed_epoch());
        recovery.on_crash(1);
        let result = recovery.recover::<()>(1, &[], &|_| {}, |_| Ok(()));
        let Err(err) = result else {
            panic!("expected NoCheckpoint");
        };
        assert_eq!(err, RecoveryError::NoCheckpoint);
        recovery.stop();
    }

    /// Disk-first: when the replica's own durable snapshot is as fresh
    /// as the peers' and its log suffix is retained, recovery never
    /// transfers the snapshot bytes at all.
    #[test]
    fn recover_prefers_its_own_disk_when_logs_cover_it() {
        let mut cfg = test_cfg();
        let dir = unique_dir("disk-first");
        cfg.snapshot_dir(Some(dir.clone()));
        let mut recovery = EngineRecovery::build(&cfg, null_factory(), fixed_epoch());
        let checkpoint = Checkpoint {
            id: 3,
            cut: cut_at(7),
            snapshot: vec![7],
        };
        recovery.replicas[1]
            .durable
            .as_ref()
            .expect("durable configured")
            .persist(&checkpoint, 0, &[])
            .unwrap();
        recovery.replicas[0].store.install(cut_at(7), 3, vec![7]);
        recovery.on_crash(1);
        let (_, (), report) = recovery
            .recover(1, &[0], &|_| {}, |_| Ok(()))
            .expect("recover from disk");
        assert_eq!(report.source, RecoverySource::Disk);
        assert_eq!(report.checkpoint_id, 3);
        assert_eq!(report.disk_checkpoint, Some(3));
        recovery.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Peer fallback: a stale disk snapshot whose log suffix is trimmed
    /// loses to the fresher checkpoint fetched from a live peer — and
    /// the fetched checkpoint is persisted to the replica's own disk so
    /// the *next* restart finds it locally.
    #[test]
    fn recover_falls_back_to_a_peer_past_a_stale_disk_snapshot() {
        let mut cfg = test_cfg();
        let dir = unique_dir("peer-fallback");
        cfg.snapshot_dir(Some(dir.clone()));
        let mut recovery = EngineRecovery::build(&cfg, null_factory(), fixed_epoch());
        let stale = Checkpoint {
            id: 2,
            cut: cut_at(4),
            snapshot: vec![7],
        };
        recovery.replicas[1]
            .durable
            .as_ref()
            .expect("durable configured")
            .persist(&stale, 0, &[])
            .unwrap();
        recovery.replicas[0].store.install(cut_at(9), 5, vec![7]);
        recovery.on_crash(1);
        let (_, (), report) = recovery
            .recover(1, &[0], &|_| {}, |cut| {
                if cut.seq < 9 {
                    Err(RecoveryError::LogTrimmed {
                        group: cut.group,
                        needed: cut.seq,
                    })
                } else {
                    Ok(())
                }
            })
            .expect("recover from peer");
        assert_eq!(report.source, RecoverySource::Peer(0));
        assert_eq!(report.checkpoint_id, 5);
        assert_eq!(report.disk_checkpoint, Some(2));
        let on_disk = recovery.replicas[1]
            .durable
            .as_ref()
            .unwrap()
            .load_latest()
            .expect("fetched checkpoint persisted locally");
        assert_eq!(on_disk.checkpoint.id, 5);
        recovery.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Cold start walks the replica's own disk: a snapshot restores as
    /// `Disk` (seeding the fresh in-memory store), an empty disk falls
    /// back to replaying the whole durable log (`WalOnly`).
    #[test]
    fn cold_start_prefers_disk_and_falls_back_to_wal_only() {
        let mut cfg = test_cfg();
        let dir = unique_dir("cold-start");
        cfg.snapshot_dir(Some(dir.clone()));
        let mut recovery = EngineRecovery::build(&cfg, null_factory(), fixed_epoch());
        recovery.replicas[0]
            .durable
            .as_ref()
            .expect("durable configured")
            .persist(
                &Checkpoint {
                    id: 2,
                    cut: cut_at(6),
                    snapshot: vec![7],
                },
                5,
                b"overlay",
            )
            .unwrap();
        let installed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&installed);
        let (_, (), report) = recovery
            .cold_start(
                0,
                GroupId::new(1),
                &move |t: &[u8]| sink.lock().push(t.to_vec()),
                |_| Ok(()),
                || Ok(()),
            )
            .expect("cold start from disk");
        assert_eq!(report.source, RecoverySource::Disk);
        assert_eq!(report.checkpoint_id, 2);
        assert_eq!(report.epoch, 5, "epoch persisted with the snapshot");
        assert_eq!(
            recovery.replicas[0].store.latest_id(),
            2,
            "recovered checkpoint seeds the fresh store"
        );
        assert_eq!(
            installed.lock().as_slice(),
            &[b"overlay".to_vec()],
            "the persisted overlay table is handed over before subscribing"
        );
        // Replica 1 never persisted anything: scratch replay.
        let (_, (), report) = recovery
            .cold_start(1, GroupId::new(1), &|_| {}, |_| Ok(()), || Ok(()))
            .expect("cold start from the log alone");
        assert_eq!(report.source, RecoverySource::WalOnly);
        assert_eq!(report.checkpoint_id, 0);
        assert_eq!(report.disk_checkpoint, None);
        recovery.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshots exist but the durable log no longer covers any of
    /// their cuts: the cold start surfaces the typed error instead of
    /// silently rebuilding a truncated state from scratch.
    #[test]
    fn cold_start_surfaces_cut_trimmed_when_the_log_is_gone() {
        let mut cfg = test_cfg();
        let dir = unique_dir("cold-trimmed");
        cfg.snapshot_dir(Some(dir.clone()));
        let mut recovery = EngineRecovery::build(&cfg, null_factory(), fixed_epoch());
        recovery.replicas[0]
            .durable
            .as_ref()
            .expect("durable configured")
            .persist(
                &Checkpoint {
                    id: 1,
                    cut: cut_at(9),
                    snapshot: vec![7],
                },
                0,
                &[],
            )
            .unwrap();
        let result = recovery.cold_start::<()>(
            0,
            GroupId::new(1),
            &|_| {},
            |cut| {
                Err(RecoveryError::LogTrimmed {
                    group: cut.group,
                    needed: cut.seq,
                })
            },
            || panic!("scratch must not run while snapshots exist"),
        );
        assert_eq!(
            result.map(|_| ()),
            Err(RecoveryError::CutTrimmed { cut: cut_at(9) })
        );
        recovery.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The hook persists installed checkpoints (with the epoch in force)
    /// to the replica's durable store and prunes old files.
    #[test]
    fn checkpoint_hook_persists_durably() {
        let dir = std::env::temp_dir().join(format!("psmr-hook-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Arc::new(DurableStore::open(&dir).unwrap());
        let store = Arc::new(CheckpointStore::new());
        let service: Arc<dyn RecoverableService> = Arc::new(Null);
        let epoch: EpochSource = Arc::new(|| (42, vec![1]));
        let hook = CheckpointHook::new(&service, store, Some(Arc::clone(&durable)), epoch, None, 0);
        for seq in 1..=4 {
            hook.execute(&delivered(seq * 10));
        }
        let latest = durable.load_latest().expect("persisted");
        assert_eq!(latest.checkpoint.id, 4);
        assert_eq!(latest.epoch, 42);
        assert_eq!(latest.checkpoint.snapshot, vec![7]);
        // retain_newest keeps the directory bounded.
        assert_eq!(durable.retain_newest(DISK_RETAIN).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
