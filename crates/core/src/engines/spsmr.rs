//! Semi-parallel state-machine replication (sP-SMR), the model of CBASE
//! (reference 4 of the paper) and the paper's main prior-work comparison.
//!
//! Commands are totally ordered and delivered as **one stream** per
//! replica; a single scheduler thread inspects each command's dependencies
//! (C-Dep) and dispatches independent commands to worker threads,
//! serializing dependent ones. Delivery and scheduling are sequential;
//! only execution is parallel — the scheduler is the component that
//! becomes CPU-bound and caps throughput in Figures 3, 5 and 7.
//!
//! Checkpointing rides the scheduler's existing synchronization: a
//! delivered [`psmr_recovery::CHECKPOINT`] drains the worker stage (the
//! same quiescence global commands use) and snapshots the service at
//! that point of the total order. Crash/restart mirrors the other
//! replicated engines.

use super::holdback::ResponseGate;
use super::recover::{
    auto_checkpointer, CheckpointHook, EngineRecovery, RecoveryReport, ReplicaSlot, CRASH_POLL,
};
use super::scheduler::ExecStage;
use super::{Engine, TotalOrderSink};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::service::{RecoverableService, ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, GroupId, ReplicaId};
use psmr_common::metrics::{counters, global};
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use psmr_recovery::{CheckpointStore, RecoveryError, CHECKPOINT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running sP-SMR deployment with `cfg.mpl` worker threads per replica
/// (the scheduler thread is extra, matching the paper's thread accounting).
pub struct SpSmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    gate: Arc<ResponseGate>,
    sink: Arc<TotalOrderSink>,
    map: CommandMap,
    mpl: usize,
    exec_ring: usize,
    replicas: Vec<ReplicaSlot>,
    recovery: Option<EngineRecovery>,
    next_client: AtomicU64,
}

impl SpSmrEngine {
    /// Spawns the deployment; each replica's state comes from `factory()`.
    pub fn spawn<S: Service>(cfg: &SystemConfig, map: CommandMap, factory: impl Fn() -> S) -> Self {
        let mut engine = Self::scaffold(cfg, map);
        for replica in 0..cfg.n_replicas {
            let service: Arc<dyn Service> = Arc::new(factory());
            let stream = engine.system.single_stream();
            let slot = engine.spawn_replica(replica, stream, service, None, None);
            engine.replicas.push(slot);
        }
        engine.system.start();
        engine
    }

    /// Like [`SpSmrEngine::spawn`] with checkpoint/crash/restart support
    /// (see [`super::PsmrEngine::spawn_recoverable`] — same contract).
    pub fn spawn_recoverable<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let mut engine = Self::scaffold(cfg, map);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let mut recovery =
            EngineRecovery::build(cfg, Arc::clone(&dyn_factory), super::recover::fixed_epoch());
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        for replica in 0..cfg.n_replicas {
            let service = (dyn_factory)();
            let hook = recovery.hook_for(replica, &service, Some(engine.sink.handle.clone()), 0);
            let stream = engine.system.single_stream();
            let slot = engine.spawn_replica(
                replica,
                stream,
                Arc::clone(&service) as Arc<dyn Service>,
                Some(service),
                Some(hook),
            );
            engine.replicas.push(slot);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        engine
    }

    /// Cold-starts a whole sP-SMR deployment from disk with no live peer
    /// (see [`super::PsmrEngine::cold_start`] — same contract over the
    /// single totally ordered stream).
    ///
    /// # Errors
    ///
    /// Same as [`super::PsmrEngine::cold_start`].
    pub fn cold_start<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        let mut engine = Self::scaffold(cfg, map);
        // Fresh clients must not collide with the client ids inside
        // replayed commands (see `PsmrEngine::cold_start`).
        engine.next_client = AtomicU64::new(engine.system.next_seq(GroupId::new(0)) << 32);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let mut recovery =
            EngineRecovery::build(cfg, Arc::clone(&dyn_factory), super::recover::fixed_epoch());
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        let mut reports = Vec::new();
        let mut failure = None;
        for replica in 0..cfg.n_replicas {
            let recovered = {
                let system = &engine.system;
                // sP-SMR's map is fixed at spawn (no remap router); the
                // persisted overlay table (always empty here) has nowhere
                // to go.
                recovery.cold_start(
                    replica,
                    GroupId::new(0),
                    &|_| {},
                    |cut| system.single_stream_at(cut),
                    || system.single_stream_from_start(),
                )
            };
            let (service, stream, report) = match recovered {
                Ok(recovered) => recovered,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let hook = recovery.hook_for(
                replica,
                &service,
                Some(engine.sink.handle.clone()),
                report.checkpoint_id,
            );
            let slot = engine.spawn_replica(
                replica,
                stream,
                Arc::clone(&service) as Arc<dyn Service>,
                Some(service),
                Some(hook),
            );
            engine.replicas.push(slot);
            reports.push(report);
        }
        if let Some(e) = failure {
            engine.recovery = Some(recovery);
            engine.shutdown();
            return Err(e);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        global().counter(counters::COLD_STARTS).inc();
        Ok((engine, reports))
    }

    /// Crash-stops every replica at once (see
    /// [`super::PsmrEngine::crash_all_replicas`]); recover with
    /// [`SpSmrEngine::cold_start`] over the same directories.
    pub fn crash_all_replicas(&mut self) {
        for idx in 0..self.replicas.len() {
            let _ = self.crash_replica(ReplicaId::new(idx));
        }
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.crash_everything();
        }
    }

    fn scaffold(cfg: &SystemConfig, map: CommandMap) -> Self {
        let system = MulticastSystem::spawn_single(cfg);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let gate = ResponseGate::for_view(
            Arc::clone(&router),
            system.durability(),
            Arc::clone(&system.runtime().clock),
        );
        let sink = Arc::new(TotalOrderSink {
            handle: system.handle(),
        });
        Self {
            system,
            router,
            gate,
            sink,
            map,
            mpl: cfg.mpl,
            exec_ring: cfg.exec_ring,
            replicas: Vec::new(),
            recovery: None,
            next_client: AtomicU64::new(0),
        }
    }

    fn spawn_replica(
        &self,
        replica: usize,
        stream: MergedStream,
        service: Arc<dyn Service>,
        dyn_service: Option<Arc<dyn RecoverableService>>,
        hook: Option<CheckpointHook>,
    ) -> ReplicaSlot {
        let kill = Arc::new(AtomicBool::new(false));
        let stage = ExecStage::spawn(
            self.mpl,
            service,
            self.map.clone(),
            Arc::clone(&self.gate),
            self.exec_ring,
            &format!("spsmr-r{replica}"),
        );
        let ctx = SchedulerCtx {
            gate: Arc::clone(&self.gate),
            kill: Arc::clone(&kill),
            hook,
        };
        let thread = std::thread::Builder::new()
            .name(format!("spsmr-r{replica}-sched"))
            .spawn(move || scheduler_main(ctx, stream, stage))
            .expect("spawn sP-SMR scheduler");
        ReplicaSlot {
            threads: vec![thread],
            kill,
            service: dyn_service,
            crashed: false,
        }
    }

    /// Crash-stops one replica (scheduler plus worker stage) mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::UnknownReplica`] for an out-of-range id.
    pub fn crash_replica(&mut self, replica: ReplicaId) -> Result<(), RecoveryError> {
        let idx = replica.as_raw();
        let slot = self
            .replicas
            .get_mut(idx)
            .ok_or(RecoveryError::UnknownReplica { replica: idx })?;
        slot.crash(|| {});
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.on_crash(idx);
        }
        Ok(())
    }

    /// Restarts a crashed replica disk-first with peer fallback (see
    /// [`super::PsmrEngine::restart_replica`] — same recovery path over
    /// the single totally ordered stream).
    ///
    /// # Errors
    ///
    /// Requires a recoverable deployment, a crashed replica, a recovery
    /// point (disk snapshot or live peer), and retained logs covering
    /// its cut.
    pub fn restart_replica(&mut self, replica: ReplicaId) -> Result<RecoveryReport, RecoveryError> {
        let idx = replica.as_raw();
        if idx >= self.replicas.len() {
            return Err(RecoveryError::UnknownReplica { replica: idx });
        }
        if !self.replicas[idx].crashed {
            return Err(RecoveryError::NotCrashed);
        }
        if self.recovery.is_none() {
            return Err(RecoveryError::NotRecoverable);
        }
        let live_peers: Vec<usize> = (0..self.replicas.len())
            .filter(|&p| p != idx && !self.replicas[p].crashed)
            .collect();
        let system = &self.system;
        let recovery = self.recovery.as_mut().expect("checked above");
        let (service, stream, report) = recovery.recover(
            idx,
            &live_peers,
            &|_table| {}, // sP-SMR routes everything through one stream
            |cut| system.single_stream_at(cut),
        )?;
        let hook = recovery.hook_for(
            idx,
            &service,
            Some(self.sink.handle.clone()),
            report.checkpoint_id,
        );
        self.replicas[idx] = self.spawn_replica(
            idx,
            stream,
            Arc::clone(&service) as Arc<dyn Service>,
            Some(service),
            Some(hook),
        );
        global().counter(counters::REPLICA_RESTARTS).inc();
        Ok(report)
    }

    /// The checkpoint store of one live replica (recoverable deployments
    /// only).
    pub fn checkpoint_store(&self) -> Option<Arc<CheckpointStore>> {
        let recovery = self.recovery.as_ref()?;
        self.replicas
            .iter()
            .position(|slot| !slot.crashed)
            .map(|idx| Arc::clone(&recovery.replicas[idx].store))
    }

    /// The live service instance of one replica (recoverable
    /// deployments; `None` for crashed replicas).
    pub fn replica_service(&self, replica: ReplicaId) -> Option<Arc<dyn RecoverableService>> {
        self.replicas.get(replica.as_raw())?.service.clone()
    }

    /// Crash-stops one acceptor of the ordering group (engine-level
    /// fault injection).
    pub fn crash_acceptor(&self, acceptor: usize) {
        self.system.crash_acceptor(GroupId::new(0), acceptor);
    }
}

impl Engine for SpSmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "sP-SMR"
    }

    fn shutdown(mut self) {
        if let Some(recovery) = self.recovery.take() {
            recovery.stop();
        }
        self.system.shutdown();
        for slot in &mut self.replicas {
            slot.stop(|| {});
        }
        self.gate.stop();
    }
}

struct SchedulerCtx {
    gate: Arc<ResponseGate>,
    kill: Arc<AtomicBool>,
    hook: Option<CheckpointHook>,
}

fn scheduler_main(ctx: SchedulerCtx, mut stream: MergedStream, mut stage: ExecStage) {
    loop {
        if ctx.kill.load(Ordering::Relaxed) {
            break;
        }
        let delivered = match stream.next_timeout(CRASH_POLL) {
            Ok(Some(delivered)) => delivered,
            Ok(None) => continue,
            Err(_) => break,
        };
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request");
            continue;
        };
        if req.command == CHECKPOINT {
            // Quiesce the worker stage — the same synchronization global
            // commands use — then snapshot at this point of the total
            // order. The scheduler answers directly; no worker runs it.
            stage.drain();
            let resp = match &ctx.hook {
                Some(hook) => hook.execute(&delivered),
                None => Vec::new(),
            };
            ctx.gate.respond_at(
                delivered.group,
                delivered.batch_seq,
                req.client,
                Response::new(req.request, resp),
            );
            continue;
        }
        let (group, seq) = (delivered.group, delivered.batch_seq);
        stage.schedule(req, group, seq);
    }
    stage.shutdown();
}
