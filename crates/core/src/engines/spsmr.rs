//! Semi-parallel state-machine replication (sP-SMR), the model of CBASE
//! (reference 4 of the paper) and the paper's main prior-work comparison.
//!
//! Commands are totally ordered and delivered as **one stream** per
//! replica; a single scheduler thread inspects each command's dependencies
//! (C-Dep) and dispatches independent commands to worker threads,
//! serializing dependent ones. Delivery and scheduling are sequential;
//! only execution is parallel — the scheduler is the component that
//! becomes CPU-bound and caps throughput in Figures 3, 5 and 7.

use super::scheduler::ExecStage;
use super::{Engine, TotalOrderSink};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::service::{ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::Request;
use psmr_common::ids::ClientId;
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running sP-SMR deployment with `cfg.mpl` worker threads per replica
/// (the scheduler thread is extra, matching the paper's thread accounting).
pub struct SpSmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    sink: Arc<TotalOrderSink>,
    threads: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
}

impl SpSmrEngine {
    /// Spawns the deployment; each replica's state comes from `factory()`.
    pub fn spawn<S: Service>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S,
    ) -> Self {
        let system = MulticastSystem::spawn_single(cfg);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let mut threads = Vec::new();
        for replica in 0..cfg.n_replicas {
            let service = Arc::new(factory());
            let stream = system.single_stream();
            let stage = ExecStage::spawn(
                cfg.mpl,
                service,
                map.clone(),
                Arc::clone(&router),
                &format!("spsmr-r{replica}"),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spsmr-r{replica}-sched"))
                    .spawn(move || scheduler_main(stream, stage))
                    .expect("spawn sP-SMR scheduler"),
            );
        }
        let sink = Arc::new(TotalOrderSink { handle: system.handle() });
        system.start();
        Self { system, router, sink, threads, next_client: AtomicU64::new(0) }
    }
}

impl Engine for SpSmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "sP-SMR"
    }

    fn shutdown(mut self) {
        self.system.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn scheduler_main(mut stream: MergedStream, mut stage: ExecStage) {
    while let Some(delivered) = stream.next() {
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request");
            continue;
        };
        stage.schedule(req);
    }
    stage.shutdown();
}
