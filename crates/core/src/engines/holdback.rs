//! Response holdback for pipelined group commit.
//!
//! With `SystemConfig::wal_pipeline` on, a decided batch is executed
//! while its covering `fsync` is still in flight — so a response sent
//! the moment execution finishes could acknowledge a command a power
//! failure then erases. The [`ResponseGate`] closes that hole at the
//! *observability* boundary instead of the execution boundary: workers
//! hand it every response tagged with the command's stream provenance
//! `(group, batch seq)`, and the gate forwards it to the real
//! [`ResponseRouter`](crate::service::ResponseRouter) only once the
//! group's durability watermark covers that sequence number. Executed
//! state that is not yet durable is never observable, which is exactly
//! the invariant whole-deployment cold start needs (a crash between
//! fan-out and fsync loses only *unacknowledged* commands).
//!
//! Workers never block here: a response whose batch is still in the
//! open group-commit window is queued, and a release thread parked on
//! the deployment's [`DurabilityHub`](psmr_multicast::DurabilityView)
//! forwards it when the watermark moves. Non-pipelined deployments use
//! the passthrough constructor, which forwards immediately and spawns
//! nothing.

use crate::service::SharedRouter;
use parking_lot::Mutex;
use psmr_common::envelope::Response;
use psmr_common::ids::{ClientId, GroupId};
use psmr_common::metrics::{counters, global};
use psmr_common::runtime::ClockHandle;
use psmr_multicast::DurabilityView;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A response waiting for its batch's covering fsync.
struct Held {
    group: GroupId,
    seq: u64,
    client: ClientId,
    response: Response,
}

/// The gated half: pending responses plus the release thread's controls.
struct GateState {
    view: DurabilityView,
    pending: Mutex<Vec<Held>>,
    stop: AtomicBool,
}

/// Routes responses to clients, delaying each until the durability
/// watermark of its originating group covers its batch. See the
/// [module docs](self).
pub(crate) struct ResponseGate {
    router: SharedRouter,
    state: Option<Arc<GateState>>,
    release: Mutex<Option<JoinHandle<()>>>,
}

impl ResponseGate {
    /// A gate that forwards immediately — for deployments without
    /// pipelined group commit (responses there are already safe to
    /// release at execution time under the configured fault model).
    pub fn passthrough(router: SharedRouter) -> Arc<Self> {
        Arc::new(Self {
            router,
            state: None,
            release: Mutex::new(None),
        })
    }

    /// A gate bound to a pipelined deployment's durability view.
    ///
    /// Held responses are released by three cooperating paths, cheapest
    /// first: workers drain opportunistically on their own `respond_at`
    /// calls; the WAL sync thread drains inline right after each
    /// watermark advance (the on-bump observer — same scheduling quantum
    /// as the covering fsync); and a timer safety-net thread mops up
    /// anything parked during a quiet period.
    pub fn gated(router: SharedRouter, view: DurabilityView, clock: ClockHandle) -> Arc<Self> {
        let state = Arc::new(GateState {
            view,
            pending: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        {
            let router = Arc::clone(&router);
            let state = Arc::clone(&state);
            state
                .view
                .clone()
                .set_on_bump(Some(Arc::new(move || drain_released(&router, &state))));
        }
        let thread = {
            let router = Arc::clone(&router);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("response-release".into())
                .spawn(move || release_main(&router, &state, &clock))
                .expect("spawn response-release thread")
        };
        Arc::new(Self {
            router,
            state: Some(state),
            release: Mutex::new(Some(thread)),
        })
    }

    /// Convenience: gated when the deployment is pipelined, passthrough
    /// otherwise. The safety-net release timer runs on `clock`.
    pub fn for_view(
        router: SharedRouter,
        view: Option<DurabilityView>,
        clock: ClockHandle,
    ) -> Arc<Self> {
        match view {
            Some(view) => Self::gated(router, view, clock),
            None => Self::passthrough(router),
        }
    }

    /// Delivers `response` to `client` once the batch at `(group, seq)`
    /// is durable. Never blocks the calling worker: a not-yet-durable
    /// response is parked for later release.
    ///
    /// Every call also opportunistically drains whatever parked
    /// responses the watermarks now cover — on a busy deployment the
    /// executing workers release each other's holds with no extra
    /// thread wakeup, and the dedicated release thread only mops up
    /// when traffic goes quiet.
    pub fn respond_at(&self, group: GroupId, seq: u64, client: ClientId, mut response: Response) {
        // Tag the response with its stream provenance so the client proxy
        // can stamp the final lifecycle trace stage at first receipt.
        response.origin = Some((group.as_raw(), seq));
        match &self.state {
            None => {
                self.router.respond(client, response);
            }
            Some(state) => {
                // Fast path: the covering fsync already landed (the sync
                // thread usually wins the race against execution).
                if state.view.durable_seq(group) >= seq {
                    self.router.respond(client, response);
                } else {
                    global().counter(counters::RESPONSES_HELD).inc();
                    state.pending.lock().push(Held {
                        group,
                        seq,
                        client,
                        response,
                    });
                }
                drain_released(&self.router, state);
            }
        }
    }

    /// Stops and joins the release thread and unhooks the on-bump
    /// observer (pending responses are dropped — the engine is going
    /// down and its clients with it).
    pub fn stop(&self) {
        if let Some(state) = &self.state {
            state.stop.store(true, Ordering::Relaxed);
            // The hub holds the observer (and through it this gate's
            // state) strongly; clear it to break the cycle.
            state.view.set_on_bump(None);
        }
        if let Some(thread) = self.release.lock().take() {
            let _ = thread.join();
        }
    }
}

/// Forwards every parked response whose batch the watermarks now cover.
fn drain_released(router: &SharedRouter, state: &GateState) {
    let released: Vec<Held> = {
        let mut pending = state.pending.lock();
        if pending.is_empty() {
            return;
        }
        let mut released = Vec::new();
        let mut i = 0;
        while i < pending.len() {
            if state.view.durable_seq(pending[i].group) >= pending[i].seq {
                released.push(pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        released
    };
    if !released.is_empty() {
        global()
            .counter(counters::RESPONSES_RELEASED)
            .add(released.len() as u64);
        for held in released {
            router.respond(held.client, held.response);
        }
    }
}

/// The safety-net release loop: a plain timer drain. The prompt paths
/// (worker piggyback + the sync thread's on-bump drain) release almost
/// everything; this loop only catches a response parked in the race
/// window just *after* the bump that covered it, with no later traffic
/// to drain it. A timer (instead of parking on the hub) keeps this
/// thread from waking on every fsync.
fn release_main(router: &SharedRouter, state: &GateState, clock: &ClockHandle) {
    while !state.stop.load(Ordering::Relaxed) {
        clock.sleep(Duration::from_millis(10));
        drain_released(router, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ResponseRouter;
    use psmr_common::ids::RequestId;

    #[test]
    fn passthrough_forwards_immediately() {
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let rx = router.register(ClientId::new(1));
        let gate = ResponseGate::passthrough(Arc::clone(&router));
        gate.respond_at(
            GroupId::new(0),
            99,
            ClientId::new(1),
            Response::new(RequestId::new(7), vec![1]),
        );
        assert_eq!(rx.try_recv().unwrap().request, RequestId::new(7));
        gate.stop();
    }
}
