//! The scheduler/worker execution stage shared by sP-SMR and no-rep.
//!
//! "A single scheduler thread delivers all requests and, if they are
//! independent, enqueues them for execution by one of the workers. In the
//! case of a request requiring sequential execution, the scheduler waits
//! for the worker threads to finish their ongoing work and then assigns the
//! request to one worker thread." (§VI-C)
//!
//! Scheduling is deterministic, as CBASE (ref. 4) requires: commands arrive in a total
//! order, keyed commands go to worker `key mod k` (preserving per-key FIFO),
//! free commands round-robin, and global commands drain the stage before and
//! after execution. Replicas applying this policy to the same input sequence
//! dispatch identically.

use super::holdback::ResponseGate;
use crate::conflict::{CommandClass, CommandMap};
use crate::service::Service;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::GroupId;
use psmr_common::metrics::{counters, global};
use psmr_common::trace::{self, Stage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One scheduled request plus the stream provenance its response is
/// gated on (zeros for ungated engines like no-rep).
struct Sched {
    req: Request,
    group: GroupId,
    seq: u64,
}

/// A scheduler plus `k` worker threads executing against one replica's
/// service instance, fed through **bounded rings**: a full ring blocks
/// the scheduler (counted under `exec_backpressure_stalls`), so a slow
/// worker throttles delivery instead of buffering requests without
/// bound.
pub(crate) struct ExecStage {
    workers: Vec<Sender<Sched>>,
    outstanding: Arc<Vec<AtomicU64>>,
    handles: Vec<JoinHandle<()>>,
    map: CommandMap,
    rr: u64,
}

impl ExecStage {
    /// Spawns the worker pool for `service`; each worker's ring holds at
    /// most `ring` requests and responses flow through `gate`.
    pub fn spawn(
        k: usize,
        service: Arc<dyn Service>,
        map: CommandMap,
        gate: Arc<ResponseGate>,
        ring: usize,
        name: &str,
    ) -> Self {
        assert!(k > 0, "need at least one worker");
        let outstanding: Arc<Vec<AtomicU64>> =
            Arc::new((0..k).map(|_| AtomicU64::new(0)).collect());
        let mut workers = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for i in 0..k {
            let (tx, rx): (Sender<Sched>, Receiver<Sched>) = bounded(ring.max(1));
            workers.push(tx);
            let service = Arc::clone(&service);
            let gate = Arc::clone(&gate);
            let outstanding = Arc::clone(&outstanding);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{name}-w{i}"))
                    .spawn(move || {
                        while let Ok(sched) = rx.recv() {
                            let req = sched.req;
                            trace::global().stamp(
                                sched.group.as_raw(),
                                sched.seq,
                                Stage::ExecStart,
                            );
                            let resp = service.execute(req.command, &req.payload);
                            trace::global().stamp(sched.group.as_raw(), sched.seq, Stage::Executed);
                            gate.respond_at(
                                sched.group,
                                sched.seq,
                                req.client,
                                Response::new(req.request, resp),
                            );
                            outstanding[i].fetch_sub(1, Ordering::Release);
                        }
                    })
                    .expect("spawn stage worker"),
            );
        }
        Self {
            workers,
            outstanding,
            handles,
            map,
            rr: 0,
        }
    }

    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn enqueue(&self, worker: usize, sched: Sched) {
        self.outstanding[worker].fetch_add(1, Ordering::Acquire);
        match self.workers[worker].try_send(sched) {
            Ok(()) => {}
            Err(TrySendError::Full(sched)) => {
                // Ring full: the scheduler stalls here, which is the
                // backpressure propagating upstream to delivery.
                global().counter(counters::EXEC_BACKPRESSURE_STALLS).inc();
                if self.workers[worker].send(sched).is_err() {
                    self.outstanding[worker].fetch_sub(1, Ordering::Release);
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                self.outstanding[worker].fetch_sub(1, Ordering::Release);
            }
        }
    }

    /// Busy-waits (with yields) until every worker has drained its queue —
    /// the scheduler-side synchronization of §VI-C. Also the quiescence
    /// point the checkpoint path uses before snapshotting.
    pub(crate) fn drain(&self) {
        loop {
            let busy = self
                .outstanding
                .iter()
                .any(|c| c.load(Ordering::Acquire) > 0);
            if !busy {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Schedules one delivered request, tagged with the stream
    /// provenance `(group, seq)` its response is gated on. This is the
    /// scheduler's only entry point; calling it from a single thread
    /// with the replica's delivery order yields deterministic execution.
    pub fn schedule(&mut self, req: Request, group: GroupId, seq: u64) {
        trace::global().stamp(group.as_raw(), seq, Stage::Delivered);
        let k = self.worker_count();
        let sched = Sched { req, group, seq };
        match self.map.class(sched.req.command) {
            CommandClass::Global => {
                // Dependent on everything: wait for ongoing work, run it
                // alone, wait for it before dispatching anything else.
                self.drain();
                self.enqueue((self.rr as usize) % k, sched);
                self.rr += 1;
                self.drain();
            }
            CommandClass::Keyed { .. } => {
                let worker = (self.map.key(&sched.req.payload) % k as u64) as usize;
                self.enqueue(worker, sched);
            }
            CommandClass::Free => {
                let worker = (self.rr as usize) % k;
                self.rr += 1;
                self.enqueue(worker, sched);
            }
        }
    }

    /// Closes the worker queues and joins the worker threads.
    pub fn shutdown(mut self) {
        self.workers.clear(); // disconnect queues
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{CommandClass, DependencySpec};
    use crate::service::{ResponseRouter, SharedRouter};
    use parking_lot::Mutex;
    use psmr_common::ids::{ClientId, CommandId, RequestId};

    const READ: CommandId = CommandId::new(0);
    const UPDATE: CommandId = CommandId::new(1);
    const GLOBAL: CommandId = CommandId::new(2);

    /// Records execution order; global commands assert exclusivity.
    struct Recorder {
        log: Mutex<Vec<(CommandId, u64)>>,
        in_flight: AtomicU64,
    }

    impl Service for Recorder {
        fn execute(&self, cmd: CommandId, payload: &[u8]) -> Vec<u8> {
            let n = self.in_flight.fetch_add(1, Ordering::SeqCst);
            if cmd == GLOBAL {
                assert_eq!(n, 0, "global command ran concurrently with others");
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
            let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
            self.log.lock().push((cmd, key));
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            Vec::new()
        }
    }

    fn stage_with_ring(ring: usize) -> (ExecStage, Arc<Recorder>, SharedRouter) {
        let mut spec = DependencySpec::new();
        spec.declare(READ, CommandClass::Keyed { writes: false })
            .declare(UPDATE, CommandClass::Keyed { writes: true })
            .declare(GLOBAL, CommandClass::Global)
            .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));
        let service = Arc::new(Recorder {
            log: Mutex::new(Vec::new()),
            in_flight: AtomicU64::new(0),
        });
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let stage = ExecStage::spawn(
            4,
            Arc::clone(&service) as Arc<dyn Service>,
            spec.into_map(),
            ResponseGate::passthrough(Arc::clone(&router)),
            ring,
            "test",
        );
        (stage, service, router)
    }

    fn stage() -> (ExecStage, Arc<Recorder>, SharedRouter) {
        stage_with_ring(4096)
    }

    fn req(cmd: CommandId, key: u64, id: u64) -> Request {
        Request::new(
            ClientId::new(0),
            RequestId::new(id),
            cmd,
            key.to_le_bytes().to_vec(),
        )
    }

    fn schedule(stage: &mut ExecStage, req: Request) {
        stage.schedule(req, psmr_common::ids::GroupId::new(0), 0);
    }

    #[test]
    fn global_commands_run_in_isolation() {
        let (mut stage, service, _router) = stage();
        for i in 0..50u64 {
            if i % 10 == 9 {
                schedule(&mut stage, req(GLOBAL, i, i));
            } else {
                schedule(&mut stage, req(UPDATE, i, i));
            }
        }
        stage.shutdown();
        assert_eq!(service.log.lock().len(), 50);
    }

    #[test]
    fn same_key_commands_preserve_order() {
        let (mut stage, service, _router) = stage();
        // All updates on key 3 must execute in submission order.
        for i in 0..100u64 {
            let mut r = req(UPDATE, 3, i);
            r.request = RequestId::new(i);
            schedule(&mut stage, r);
        }
        stage.shutdown();
        let log = service.log.lock();
        assert_eq!(log.len(), 100);
        // All went to the same worker, hence FIFO; verify stability by
        // checking the recorded sequence is exactly the submission order.
        // (The recorder logs after sleeping, so cross-worker interleaving
        // would scramble it.)
        assert!(log.iter().all(|(c, k)| *c == UPDATE && *k == 3));
    }

    #[test]
    fn keyed_commands_fan_out_across_workers() {
        let (mut stage, service, _router) = stage();
        for i in 0..40u64 {
            schedule(&mut stage, req(READ, i, i));
        }
        stage.shutdown();
        assert_eq!(service.log.lock().len(), 40);
    }

    /// A slow worker behind a tiny ring throttles the scheduler: the
    /// stall is counted, memory stays bounded at the ring's capacity,
    /// and every request still executes once the worker catches up.
    #[test]
    fn full_ring_stalls_the_scheduler_and_counts_it() {
        let (mut stage, service, _router) = stage_with_ring(1);
        let stalls_before = global().value(counters::EXEC_BACKPRESSURE_STALLS);
        // All on key 3 → one worker; each execution sleeps, so the
        // 1-slot ring must fill and stall the scheduler repeatedly.
        for i in 0..32u64 {
            schedule(&mut stage, req(UPDATE, 3, i));
        }
        assert!(
            global().value(counters::EXEC_BACKPRESSURE_STALLS) > stalls_before,
            "a 1-slot ring under 32 back-to-back requests must stall"
        );
        stage.shutdown();
        assert_eq!(service.log.lock().len(), 32, "nothing was dropped");
    }

    #[test]
    fn responses_reach_the_router() {
        let (mut stage, _service, router) = stage();
        let rx = router.register(ClientId::new(0));
        schedule(&mut stage, req(READ, 1, 7));
        stage.shutdown();
        let resp = rx.recv().unwrap();
        assert_eq!(resp.request, RequestId::new(7));
    }
}
