//! The P-SMR engine (paper §IV, Algorithm 1) plus coordinated
//! checkpointing and replica recovery.
//!
//! Each of the `n` replicas runs `k = MPL` worker threads. Worker `t_i`
//! consumes the deterministic merge of multicast groups `g_i` and `g_all`:
//!
//! * a command delivered on `g_i` was multicast to a single group —
//!   **parallel mode**: execute and respond immediately (lines 10–13);
//! * a command delivered on `g_all` was multicast to several groups —
//!   **synchronous mode**: the involved workers synchronize with signals
//!   and the deterministically elected executor `e = min{j : g_j ∈ γ}` runs
//!   the command alone (lines 14–26).
//!
//! No component sequences all commands: delivery, scheduling and execution
//! are all per-worker, which is what lets throughput scale with cores
//! (Figure 5 of the paper).
//!
//! # Checkpointing and recovery
//!
//! Deployments spawned with [`PsmrEngine::spawn_recoverable`] support the
//! crash/recovery scenario family. A [`psmr_recovery::CHECKPOINT`]
//! control command is classified `Global`, so it travels on `g_all` and
//! synchronizes all `k` workers exactly like any dependent command — the
//! synchronous-mode barrier *is* the quiescence point. The elected
//! executor snapshots the service while its peers wait, installs the
//! checkpoint into its replica's own [`psmr_recovery::CheckpointStore`]
//! tagged with the command's stream position, persists it durably when
//! `SystemConfig::snapshot_dir` is set, and trims the ordered logs the
//! checkpoint makes reclaimable. Each replica serves its store to
//! restarting peers through a `psmr_recovery::transfer` server.
//! [`PsmrEngine::crash_replica`] crash-stops one replica's workers
//! mid-run; [`PsmrEngine::restart_replica`] recovers it disk-first with
//! peer fallback — own durable snapshot when the retained logs still
//! cover it, chunked digest-verified state transfer from a live peer
//! otherwise — replays the retained log suffix, and the replica
//! converges with the rest. With
//! [`PsmrEngine::spawn_recoverable_remappable`], the transfer handshake
//! additionally carries the remap epoch in force, so a replica that
//! checkpointed under an old C-Dep mapping rejoins under the current
//! one.

use super::holdback::ResponseGate;
use super::recover::{
    auto_checkpointer, CheckpointHook, EngineRecovery, RecoveryReport, ReplicaSlot, CRASH_POLL,
};
use super::sync::{SignalBoard, SignalEndpoint, SignalKind};
use super::{CgSink, Engine, Router};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::remap::RemappableMap;
use crate::service::{RecoverableService, ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, GroupId, ReplicaId, WorkerId};
use psmr_common::metrics::{counters, global, ScopedCounter};
use psmr_common::runtime::Runtime;
use psmr_common::trace::{self, Stage};
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use psmr_recovery::{CheckpointStore, RecoveryError, CHECKPOINT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running P-SMR deployment.
///
/// See the [crate-level quickstart](crate) for an end-to-end example.
pub struct PsmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    /// Response path of every worker: passthrough normally, durability-
    /// gated when `cfg.wal_pipeline` is on.
    gate: Arc<ResponseGate>,
    sink: Arc<CgSink>,
    boards: Vec<SignalBoard>,
    replicas: Vec<ReplicaSlot>,
    recovery: Option<EngineRecovery>,
    next_client: AtomicU64,
}

impl PsmrEngine {
    /// Spawns `cfg.n_replicas` replicas with `cfg.mpl` worker threads each,
    /// every replica initialized with `factory()`.
    ///
    /// `factory` must produce identical initial states — replica
    /// determinism starts from equal initial states (§III).
    pub fn spawn<S: Service>(cfg: &SystemConfig, map: CommandMap, factory: impl Fn() -> S) -> Self {
        Self::spawn_with_router(cfg, Router::Fixed(map), factory, Runtime::real())
    }

    /// Like [`PsmrEngine::spawn`] with an injected [`Runtime`]: every
    /// wall-clock read, pacing sleep and schedule point of the whole
    /// stack (Paxos groups, merge streams, WAL syncer, response gate)
    /// flows through `rt`'s clock and scheduler. Production code uses
    /// [`Runtime::real`]; the deterministic-simulation harness injects
    /// seeded schedulers and virtual clocks here.
    pub fn spawn_with_runtime<S: Service>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S,
        rt: Runtime,
    ) -> Self {
        Self::spawn_with_router(cfg, Router::Fixed(map), factory, rt)
    }

    /// Like [`PsmrEngine::spawn`] with an online-reconfigurable C-G: remap
    /// tables submitted as [`crate::remap::REMAP`] commands install at a
    /// deterministic point of the serialized stream on every replica
    /// (§IV-D's future-work extension).
    pub fn spawn_remappable<S: Service>(
        cfg: &SystemConfig,
        map: RemappableMap,
        factory: impl Fn() -> S,
    ) -> Self {
        Self::spawn_with_router(cfg, Router::Remappable(map), factory, Runtime::real())
    }

    fn spawn_with_router<S: Service>(
        cfg: &SystemConfig,
        map: Router,
        factory: impl Fn() -> S,
        rt: Runtime,
    ) -> Self {
        let mut engine = Self::scaffold(cfg, map, rt);
        for replica in 0..cfg.n_replicas {
            let service = Arc::new(factory());
            let slot = engine.spawn_replica(cfg, replica, service, None, None);
            engine.replicas.push(slot);
        }
        engine.system.start();
        engine
    }

    /// Spawns a deployment whose replicas can be checkpointed, crashed
    /// and restarted: the service additionally implements
    /// [`psmr_recovery::Snapshot`]. With `cfg.checkpoint_interval` set, a
    /// background driver multicasts [`CHECKPOINT`] commands periodically;
    /// otherwise submit them through any client (the response carries the
    /// checkpoint id). With `cfg.snapshot_dir` set, every replica also
    /// persists its checkpoints to disk and recovers from them.
    pub fn spawn_recoverable<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        Self::spawn_recoverable_with_router(cfg, Router::Fixed(map), factory, Runtime::real())
    }

    /// [`PsmrEngine::spawn_recoverable`] with an injected [`Runtime`]
    /// (see [`PsmrEngine::spawn_with_runtime`]). The transfer fabric's
    /// timeouts and the periodic checkpointer also run on `rt`'s clock.
    pub fn spawn_recoverable_with_runtime<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
        rt: Runtime,
    ) -> Self {
        Self::spawn_recoverable_with_router(cfg, Router::Fixed(map), factory, rt)
    }

    /// Like [`PsmrEngine::spawn_recoverable`] with an online-remappable
    /// C-G (see [`PsmrEngine::spawn_remappable`]): the state-transfer
    /// handshake carries the remap epoch and overlay table in force, so
    /// a replica restarting across a remap rejoins under the current
    /// mapping.
    pub fn spawn_recoverable_remappable<S: RecoverableService>(
        cfg: &SystemConfig,
        map: RemappableMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        Self::spawn_recoverable_with_router(cfg, Router::Remappable(map), factory, Runtime::real())
    }

    fn spawn_recoverable_with_router<S: RecoverableService>(
        cfg: &SystemConfig,
        map: Router,
        factory: impl Fn() -> S + Send + Sync + 'static,
        rt: Runtime,
    ) -> Self {
        let mut engine = Self::scaffold(cfg, map, rt);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let epoch_router = engine.sink.router.clone();
        let mut recovery = EngineRecovery::build(
            cfg,
            Arc::clone(&dyn_factory),
            Arc::new(move || epoch_router.epoch_table()),
        );
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        for replica in 0..cfg.n_replicas {
            let service = (dyn_factory)();
            let hook = recovery.hook_for(replica, &service, Some(engine.sink.handle.clone()), 0);
            let slot =
                engine.spawn_replica(cfg, replica, service.clone(), Some(service), Some(hook));
            engine.replicas.push(slot);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        engine
    }

    /// **Cold-starts a whole deployment from disk** — every replica
    /// restarts at once with **no live peer to fetch from**, the
    /// scenario a whole-cluster crash leaves behind. Requires a
    /// deployment previously spawned with `cfg.wal_dir` (the durable
    /// ordered logs) and, for state older than the logs' retention,
    /// `cfg.snapshot_dir`. Recovery replays everything the logs hold:
    /// complete after a process-level crash; after a power failure, up
    /// to the open group-commit window (`wal_batch - 1` unsynced
    /// appends per group) can be missing from the tail.
    ///
    /// The multicast substrate replays each group's write-ahead log into
    /// its retained stream (the sequence numbering *continues* — cuts
    /// taken before the crash stay comparable); each replica then
    /// restores its newest valid durable snapshot, re-subscribes its
    /// `k` worker streams at the snapshot's cut, and replays the WAL
    /// suffix through the ordinary worker loop until it has re-executed
    /// everything the dead deployment ever ordered. A replica with no
    /// snapshot at all replays the entire log from scratch
    /// ([`RecoverySource::WalOnly`](super::RecoverySource::WalOnly)).
    ///
    /// Returns the running engine plus one [`RecoveryReport`] per
    /// replica.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::CutTrimmed`] when a replica's snapshots exist
    /// but the logs no longer cover any of their cuts;
    /// [`RecoveryError::LogTrimmed`] when a replica has no snapshot and
    /// the logs do not reach back to the stream's beginning; plus
    /// whatever snapshot decoding surfaces. On error everything spawned
    /// so far is shut down before returning.
    pub fn cold_start<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        Self::cold_start_with_runtime(cfg, map, factory, Runtime::real())
    }

    /// [`PsmrEngine::cold_start`] with an injected [`Runtime`] (see
    /// [`PsmrEngine::spawn_with_runtime`]).
    pub fn cold_start_with_runtime<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
        rt: Runtime,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        Self::cold_start_with_router(cfg, Router::Fixed(map), factory, rt)
    }

    /// [`PsmrEngine::cold_start`] of a deployment spawned with
    /// [`PsmrEngine::spawn_recoverable_remappable`]: each replica
    /// re-installs the remap overlay table persisted with its snapshot
    /// before replaying the log suffix, so pins taken before the
    /// checkpoint route exactly as they did live.
    pub fn cold_start_remappable<S: RecoverableService>(
        cfg: &SystemConfig,
        map: RemappableMap,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        Self::cold_start_with_router(cfg, Router::Remappable(map), factory, Runtime::real())
    }

    fn cold_start_with_router<S: RecoverableService>(
        cfg: &SystemConfig,
        map: Router,
        factory: impl Fn() -> S + Send + Sync + 'static,
        rt: Runtime,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        let mut engine = Self::scaffold(cfg, map, rt);
        // Replayed commands re-respond to the client ids of the dead
        // incarnation; fresh clients must not collide with them or a
        // replayed response answers a new request. Stream positions are
        // monotonic across incarnations, so the furthest one stamps a
        // disjoint client-id range per cold start. The *maximum* over
        // all groups matters: a crash can land after a per-worker group
        // appended its round but before g_all appended its own, and a
        // g_all-only stamp would then repeat.
        let stamp = (0..cfg.group_count())
            .map(|g| engine.system.next_seq(GroupId::new(g)))
            .max()
            .unwrap_or(1);
        engine.next_client = AtomicU64::new(stamp << 32);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let epoch_router = engine.sink.router.clone();
        let mut recovery = EngineRecovery::build(
            cfg,
            Arc::clone(&dyn_factory),
            Arc::new(move || epoch_router.epoch_table()),
        );
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        let mut reports = Vec::new();
        let mut failure = None;
        let table_router = engine.sink.router.clone();
        for replica in 0..cfg.n_replicas {
            let recovered = {
                let system = &engine.system;
                recovery.cold_start(
                    replica,
                    cfg.all_group(),
                    // Pins persisted with the snapshot predate the replayed
                    // log suffix: re-install them before subscribing or
                    // remapped commands re-route to their old group.
                    &|table| table_router.install_fetched(table),
                    |cut| {
                        (0..cfg.mpl)
                            .map(|i| system.worker_stream_at(WorkerId::new(i), cut))
                            .collect::<Result<Vec<_>, _>>()
                    },
                    || {
                        (0..cfg.mpl)
                            .map(|i| system.worker_stream_from_start(WorkerId::new(i)))
                            .collect::<Result<Vec<_>, _>>()
                    },
                )
            };
            let (service, streams, report) = match recovered {
                Ok(recovered) => recovered,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let hook = recovery.hook_for(
                replica,
                &service,
                Some(engine.sink.handle.clone()),
                report.checkpoint_id,
            );
            let slot = engine.spawn_replica_at(
                cfg.mpl,
                cfg.all_group(),
                replica,
                streams,
                service.clone(),
                Some(service),
                Some(hook),
            );
            engine.replicas.push(slot);
            reports.push(report);
        }
        if let Some(e) = failure {
            engine.recovery = Some(recovery);
            engine.shutdown();
            return Err(e);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        global().counter(counters::COLD_STARTS).inc();
        Ok((engine, reports))
    }

    /// Builds the multicast substrate and client-side plumbing; replicas
    /// attach afterwards.
    fn scaffold(cfg: &SystemConfig, map: Router, rt: Runtime) -> Self {
        let system = MulticastSystem::spawn_with_runtime(cfg, rt);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let gate = ResponseGate::for_view(
            Arc::clone(&router),
            system.durability(),
            Arc::clone(&system.runtime().clock),
        );
        let sink = Arc::new(CgSink {
            handle: system.handle(),
            router: map,
            mpl: cfg.mpl,
        });
        Self {
            system,
            router,
            gate,
            sink,
            boards: Vec::new(),
            replicas: Vec::new(),
            recovery: None,
            next_client: AtomicU64::new(0),
        }
    }

    /// Spawns the `k` worker threads of one replica over fresh
    /// subscriptions (initial spawn). Restart uses
    /// [`PsmrEngine::spawn_replica_at`] with resumed streams instead.
    fn spawn_replica<S: Service + Clone>(
        &mut self,
        cfg: &SystemConfig,
        replica: usize,
        service: S,
        dyn_service: Option<Arc<dyn RecoverableService>>,
        hook: Option<CheckpointHook>,
    ) -> ReplicaSlot {
        let streams = (0..cfg.mpl)
            .map(|i| self.system.worker_stream(WorkerId::new(i)))
            .collect();
        self.spawn_replica_at(
            cfg.mpl,
            cfg.all_group(),
            replica,
            streams,
            service,
            dyn_service,
            hook,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_replica_at<S: Service + Clone>(
        &mut self,
        mpl: usize,
        all_group: GroupId,
        replica: usize,
        streams: Vec<MergedStream>,
        service: S,
        dyn_service: Option<Arc<dyn RecoverableService>>,
        hook: Option<CheckpointHook>,
    ) -> ReplicaSlot {
        let (board, endpoints) = SignalBoard::new(mpl);
        let kill = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(mpl);
        for ((i, endpoint), stream) in endpoints.into_iter().enumerate().zip(streams) {
            let ctx = WorkerCtx {
                me: WorkerId::new(i),
                service: service.clone(),
                board: board.clone(),
                endpoint,
                map: self.sink.router.clone(),
                gate: Arc::clone(&self.gate),
                mpl,
                all_group,
                kill: Arc::clone(&kill),
                hook: hook.clone(),
                executed: global()
                    .scoped("replica", replica as u64)
                    .and("worker", i as u64)
                    .counter(counters::COMMANDS_EXECUTED),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("psmr-r{replica}-t{i}"))
                    .spawn(move || worker_main(ctx, stream))
                    .expect("spawn P-SMR worker"),
            );
        }
        self.boards.push(board);
        ReplicaSlot {
            threads,
            kill,
            service: dyn_service,
            crashed: false,
        }
    }

    /// Crash-stops one replica mid-run: its worker threads exit, its
    /// service state is discarded, and the rest of the deployment keeps
    /// serving. Idempotent for an already-crashed replica.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::UnknownReplica`] for an out-of-range id.
    pub fn crash_replica(&mut self, replica: ReplicaId) -> Result<(), RecoveryError> {
        let idx = replica.as_raw();
        let board = self
            .boards
            .get(idx)
            .cloned()
            .ok_or(RecoveryError::UnknownReplica { replica: idx })?;
        let slot = self
            .replicas
            .get_mut(idx)
            .ok_or(RecoveryError::UnknownReplica { replica: idx })?;
        slot.crash(|| board.shutdown());
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.on_crash(idx);
        }
        Ok(())
    }

    /// Crash-stops **every replica at once** — the whole-deployment
    /// power failure. The state-transfer fabric goes dark with them
    /// (`LiveNet::crash_all`), so nothing is left to answer a fetch:
    /// the only way back is [`PsmrEngine::cold_start`] over the same
    /// `wal_dir`/`snapshot_dir` after shutting this instance down.
    pub fn crash_all_replicas(&mut self) {
        for idx in 0..self.replicas.len() {
            let _ = self.crash_replica(ReplicaId::new(idx));
        }
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.crash_everything();
        }
    }

    /// Restarts a crashed replica the way a redeployed process would:
    /// recover the newest usable checkpoint **disk-first with peer
    /// fallback** (own durable snapshot while the retained logs still
    /// cover its cut, digest-verified chunked state transfer from a live
    /// peer otherwise), adopt the remap epoch the transfer handshake
    /// carried, re-subscribe the `k` worker streams at the checkpoint's
    /// cut, and replay the retained ordered-log suffix until the replica
    /// converges with the live ones. Returns a [`RecoveryReport`] naming
    /// the path taken.
    ///
    /// # Errors
    ///
    /// Requires a recoverable deployment, a previously crashed replica, a
    /// recovery point (disk snapshot or live peer with a checkpoint), and
    /// retained logs covering its cut ([`RecoveryError::CutTrimmed`] when
    /// concurrent checkpoints trim every candidate cut mid-restart).
    pub fn restart_replica(&mut self, replica: ReplicaId) -> Result<RecoveryReport, RecoveryError> {
        let idx = replica.as_raw();
        if idx >= self.replicas.len() {
            return Err(RecoveryError::UnknownReplica { replica: idx });
        }
        if !self.replicas[idx].crashed {
            return Err(RecoveryError::NotCrashed);
        }
        if self.recovery.is_none() {
            return Err(RecoveryError::NotRecoverable);
        }
        let live_peers: Vec<usize> = (0..self.replicas.len())
            .filter(|&p| p != idx && !self.replicas[p].crashed)
            .collect();
        let mpl = self.system.config().mpl;
        let all_group = self.system.config().all_group();
        let system = &self.system;
        let router = self.sink.router.clone();
        let recovery = self.recovery.as_mut().expect("checked above");
        let (service, streams, report) = recovery.recover(
            idx,
            &live_peers,
            &|table| router.install_fetched(table),
            |cut| {
                (0..mpl)
                    .map(|i| system.worker_stream_at(WorkerId::new(i), cut))
                    .collect::<Result<Vec<_>, _>>()
            },
        )?;
        let hook = recovery.hook_for(
            idx,
            &service,
            Some(self.sink.handle.clone()),
            report.checkpoint_id,
        );
        let slot = self.spawn_replica_at(
            mpl,
            all_group,
            idx,
            streams,
            service.clone(),
            Some(service),
            Some(hook),
        );
        // The replacement board was pushed at the end; move it into the
        // replica's slot so a later crash shuts down the right workers.
        let board = self.boards.pop().expect("spawn_replica_at pushed a board");
        self.boards[idx] = board;
        self.replicas[idx] = slot;
        global().counter(counters::REPLICA_RESTARTS).inc();
        Ok(report)
    }

    /// The checkpoint store of one live replica (recoverable deployments
    /// only): every replica installs the same checkpoints, so any live
    /// store answers "what is the deployment's newest recovery point".
    pub fn checkpoint_store(&self) -> Option<Arc<CheckpointStore>> {
        let recovery = self.recovery.as_ref()?;
        self.replicas
            .iter()
            .position(|slot| !slot.crashed)
            .map(|idx| Arc::clone(&recovery.replicas[idx].store))
    }

    /// The live service instance of one replica (recoverable deployments;
    /// `None` for crashed replicas). Lets tests compare replica states
    /// through deterministic snapshots.
    pub fn replica_service(&self, replica: ReplicaId) -> Option<Arc<dyn RecoverableService>> {
        self.replicas.get(replica.as_raw())?.service.clone()
    }

    /// Whether the replica is currently crashed.
    pub fn is_crashed(&self, replica: ReplicaId) -> bool {
        self.replicas
            .get(replica.as_raw())
            .is_some_and(|slot| slot.crashed)
    }

    /// Crash-stops one acceptor of one Paxos group through the group's
    /// [`psmr_netsim::live::LiveNet`] — engine-level fault injection.
    pub fn crash_acceptor(&self, group: GroupId, acceptor: usize) {
        self.system.crash_acceptor(group, acceptor);
    }

    /// Fault injection for pipelined deployments: freezes (or thaws)
    /// every group's WAL sync thread. While held, fsyncs never land, the
    /// durability watermarks stop, and the response gate holds every new
    /// acknowledgment — the window a crash-between-fan-out-and-fsync
    /// test needs to keep open. No-op without `cfg.wal_pipeline`.
    pub fn hold_wal_sync(&self, hold: bool) {
        self.system.hold_wal_sync(hold);
    }

    /// Shuts the deployment down **through a power failure**: every
    /// group stops and each WAL's un-fsynced suffix is discarded
    /// (`psmr_wal::Wal::discard_unsynced`), modeling power loss with
    /// the group-commit windows open. Returns the total records
    /// discarded. Recover with [`PsmrEngine::cold_start`] over the same
    /// directories.
    pub fn shutdown_power_fail(mut self) -> u64 {
        if let Some(recovery) = self.recovery.take() {
            recovery.stop();
        }
        let dropped = self.system.shutdown_power_fail();
        for (slot, board) in self.replicas.iter_mut().zip(&self.boards) {
            slot.stop(|| board.shutdown());
        }
        self.gate.stop();
        dropped
    }

    /// Severs the state-transfer link `from → to` after `budget` more
    /// messages — engine-level fault injection modeling a serving peer
    /// that dies mid-transfer (the fetcher times out and falls back to
    /// its next peer). No-op on non-recoverable deployments.
    pub fn sever_transfer_link(&self, from: ReplicaId, to: ReplicaId, budget: u64) {
        if let Some(recovery) = &self.recovery {
            recovery.sever_transfer_link(from.as_raw(), to.as_raw(), budget);
        }
    }

    /// Decided batches currently retained by `group` for catch-up.
    pub fn retained_len(&self, group: GroupId) -> usize {
        self.system.retained_len(group)
    }
}

impl Engine for PsmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "P-SMR"
    }

    fn shutdown(mut self) {
        if let Some(recovery) = self.recovery.take() {
            recovery.stop();
        }
        self.system.shutdown();
        for (slot, board) in self.replicas.iter_mut().zip(&self.boards) {
            slot.stop(|| board.shutdown());
        }
        self.gate.stop();
    }
}

struct WorkerCtx<S> {
    me: WorkerId,
    service: S,
    board: SignalBoard,
    endpoint: SignalEndpoint,
    map: Router,
    gate: Arc<ResponseGate>,
    mpl: usize,
    all_group: GroupId,
    kill: Arc<AtomicBool>,
    hook: Option<CheckpointHook>,
    /// Per-replica/per-worker executed-command counter, resolved once at
    /// spawn so the hot path never formats a label.
    executed: ScopedCounter,
}

/// The body of worker thread `t_i` — Algorithm 1, lines 7–26, plus the
/// checkpoint path of the recovery subsystem.
fn worker_main<S: Service>(mut ctx: WorkerCtx<S>, mut stream: MergedStream) {
    let my_group = GroupId::from(ctx.me);
    loop {
        if ctx.kill.load(Ordering::Relaxed) {
            return;
        }
        let delivered = match stream.next_timeout(CRASH_POLL) {
            Ok(Some(delivered)) => delivered,
            Ok(None) => continue, // idle poll: re-check the crash flag
            Err(_) => return,     // system shut down
        };
        trace::global().stamp(
            delivered.group.as_raw(),
            delivered.batch_seq,
            Stage::Delivered,
        );
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request on stream {}", delivered.group);
            continue;
        };
        if delivered.group != ctx.all_group {
            // Parallel mode (lines 10–13): multicast to a single group.
            // The response releases once the batch is durable (gated
            // deployments) — execution itself never waits.
            trace::global().stamp(
                delivered.group.as_raw(),
                delivered.batch_seq,
                Stage::ExecStart,
            );
            let resp = ctx.service.execute(req.command, &req.payload);
            ctx.executed.inc();
            trace::global().stamp(
                delivered.group.as_raw(),
                delivered.batch_seq,
                Stage::Executed,
            );
            ctx.gate.respond_at(
                delivered.group,
                delivered.batch_seq,
                req.client,
                Response::new(req.request, resp),
            );
            continue;
        }
        // Synchronous mode (lines 14–26): re-derive γ like the server proxy
        // (line 9) and synchronize the involved workers.
        let dests = ctx
            .map
            .destinations_at(req.command, &req.payload, ctx.mpl, delivered.group);
        if !dests.contains(my_group) {
            // Multicast to a strict subset not containing t_i: skip. (With
            // the paper's C-G functions γ is all groups here, so every
            // worker participates.)
            continue;
        }
        let executor = dests.executor().worker();
        if ctx.me == executor {
            let others: Vec<WorkerId> = dests
                .groups()
                .iter()
                .filter(|g| **g != my_group)
                .map(|g| g.worker())
                .collect();
            if !ctx.endpoint.wait_ready_from_all(&others) {
                return; // shutdown or crash
            }
            // Control commands act on the replica instead of the service:
            // CHECKPOINT snapshots the quiesced state at this exact cut,
            // REMAP reconfigures the routing tables. Everything else
            // executes normally.
            trace::global().stamp(
                delivered.group.as_raw(),
                delivered.batch_seq,
                Stage::ExecStart,
            );
            let resp = if req.command == CHECKPOINT {
                match &ctx.hook {
                    Some(hook) => hook.execute(&delivered),
                    // Non-recoverable deployment: acknowledge with an
                    // empty id so clients are not wedged.
                    None => Vec::new(),
                }
            } else {
                match ctx.map.try_install(req.command, &req.payload) {
                    Some(resp) => resp,
                    None => {
                        let resp = ctx.service.execute(req.command, &req.payload);
                        ctx.executed.inc();
                        resp
                    }
                }
            };
            trace::global().stamp(
                delivered.group.as_raw(),
                delivered.batch_seq,
                Stage::Executed,
            );
            ctx.gate.respond_at(
                delivered.group,
                delivered.batch_seq,
                req.client,
                Response::new(req.request, resp),
            );
            for other in others {
                ctx.board.signal(ctx.me, other, SignalKind::Resume);
            }
        } else {
            ctx.board.signal(ctx.me, executor, SignalKind::Ready);
            if !ctx.endpoint.wait_for(executor, SignalKind::Resume) {
                return; // shutdown or crash
            }
        }
    }
}
