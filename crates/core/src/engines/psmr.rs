//! The P-SMR engine (paper §IV, Algorithm 1).
//!
//! Each of the `n` replicas runs `k = MPL` worker threads. Worker `t_i`
//! consumes the deterministic merge of multicast groups `g_i` and `g_all`:
//!
//! * a command delivered on `g_i` was multicast to a single group —
//!   **parallel mode**: execute and respond immediately (lines 10–13);
//! * a command delivered on `g_all` was multicast to several groups —
//!   **synchronous mode**: the involved workers synchronize with signals
//!   and the deterministically elected executor `e = min{j : g_j ∈ γ}` runs
//!   the command alone (lines 14–26).
//!
//! No component sequences all commands: delivery, scheduling and execution
//! are all per-worker, which is what lets throughput scale with cores
//! (Figure 5 of the paper).

use super::sync::{SignalBoard, SignalEndpoint, SignalKind};
use super::{CgSink, Engine, Router};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::remap::RemappableMap;
use crate::service::{ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, GroupId, WorkerId};
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running P-SMR deployment.
///
/// See the [crate-level quickstart](crate) for an end-to-end example.
pub struct PsmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    sink: Arc<CgSink>,
    boards: Vec<SignalBoard>,
    threads: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
}

impl PsmrEngine {
    /// Spawns `cfg.n_replicas` replicas with `cfg.mpl` worker threads each,
    /// every replica initialized with `factory()`.
    ///
    /// `factory` must produce identical initial states — replica
    /// determinism starts from equal initial states (§III).
    pub fn spawn<S: Service>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S,
    ) -> Self {
        Self::spawn_with_router(cfg, Router::Fixed(map), factory)
    }

    /// Like [`PsmrEngine::spawn`] with an online-reconfigurable C-G: remap
    /// tables submitted as [`crate::remap::REMAP`] commands install at a
    /// deterministic point of the serialized stream on every replica
    /// (§IV-D's future-work extension).
    pub fn spawn_remappable<S: Service>(
        cfg: &SystemConfig,
        map: RemappableMap,
        factory: impl Fn() -> S,
    ) -> Self {
        Self::spawn_with_router(cfg, Router::Remappable(map), factory)
    }

    fn spawn_with_router<S: Service>(
        cfg: &SystemConfig,
        map: Router,
        factory: impl Fn() -> S,
    ) -> Self {
        let system = MulticastSystem::spawn(cfg);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let mut threads = Vec::new();
        let mut boards = Vec::new();
        for replica in 0..cfg.n_replicas {
            let service = Arc::new(factory());
            let (board, endpoints) = SignalBoard::new(cfg.mpl);
            boards.push(board.clone());
            for (i, endpoint) in endpoints.into_iter().enumerate() {
                let worker = WorkerId::new(i);
                let stream = system.worker_stream(worker);
                let ctx = WorkerCtx {
                    me: worker,
                    service: Arc::clone(&service),
                    board: board.clone(),
                    endpoint,
                    map: map.clone(),
                    router: Arc::clone(&router),
                    mpl: cfg.mpl,
                    all_group: cfg.all_group(),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("psmr-r{replica}-t{i}"))
                        .spawn(move || worker_main(ctx, stream))
                        .expect("spawn P-SMR worker"),
                );
            }
        }
        let sink =
            Arc::new(CgSink { handle: system.handle(), router: map, mpl: cfg.mpl });
        system.start();
        Self { system, router, sink, boards, threads, next_client: AtomicU64::new(0) }
    }
}

impl Engine for PsmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "P-SMR"
    }

    fn shutdown(mut self) {
        self.system.shutdown();
        for board in &self.boards {
            board.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct WorkerCtx<S> {
    me: WorkerId,
    service: Arc<S>,
    board: SignalBoard,
    endpoint: SignalEndpoint,
    map: Router,
    router: SharedRouter,
    mpl: usize,
    all_group: GroupId,
}

/// The body of worker thread `t_i` — Algorithm 1, lines 7–26.
fn worker_main<S: Service>(mut ctx: WorkerCtx<S>, mut stream: MergedStream) {
    let my_group = GroupId::from(ctx.me);
    while let Some(delivered) = stream.next() {
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request on stream {}", delivered.group);
            continue;
        };
        if delivered.group != ctx.all_group {
            // Parallel mode (lines 10–13): multicast to a single group.
            let resp = ctx.service.execute(req.command, &req.payload);
            ctx.router.respond(req.client, Response::new(req.request, resp));
            continue;
        }
        // Synchronous mode (lines 14–26): re-derive γ like the server proxy
        // (line 9) and synchronize the involved workers.
        let dests = ctx.map.destinations_at(
            req.command,
            &req.payload,
            ctx.mpl,
            delivered.group,
        );
        if !dests.contains(my_group) {
            // Multicast to a strict subset not containing t_i: skip. (With
            // the paper's C-G functions γ is all groups here, so every
            // worker participates.)
            continue;
        }
        let executor = dests.executor().worker();
        if ctx.me == executor {
            let others: Vec<WorkerId> = dests
                .groups()
                .iter()
                .filter(|g| **g != my_group)
                .map(|g| g.worker())
                .collect();
            if !ctx.endpoint.wait_ready_from_all(&others) {
                return; // shutdown
            }
            // Remap commands reconfigure the routing tables instead of
            // invoking the service; everything else executes normally.
            let resp = match ctx.map.try_install(req.command, &req.payload) {
                Some(resp) => resp,
                None => ctx.service.execute(req.command, &req.payload),
            };
            ctx.router.respond(req.client, Response::new(req.request, resp));
            for other in others {
                ctx.board.signal(ctx.me, other, SignalKind::Resume);
            }
        } else {
            ctx.board.signal(ctx.me, executor, SignalKind::Ready);
            if !ctx.endpoint.wait_for(executor, SignalKind::Resume) {
                return; // shutdown
            }
        }
    }
}
