//! Classical state-machine replication (paper §III).
//!
//! One totally ordered stream; each replica executes every command
//! sequentially in delivery order with a single thread. No C-Dep is needed:
//! sequential execution trivially serializes everything.
//!
//! Checkpointing degenerates pleasantly here: the single executor *is*
//! the consistent cut, so a delivered [`psmr_recovery::CHECKPOINT`]
//! simply snapshots between two commands. Crash/restart mirrors the
//! P-SMR engine: [`SmrEngine::crash_replica`] stops a replica's executor
//! and [`SmrEngine::restart_replica`] replays `(snapshot, log suffix)`.

use super::holdback::ResponseGate;
use super::recover::{
    auto_checkpointer, CheckpointHook, EngineRecovery, RecoveryReport, ReplicaSlot, CRASH_POLL,
};
use super::{Engine, TotalOrderSink};
use crate::client::ClientProxy;
use crate::service::{RecoverableService, ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, GroupId, ReplicaId};
use psmr_common::metrics::{counters, global};
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use psmr_recovery::{CheckpointStore, RecoveryError, CHECKPOINT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running SMR deployment.
///
/// # Example
///
/// ```
/// use psmr_core::engines::{Engine, SmrEngine};
/// use psmr_core::service::Service;
/// use psmr_common::{ids::CommandId, SystemConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// #[derive(Default)]
/// struct Counter(AtomicU64);
/// impl Service for Counter {
///     fn execute(&self, _c: CommandId, _p: &[u8]) -> Vec<u8> {
///         (self.0.fetch_add(1, Ordering::SeqCst) + 1).to_le_bytes().to_vec()
///     }
/// }
///
/// let engine = SmrEngine::spawn(&SystemConfig::new(1), Counter::default);
/// let mut client = engine.client();
/// let resp = client.execute(CommandId::new(0), Vec::new());
/// assert_eq!(u64::from_le_bytes(resp[..].try_into().unwrap()), 1);
/// engine.shutdown();
/// ```
pub struct SmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    gate: Arc<ResponseGate>,
    sink: Arc<TotalOrderSink>,
    replicas: Vec<ReplicaSlot>,
    recovery: Option<EngineRecovery>,
    next_client: AtomicU64,
}

impl SmrEngine {
    /// Spawns `cfg.n_replicas` single-threaded replicas (the configured
    /// MPL is ignored: SMR executes sequentially by definition).
    pub fn spawn<S: Service>(cfg: &SystemConfig, factory: impl Fn() -> S) -> Self {
        let mut engine = Self::scaffold(cfg);
        for replica in 0..cfg.n_replicas {
            let service = Arc::new(factory());
            let stream = engine.system.single_stream();
            let slot = engine.spawn_replica(replica, stream, service, None, None);
            engine.replicas.push(slot);
        }
        engine.system.start();
        engine
    }

    /// Like [`SmrEngine::spawn`] with checkpoint/crash/restart support
    /// (see [`super::PsmrEngine::spawn_recoverable`] — same contract).
    pub fn spawn_recoverable<S: RecoverableService>(
        cfg: &SystemConfig,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Self {
        let mut engine = Self::scaffold(cfg);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let mut recovery =
            EngineRecovery::build(cfg, Arc::clone(&dyn_factory), super::recover::fixed_epoch());
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        for replica in 0..cfg.n_replicas {
            let service = (dyn_factory)();
            let hook = recovery.hook_for(replica, &service, Some(engine.sink.handle.clone()), 0);
            let stream = engine.system.single_stream();
            let slot =
                engine.spawn_replica(replica, stream, service.clone(), Some(service), Some(hook));
            engine.replicas.push(slot);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        engine
    }

    /// Cold-starts a whole SMR deployment from disk with no live peer
    /// (see [`super::PsmrEngine::cold_start`] — same contract over the
    /// single totally ordered stream).
    ///
    /// # Errors
    ///
    /// Same as [`super::PsmrEngine::cold_start`].
    pub fn cold_start<S: RecoverableService>(
        cfg: &SystemConfig,
        factory: impl Fn() -> S + Send + Sync + 'static,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoveryError> {
        let mut engine = Self::scaffold(cfg);
        // Fresh clients must not collide with the client ids inside
        // replayed commands (see `PsmrEngine::cold_start`).
        engine.next_client = AtomicU64::new(engine.system.next_seq(GroupId::new(0)) << 32);
        let dyn_factory: Arc<dyn Fn() -> Arc<dyn RecoverableService> + Send + Sync> =
            Arc::new(move || Arc::new(factory()) as Arc<dyn RecoverableService>);
        let mut recovery =
            EngineRecovery::build(cfg, Arc::clone(&dyn_factory), super::recover::fixed_epoch());
        recovery.set_clock(Arc::clone(&engine.system.runtime().clock));
        let mut reports = Vec::new();
        let mut failure = None;
        for replica in 0..cfg.n_replicas {
            let recovered = {
                let system = &engine.system;
                // Single-stream SMR has no remap router; the persisted
                // overlay table (always empty here) has nowhere to go.
                recovery.cold_start(
                    replica,
                    GroupId::new(0),
                    &|_| {},
                    |cut| system.single_stream_at(cut),
                    || system.single_stream_from_start(),
                )
            };
            let (service, stream, report) = match recovered {
                Ok(recovered) => recovered,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let hook = recovery.hook_for(
                replica,
                &service,
                Some(engine.sink.handle.clone()),
                report.checkpoint_id,
            );
            let slot =
                engine.spawn_replica(replica, stream, service.clone(), Some(service), Some(hook));
            engine.replicas.push(slot);
            reports.push(report);
        }
        if let Some(e) = failure {
            engine.recovery = Some(recovery);
            engine.shutdown();
            return Err(e);
        }
        engine.system.start();
        recovery.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::clone(&engine.system.runtime().clock),
            )
        });
        engine.recovery = Some(recovery);
        global().counter(counters::COLD_STARTS).inc();
        Ok((engine, reports))
    }

    /// Crash-stops every replica at once (see
    /// [`super::PsmrEngine::crash_all_replicas`]); recover with
    /// [`SmrEngine::cold_start`] over the same directories.
    pub fn crash_all_replicas(&mut self) {
        for idx in 0..self.replicas.len() {
            let _ = self.crash_replica(ReplicaId::new(idx));
        }
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.crash_everything();
        }
    }

    fn scaffold(cfg: &SystemConfig) -> Self {
        let system = MulticastSystem::spawn_single(cfg);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let gate = ResponseGate::for_view(
            Arc::clone(&router),
            system.durability(),
            Arc::clone(&system.runtime().clock),
        );
        let sink = Arc::new(TotalOrderSink {
            handle: system.handle(),
        });
        Self {
            system,
            router,
            gate,
            sink,
            replicas: Vec::new(),
            recovery: None,
            next_client: AtomicU64::new(0),
        }
    }

    fn spawn_replica<S: Service>(
        &self,
        replica: usize,
        stream: MergedStream,
        service: S,
        dyn_service: Option<Arc<dyn RecoverableService>>,
        hook: Option<CheckpointHook>,
    ) -> ReplicaSlot {
        let kill = Arc::new(AtomicBool::new(false));
        let ctx = ExecutorCtx {
            service,
            gate: Arc::clone(&self.gate),
            kill: Arc::clone(&kill),
            hook,
        };
        let thread = std::thread::Builder::new()
            .name(format!("smr-r{replica}"))
            .spawn(move || executor_main(ctx, stream))
            .expect("spawn SMR executor");
        ReplicaSlot {
            threads: vec![thread],
            kill,
            service: dyn_service,
            crashed: false,
        }
    }

    /// Crash-stops one replica's executor mid-run (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::UnknownReplica`] for an out-of-range id.
    pub fn crash_replica(&mut self, replica: ReplicaId) -> Result<(), RecoveryError> {
        let idx = replica.as_raw();
        let slot = self
            .replicas
            .get_mut(idx)
            .ok_or(RecoveryError::UnknownReplica { replica: idx })?;
        slot.crash(|| {});
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.on_crash(idx);
        }
        Ok(())
    }

    /// Restarts a crashed replica disk-first with peer fallback (see
    /// [`super::PsmrEngine::restart_replica`] — same recovery path over
    /// the single totally ordered stream).
    ///
    /// # Errors
    ///
    /// Requires a recoverable deployment, a crashed replica, a recovery
    /// point (disk snapshot or live peer), and retained logs covering
    /// its cut.
    pub fn restart_replica(&mut self, replica: ReplicaId) -> Result<RecoveryReport, RecoveryError> {
        let idx = replica.as_raw();
        if idx >= self.replicas.len() {
            return Err(RecoveryError::UnknownReplica { replica: idx });
        }
        if !self.replicas[idx].crashed {
            return Err(RecoveryError::NotCrashed);
        }
        if self.recovery.is_none() {
            return Err(RecoveryError::NotRecoverable);
        }
        let live_peers: Vec<usize> = (0..self.replicas.len())
            .filter(|&p| p != idx && !self.replicas[p].crashed)
            .collect();
        let system = &self.system;
        let recovery = self.recovery.as_mut().expect("checked above");
        let (service, stream, report) = recovery.recover(
            idx,
            &live_peers,
            &|_table| {}, // SMR routes everything through one stream
            |cut| system.single_stream_at(cut),
        )?;
        let hook = recovery.hook_for(
            idx,
            &service,
            Some(self.sink.handle.clone()),
            report.checkpoint_id,
        );
        self.replicas[idx] =
            self.spawn_replica(idx, stream, service.clone(), Some(service), Some(hook));
        global().counter(counters::REPLICA_RESTARTS).inc();
        Ok(report)
    }

    /// The checkpoint store of one live replica (recoverable deployments
    /// only).
    pub fn checkpoint_store(&self) -> Option<Arc<CheckpointStore>> {
        let recovery = self.recovery.as_ref()?;
        self.replicas
            .iter()
            .position(|slot| !slot.crashed)
            .map(|idx| Arc::clone(&recovery.replicas[idx].store))
    }

    /// The live service instance of one replica (recoverable
    /// deployments; `None` for crashed replicas).
    pub fn replica_service(&self, replica: ReplicaId) -> Option<Arc<dyn RecoverableService>> {
        self.replicas.get(replica.as_raw())?.service.clone()
    }

    /// Crash-stops one acceptor of the ordering group through its live
    /// network (engine-level fault injection).
    pub fn crash_acceptor(&self, acceptor: usize) {
        self.system.crash_acceptor(GroupId::new(0), acceptor);
    }

    /// Decided batches currently retained by the ordering group.
    pub fn retained_len(&self) -> usize {
        self.system.retained_len(GroupId::new(0))
    }
}

impl Engine for SmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "SMR"
    }

    fn shutdown(mut self) {
        if let Some(recovery) = self.recovery.take() {
            recovery.stop();
        }
        self.system.shutdown();
        for slot in &mut self.replicas {
            slot.stop(|| {});
        }
        self.gate.stop();
    }
}

struct ExecutorCtx<S> {
    service: S,
    gate: Arc<ResponseGate>,
    kill: Arc<AtomicBool>,
    hook: Option<CheckpointHook>,
}

fn executor_main<S: Service>(ctx: ExecutorCtx<S>, mut stream: MergedStream) {
    loop {
        if ctx.kill.load(Ordering::Relaxed) {
            return;
        }
        let delivered = match stream.next_timeout(CRASH_POLL) {
            Ok(Some(delivered)) => delivered,
            Ok(None) => continue,
            Err(_) => return,
        };
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request");
            continue;
        };
        let resp = if req.command == CHECKPOINT {
            match &ctx.hook {
                Some(hook) => hook.execute(&delivered),
                None => Vec::new(),
            }
        } else {
            ctx.service.execute(req.command, &req.payload)
        };
        ctx.gate.respond_at(
            delivered.group,
            delivered.batch_seq,
            req.client,
            Response::new(req.request, resp),
        );
    }
}
