//! Classical state-machine replication (paper §III).
//!
//! One totally ordered stream; each replica executes every command
//! sequentially in delivery order with a single thread. No C-Dep is needed:
//! sequential execution trivially serializes everything.

use super::{Engine, TotalOrderSink};
use crate::client::ClientProxy;
use crate::service::{ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::ClientId;
use psmr_common::SystemConfig;
use psmr_multicast::{MergedStream, MulticastSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running SMR deployment.
///
/// # Example
///
/// ```
/// use psmr_core::engines::{Engine, SmrEngine};
/// use psmr_core::service::Service;
/// use psmr_common::{ids::CommandId, SystemConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// #[derive(Default)]
/// struct Counter(AtomicU64);
/// impl Service for Counter {
///     fn execute(&self, _c: CommandId, _p: &[u8]) -> Vec<u8> {
///         (self.0.fetch_add(1, Ordering::SeqCst) + 1).to_le_bytes().to_vec()
///     }
/// }
///
/// let engine = SmrEngine::spawn(&SystemConfig::new(1), Counter::default);
/// let mut client = engine.client();
/// let resp = client.execute(CommandId::new(0), Vec::new());
/// assert_eq!(u64::from_le_bytes(resp[..].try_into().unwrap()), 1);
/// engine.shutdown();
/// ```
pub struct SmrEngine {
    system: MulticastSystem,
    router: SharedRouter,
    sink: Arc<TotalOrderSink>,
    threads: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
}

impl SmrEngine {
    /// Spawns `cfg.n_replicas` single-threaded replicas (the configured
    /// MPL is ignored: SMR executes sequentially by definition).
    pub fn spawn<S: Service>(cfg: &SystemConfig, factory: impl Fn() -> S) -> Self {
        let system = MulticastSystem::spawn_single(cfg);
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let mut threads = Vec::new();
        for replica in 0..cfg.n_replicas {
            let service = factory();
            let stream = system.single_stream();
            let router = Arc::clone(&router);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("smr-r{replica}"))
                    .spawn(move || executor_main(service, stream, router))
                    .expect("spawn SMR executor"),
            );
        }
        let sink = Arc::new(TotalOrderSink { handle: system.handle() });
        system.start();
        Self { system, router, sink, threads, next_client: AtomicU64::new(0) }
    }
}

impl Engine for SmrEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "SMR"
    }

    fn shutdown(mut self) {
        self.system.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn executor_main<S: Service>(service: S, mut stream: MergedStream, router: SharedRouter) {
    while let Some(delivered) = stream.next() {
        let Ok(req) = Request::decode(&delivered.payload) else {
            debug_assert!(false, "malformed request");
            continue;
        };
        let resp = service.execute(req.command, &req.payload);
        router.respond(req.client, Response::new(req.request, resp));
    }
}
