//! The non-replicated scheduler/worker baseline (`no-rep`, §VI-B).
//!
//! A single multithreaded server directly connected to the clients: no
//! ordering protocol, no replicas. A scheduler thread receives requests
//! from a channel (arrival order is the total order) and dispatches them to
//! worker threads under the same deterministic policy as sP-SMR. Comparing
//! no-rep with sP-SMR isolates the cost of atomic multicast; comparing it
//! with P-SMR shows the scheduler bottleneck without any replication cost.
//!
//! The checkpoint subsystem covers this baseline too —
//! [`NoRepEngine::spawn_recoverable`] intercepts
//! [`psmr_recovery::CHECKPOINT`] requests, drains the worker stage and
//! snapshots the service — but with no ordered log and no peer replicas
//! there is nothing to replay: a crashed no-rep server loses the tail
//! past its last checkpoint, which is precisely the availability gap
//! replication closes. With `SystemConfig::snapshot_dir` set the server
//! persists those checkpoints durably and **cold-starts from its own
//! disk**: a fresh `spawn_recoverable` over the same directory restores
//! the newest valid snapshot before serving — the no-rep half of the
//! "fresh process recovers from its own disk" story (minus the log
//! replay and peer catch-up only replication can offer).

use super::holdback::ResponseGate;
use super::recover::{auto_checkpointer, fixed_epoch, CheckpointHook};
use super::scheduler::ExecStage;
use super::{ChannelSink, Engine};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::service::{RecoverableService, ResponseRouter, Service, SharedRouter};
use crossbeam::channel::bounded;
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, GroupId};
use psmr_common::SystemConfig;
use psmr_multicast::Delivered;
use psmr_recovery::{AutoCheckpointer, CheckpointStore, CHECKPOINT};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running no-rep deployment (always exactly one server).
pub struct NoRepEngine {
    router: SharedRouter,
    sink: Arc<ChannelSink>,
    thread: Option<JoinHandle<()>>,
    store: Option<Arc<CheckpointStore>>,
    checkpointer: Option<AutoCheckpointer>,
    next_client: AtomicU64,
}

impl NoRepEngine {
    /// Spawns the server with `cfg.mpl` workers plus a scheduler.
    pub fn spawn<S: Service>(cfg: &SystemConfig, map: CommandMap, factory: impl Fn() -> S) -> Self {
        Self::spawn_inner(cfg, map, Arc::new(factory()), None, 0)
    }

    /// Like [`NoRepEngine::spawn`] with checkpoint support: CHECKPOINT
    /// requests snapshot the drained service into the returned
    /// [`CheckpointStore`] (see [`NoRepEngine::checkpoint_store`]).
    ///
    /// With `cfg.snapshot_dir` set, checkpoints also persist to
    /// `<snapshot_dir>/r0` and a fresh spawn over the same directory
    /// **cold-starts from the newest valid snapshot** before serving.
    ///
    /// # Panics
    ///
    /// Panics when the configured snapshot directory cannot be created
    /// or a found snapshot does not decode into the service — a server
    /// asked to be durable must not come up silently empty.
    pub fn spawn_recoverable<S: RecoverableService>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S,
    ) -> Self {
        let service: Arc<dyn RecoverableService> = Arc::new(factory());
        let store = Arc::new(CheckpointStore::new());
        let durable = cfg.snapshot_dir.as_ref().map(|dir| {
            Arc::new(
                psmr_recovery::DurableStore::open(dir.join("r0"))
                    .expect("create snapshot directory"),
            )
        });
        // Cold-start: a restarted process finds its own newest snapshot
        // on disk and resumes from it (everything past that checkpoint is
        // lost — the availability gap replication closes).
        let mut seed = 0;
        // The arrival counter stands in for a stream position when cuts
        // are tagged; resume it past the recovered cut so the next
        // checkpoint still reads as newer than the recovered one.
        let mut arrival_seed = 0;
        if let Some(loaded) = durable.as_ref().and_then(|d| d.load_latest()) {
            service
                .restore(&loaded.checkpoint.snapshot)
                .expect("disk snapshot passed crc but not the service codec");
            seed = loaded.checkpoint.id;
            arrival_seed = loaded.checkpoint.cut.seq;
            store.install(
                loaded.checkpoint.cut,
                loaded.checkpoint.id,
                loaded.checkpoint.snapshot,
            );
        }
        let hook = CheckpointHook::new(
            &service,
            Arc::clone(&store),
            durable,
            fixed_epoch(),
            None,
            seed,
        );
        let mut engine = Self::spawn_inner(
            cfg,
            map,
            service as Arc<dyn Service>,
            Some(hook),
            arrival_seed,
        );
        engine.store = Some(store);
        // Honor the config contract shared by every recoverable engine:
        // with `checkpoint_interval` set, checkpoints happen on their own.
        engine.checkpointer = cfg.checkpoint_interval.map(|interval| {
            auto_checkpointer(
                Arc::clone(&engine.sink) as _,
                interval,
                Arc::new(psmr_common::runtime::RealClock),
            )
        });
        engine
    }

    fn spawn_inner(
        cfg: &SystemConfig,
        map: CommandMap,
        service: Arc<dyn Service>,
        hook: Option<CheckpointHook>,
        arrival_seed: u64,
    ) -> Self {
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        // Mirror the multicast submit queue's bound so client backpressure
        // is comparable across engines.
        let (tx, rx) = bounded::<Request>(16 * 1024);
        // No ordered log, no durability gate: responses pass straight
        // through (the stage's bounded rings still bound memory).
        let stage = ExecStage::spawn(
            cfg.mpl,
            service,
            map,
            ResponseGate::passthrough(Arc::clone(&router)),
            cfg.exec_ring,
            "norep",
        );
        let sched_router = Arc::clone(&router);
        let thread = std::thread::Builder::new()
            .name("norep-sched".into())
            .spawn(move || {
                let mut stage = stage;
                // Arrival order is the total order; the counter stands in
                // for a stream position when tagging checkpoint cuts
                // (seeded past a cold-start's recovered cut).
                let mut arrival = arrival_seed;
                while let Ok(req) = rx.recv() {
                    arrival += 1;
                    if req.command == CHECKPOINT {
                        stage.drain();
                        let resp = match &hook {
                            Some(hook) => hook.execute(&Delivered {
                                group: GroupId::new(0),
                                batch_seq: arrival,
                                offset: 0,
                                payload: bytes::Bytes::new(),
                            }),
                            None => Vec::new(),
                        };
                        sched_router.respond(req.client, Response::new(req.request, resp));
                        continue;
                    }
                    stage.schedule(req, GroupId::new(0), arrival);
                }
                stage.shutdown();
            })
            .expect("spawn no-rep scheduler");
        Self {
            router,
            sink: Arc::new(ChannelSink::new(tx)),
            thread: Some(thread),
            store: None,
            checkpointer: None,
            next_client: AtomicU64::new(0),
        }
    }

    /// The checkpoint store of a recoverable deployment.
    pub fn checkpoint_store(&self) -> Option<Arc<CheckpointStore>> {
        self.store.clone()
    }
}

impl Engine for NoRepEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "no-rep"
    }

    fn shutdown(mut self) {
        if let Some(driver) = self.checkpointer.take() {
            driver.stop();
        }
        // Disconnect the input channel; the scheduler drains and exits.
        self.sink.close();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
