//! The non-replicated scheduler/worker baseline (`no-rep`, §VI-B).
//!
//! A single multithreaded server directly connected to the clients: no
//! ordering protocol, no replicas. A scheduler thread receives requests
//! from a channel (arrival order is the total order) and dispatches them to
//! worker threads under the same deterministic policy as sP-SMR. Comparing
//! no-rep with sP-SMR isolates the cost of atomic multicast; comparing it
//! with P-SMR shows the scheduler bottleneck without any replication cost.

use super::scheduler::ExecStage;
use super::{ChannelSink, Engine};
use crate::client::ClientProxy;
use crate::conflict::CommandMap;
use crate::service::{ResponseRouter, Service, SharedRouter};
use psmr_common::envelope::Request;
use psmr_common::ids::ClientId;
use psmr_common::SystemConfig;
use crossbeam::channel::bounded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running no-rep deployment (always exactly one server).
pub struct NoRepEngine {
    router: SharedRouter,
    sink: Arc<ChannelSink>,
    thread: Option<JoinHandle<()>>,
    next_client: AtomicU64,
}

impl NoRepEngine {
    /// Spawns the server with `cfg.mpl` workers plus a scheduler.
    pub fn spawn<S: Service>(
        cfg: &SystemConfig,
        map: CommandMap,
        factory: impl Fn() -> S,
    ) -> Self {
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        // Mirror the multicast submit queue's bound so client backpressure
        // is comparable across engines.
        let (tx, rx) = bounded::<Request>(16 * 1024);
        let service = Arc::new(factory());
        let stage = ExecStage::spawn(
            cfg.mpl,
            service,
            map,
            Arc::clone(&router),
            "norep",
        );
        let thread = std::thread::Builder::new()
            .name("norep-sched".into())
            .spawn(move || {
                let mut stage = stage;
                while let Ok(req) = rx.recv() {
                    stage.schedule(req);
                }
                stage.shutdown();
            })
            .expect("spawn no-rep scheduler");
        Self {
            router,
            sink: Arc::new(ChannelSink::new(tx)),
            thread: Some(thread),
            next_client: AtomicU64::new(0),
        }
    }
}

impl Engine for NoRepEngine {
    fn client(&self) -> ClientProxy {
        let id = ClientId::new(self.next_client.fetch_add(1, Ordering::Relaxed));
        ClientProxy::new(id, Arc::clone(&self.sink) as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "no-rep"
    }

    fn shutdown(mut self) {
        // Disconnect the input channel; the scheduler drains and exits.
        self.sink.close();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
