//! Worker-thread signalling for P-SMR's synchronous mode.
//!
//! Algorithm 1, lines 14–26: when a command is multicast to several groups,
//! the involved worker threads synchronize with signals — every non-executor
//! sends signal *(a)* to the deterministically elected executor and waits;
//! the executor collects all signals, executes, responds, and sends signal
//! *(b)* back so the others resume.
//!
//! Each worker owns one [`SignalEndpoint`] (a receiver plus a reorder
//! buffer) and can send to any peer through the shared [`SignalBoard`].
//! Signals are tagged with the sender and the signal kind; a worker waiting
//! for a specific `(sender, kind)` buffers anything else, which handles the
//! case where workers progress through different subsets of the shared
//! stream (a worker not involved in a command skips it and may signal for a
//! *later* command before the current one completes elsewhere).

use crossbeam::channel::{unbounded, Receiver, Sender};
use psmr_common::ids::WorkerId;
use std::collections::VecDeque;

/// Why a signal was sent (the paper's signals (a) and (b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Signal (a): "I reached the command; you may execute."
    Ready,
    /// Signal (b): "I executed the command; resume."
    Resume,
    /// The deployment is shutting down; abandon any wait.
    Shutdown,
}

/// A tagged signal between worker threads of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signal {
    /// The sending worker.
    pub from: WorkerId,
    /// Ready (a) or Resume (b).
    pub kind: SignalKind,
}

/// The sender half shared by all workers of a replica.
#[derive(Debug, Clone)]
pub struct SignalBoard {
    senders: Vec<Sender<Signal>>,
}

impl SignalBoard {
    /// Creates a board for `k` workers, returning it together with each
    /// worker's endpoint (index `i` belongs to worker `t_i`).
    pub fn new(k: usize) -> (Self, Vec<SignalEndpoint>) {
        let mut senders = Vec::with_capacity(k);
        let mut endpoints = Vec::with_capacity(k);
        for i in 0..k {
            let (tx, rx) = unbounded();
            senders.push(tx);
            endpoints.push(SignalEndpoint {
                me: WorkerId::new(i),
                rx,
                buffered: VecDeque::new(),
            });
        }
        (Self { senders }, endpoints)
    }

    /// Sends a signal to worker `to`. Signals to departed workers are
    /// dropped (shutdown path).
    pub fn signal(&self, from: WorkerId, to: WorkerId, kind: SignalKind) {
        let _ = self.senders[to.as_raw()].send(Signal { from, kind });
    }

    /// Wakes every worker with a [`SignalKind::Shutdown`] signal so that
    /// blocked waits return `false`. Workers hold board clones, so channel
    /// disconnection alone cannot unblock them.
    pub fn shutdown(&self) {
        for (i, tx) in self.senders.iter().enumerate() {
            let _ = tx.send(Signal {
                from: WorkerId::new(i),
                kind: SignalKind::Shutdown,
            });
        }
    }
}

/// The receiving half owned by one worker.
#[derive(Debug)]
pub struct SignalEndpoint {
    me: WorkerId,
    rx: Receiver<Signal>,
    /// Signals received while waiting for a different `(sender, kind)`.
    buffered: VecDeque<Signal>,
}

impl SignalEndpoint {
    /// The worker this endpoint belongs to.
    pub fn worker(&self) -> WorkerId {
        self.me
    }

    /// Blocks until a signal with the given sender and kind has been
    /// received, buffering every other signal.
    ///
    /// Returns `false` if the board shut down (all senders dropped).
    pub fn wait_for(&mut self, from: WorkerId, kind: SignalKind) -> bool {
        if let Some(pos) = self
            .buffered
            .iter()
            .position(|s| s.from == from && s.kind == kind)
        {
            self.buffered.remove(pos);
            return true;
        }
        loop {
            match self.rx.recv() {
                Ok(sig) if sig.kind == SignalKind::Shutdown => return false,
                Ok(sig) if sig.from == from && sig.kind == kind => return true,
                Ok(sig) => self.buffered.push_back(sig),
                Err(_) => return false,
            }
        }
    }

    /// Blocks until a `Ready` signal has been received from **each** worker
    /// in `senders` (the executor's barrier, lines 18–19).
    ///
    /// Returns `false` if the board shut down first.
    pub fn wait_ready_from_all(&mut self, senders: &[WorkerId]) -> bool {
        senders
            .iter()
            .all(|&from| self.wait_for(from, SignalKind::Ready))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn signal_and_wait_round_trip() {
        let (board, mut eps) = SignalBoard::new(2);
        board.signal(WorkerId::new(0), WorkerId::new(1), SignalKind::Ready);
        assert!(eps[1].wait_for(WorkerId::new(0), SignalKind::Ready));
    }

    #[test]
    fn out_of_order_signals_are_buffered_not_lost() {
        let (board, mut eps) = SignalBoard::new(3);
        // Worker 2's Ready arrives before worker 1's, but we wait for 1 first.
        board.signal(WorkerId::new(2), WorkerId::new(0), SignalKind::Ready);
        board.signal(WorkerId::new(1), WorkerId::new(0), SignalKind::Ready);
        assert!(eps[0].wait_for(WorkerId::new(1), SignalKind::Ready));
        assert!(eps[0].wait_for(WorkerId::new(2), SignalKind::Ready));
    }

    #[test]
    fn kind_mismatch_is_buffered() {
        let (board, mut eps) = SignalBoard::new(2);
        board.signal(WorkerId::new(0), WorkerId::new(1), SignalKind::Resume);
        board.signal(WorkerId::new(0), WorkerId::new(1), SignalKind::Ready);
        assert!(eps[1].wait_for(WorkerId::new(0), SignalKind::Ready));
        assert!(eps[1].wait_for(WorkerId::new(0), SignalKind::Resume));
    }

    #[test]
    fn wait_ready_from_all_collects_the_set() {
        let (board, mut eps) = SignalBoard::new(4);
        let mut e0 = eps.remove(0);
        let board2 = board.clone();
        let waiter = thread::spawn(move || {
            e0.wait_ready_from_all(&[WorkerId::new(1), WorkerId::new(2), WorkerId::new(3)])
        });
        thread::sleep(Duration::from_millis(5));
        for i in [3usize, 1, 2] {
            board2.signal(WorkerId::new(i), WorkerId::new(0), SignalKind::Ready);
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn disconnect_unblocks_waiters() {
        let (board, mut eps) = SignalBoard::new(2);
        let mut e1 = eps.remove(1);
        let waiter = thread::spawn(move || e1.wait_for(WorkerId::new(0), SignalKind::Ready));
        thread::sleep(Duration::from_millis(5));
        drop(board);
        drop(eps);
        assert!(
            !waiter.join().unwrap(),
            "wait_for returns false on disconnect"
        );
    }

    #[test]
    fn shutdown_signal_unblocks_waiters_despite_live_clones() {
        let (board, mut eps) = SignalBoard::new(2);
        let mut e1 = eps.remove(1);
        let waiter = thread::spawn(move || e1.wait_for(WorkerId::new(0), SignalKind::Ready));
        thread::sleep(Duration::from_millis(5));
        board.shutdown(); // board clone stays alive, signal must suffice
        assert!(
            !waiter.join().unwrap(),
            "wait_for returns false on shutdown"
        );
    }

    #[test]
    fn full_synchronous_mode_handshake() {
        // Simulates Algorithm 1's synchronous mode with 3 workers and
        // executor t_0, repeated for several commands.
        let (board, eps) = SignalBoard::new(3);
        let mut handles = Vec::new();
        for (i, mut ep) in eps.into_iter().enumerate() {
            let board = board.clone();
            handles.push(thread::spawn(move || {
                let me = WorkerId::new(i);
                let executor = WorkerId::new(0);
                let mut executed = 0u32;
                for _cmd in 0..100 {
                    if me == executor {
                        let others = [WorkerId::new(1), WorkerId::new(2)];
                        assert!(ep.wait_ready_from_all(&others));
                        executed += 1; // "execute the command"
                        for o in others {
                            board.signal(me, o, SignalKind::Resume);
                        }
                    } else {
                        board.signal(me, executor, SignalKind::Ready);
                        assert!(ep.wait_for(executor, SignalKind::Resume));
                    }
                }
                executed
            }));
        }
        let executed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(executed, 100, "exactly one executor per command");
    }
}
