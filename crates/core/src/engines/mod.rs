//! Replication engines: P-SMR and the baselines it is evaluated against.
//!
//! | Engine | Delivery | Execution | Paper section |
//! |--------|----------|-----------|---------------|
//! | [`PsmrEngine`] | parallel (k merged streams) | parallel (k workers) | §IV |
//! | [`SpSmrEngine`] | sequential (1 stream) | parallel (scheduler + k workers) | §III, ref. 4 |
//! | [`SmrEngine`] | sequential | sequential | §III |
//! | [`NoRepEngine`] | none (direct channel) | parallel (scheduler + k workers) | §VI-B |
//!
//! (Table I of the paper.) The lock-based `BDB` baseline has no ordering
//! layer at all and lives with the key-value store in `psmr-kvstore`.

pub(crate) mod holdback;
pub mod norep;
pub mod psmr;
pub(crate) mod recover;
pub(crate) mod scheduler;
pub mod smr;
pub mod spsmr;
pub mod sync;

pub use norep::NoRepEngine;
pub use psmr::PsmrEngine;
pub use recover::{RecoveryReport, RecoverySource};
pub use smr::SmrEngine;
pub use spsmr::SpSmrEngine;

use crate::client::{ClientProxy, RequestSink};
use crate::conflict::{CommandClass, CommandMap};
use crate::remap::{RemapTable, RemappableMap, REMAP};
use bytes::Bytes;
use crossbeam::channel::Sender;
use psmr_common::envelope::Request;
use psmr_common::ids::GroupId;
use psmr_multicast::{Destinations, MulticastHandle};

/// A running replicated (or baseline) deployment that clients can connect
/// to.
pub trait Engine {
    /// Connects a new client and returns its proxy.
    fn client(&self) -> ClientProxy;

    /// Short technique label used by the evaluation output (`P-SMR`,
    /// `sP-SMR`, `SMR`, `no-rep`).
    fn label(&self) -> &'static str;

    /// Stops all threads of the deployment and joins them.
    fn shutdown(self);
}

/// The C-G function an engine routes with: either a fixed compiled
/// [`CommandMap`] or an online-reconfigurable [`RemappableMap`]
/// (the §IV-D future-work extension).
#[derive(Debug, Clone)]
pub enum Router {
    /// The paper's prototype: C-G computed offline, fixed for the run.
    Fixed(CommandMap),
    /// C-G with a runtime key→group overlay, updated through [`REMAP`]
    /// commands on the serialized group.
    Remappable(RemappableMap),
}

impl Router {
    /// The class of a command (see [`CommandMap::class`]).
    ///
    /// The reserved [`psmr_recovery::CHECKPOINT`] control command is
    /// `Global` under every router: it must travel on the serialized
    /// group so all workers quiesce at the same consistent cut.
    pub fn class(&self, cmd: psmr_common::ids::CommandId) -> CommandClass {
        if cmd == psmr_recovery::CHECKPOINT {
            return CommandClass::Global;
        }
        match self {
            Router::Fixed(map) => map.class(cmd),
            Router::Remappable(map) => map.class(cmd),
        }
    }

    /// The C-G function (see [`CommandMap::destinations`]).
    pub fn destinations(
        &self,
        cmd: psmr_common::ids::CommandId,
        payload: &[u8],
        mpl: usize,
    ) -> Destinations {
        match self {
            Router::Fixed(map) => map.destinations(cmd, payload, mpl),
            Router::Remappable(map) => map.destinations(cmd, payload, mpl),
        }
    }

    /// Server-side γ derivation (see [`CommandMap::destinations_at`]).
    /// Only consulted for commands delivered on the shared group, where
    /// remap pins play no role (globally dependent commands involve every
    /// group regardless).
    pub fn destinations_at(
        &self,
        cmd: psmr_common::ids::CommandId,
        payload: &[u8],
        mpl: usize,
        delivered_on: GroupId,
    ) -> Destinations {
        if cmd == psmr_recovery::CHECKPOINT {
            return Destinations::all(mpl);
        }
        match self {
            Router::Fixed(map) => map.destinations_at(cmd, payload, mpl, delivered_on),
            Router::Remappable(map) => {
                if cmd == REMAP {
                    Destinations::all(mpl)
                } else {
                    map.base().destinations_at(cmd, payload, mpl, delivered_on)
                }
            }
        }
    }

    /// Handles a delivered [`REMAP`] command: installs the table. Returns
    /// `Some(response)` when the command was a remap, `None` otherwise.
    pub fn try_install(&self, cmd: psmr_common::ids::CommandId, payload: &[u8]) -> Option<Vec<u8>> {
        match self {
            Router::Remappable(map) if cmd == REMAP => {
                let installed = RemapTable::decode(payload)
                    .map(|table| map.install(table))
                    .unwrap_or(false);
                Some(vec![u8::from(installed)])
            }
            _ => None,
        }
    }

    /// The remap epoch in force and its encoded overlay table — what the
    /// state-transfer handshake advertises to a restarting replica.
    /// Fixed routers report `(0, empty)`.
    pub fn epoch_table(&self) -> (u64, Vec<u8>) {
        match self {
            Router::Fixed(_) => (0, Vec::new()),
            Router::Remappable(map) => {
                let table = map.current_table();
                (table.epoch, table.encode())
            }
        }
    }

    /// Adopts the overlay table a state-transfer handshake carried (the
    /// remap-epoch half of recovery). Stale or malformed tables are
    /// ignored — [`RemappableMap::install`] is epoch-monotonic — and
    /// fixed routers have nothing to install.
    pub fn install_fetched(&self, table: &[u8]) {
        if let (Router::Remappable(map), false) = (self, table.is_empty()) {
            if let Some(table) = RemapTable::decode(table) {
                map.install(table);
            }
        }
    }
}

/// Client sink of the multicast-backed engines that route by C-G
/// (Algorithm 1 lines 1–3).
pub(crate) struct CgSink {
    pub handle: MulticastHandle,
    pub router: Router,
    pub mpl: usize,
}

impl RequestSink for CgSink {
    fn submit(&self, request: &Request) {
        let payload = Bytes::from(request.encode());
        // Globally dependent commands always travel on the shared group —
        // "one [group] for serialized requests" (§VI-C) — even at MPL 1,
        // where the destination set is technically a singleton. This keeps
        // the serialized path (and its cost) identical across MPLs.
        if matches!(self.router.class(request.command), CommandClass::Global) {
            self.handle.multicast_serial(payload);
        } else {
            let dests = self
                .router
                .destinations(request.command, &request.payload, self.mpl);
            self.handle.multicast(&dests, payload);
        }
    }
}

/// Client sink of the single-stream engines (SMR, sP-SMR): every command
/// goes through the one totally ordered group.
pub(crate) struct TotalOrderSink {
    pub handle: MulticastHandle,
}

impl RequestSink for TotalOrderSink {
    fn submit(&self, request: &Request) {
        self.handle.multicast(
            &Destinations::one(GroupId::new(0)),
            Bytes::from(request.encode()),
        );
    }
}

/// Client sink of the non-replicated baseline: requests go straight into
/// the server's input channel. `close` disconnects the channel even while
/// clients still hold sink handles.
pub(crate) struct ChannelSink {
    tx: parking_lot::RwLock<Option<Sender<Request>>>,
}

impl ChannelSink {
    pub fn new(tx: Sender<Request>) -> Self {
        Self {
            tx: parking_lot::RwLock::new(Some(tx)),
        }
    }

    /// Drops the sender: the server's receive loop sees a disconnect and
    /// drains; later submissions are discarded.
    pub fn close(&self) {
        self.tx.write().take();
    }
}

impl RequestSink for ChannelSink {
    fn submit(&self, request: &Request) {
        use psmr_common::metrics::{counters, global};
        match self.tx.read().as_ref() {
            Some(tx) => {
                if tx.send(request.clone()).is_err() {
                    // Receiver gone: the server wound down mid-submit.
                    global().counter(counters::REQUESTS_DROPPED).inc();
                }
            }
            // Closed sink: the request vanishes, as with a dead socket —
            // but observably so, for recovery tests and operators.
            None => global().counter(counters::REQUESTS_DROPPED).inc(),
        }
    }
}
