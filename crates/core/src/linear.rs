//! Offline linearizability checking.
//!
//! P-SMR's correctness claim (§IV-E) is linearizability: client commands
//! can be reordered into a sequence that respects both the sequential
//! semantics of the commands and their real-time order. The integration
//! tests record per-key histories of reads and writes against a replicated
//! store and feed them to [`check_register`], a Wing & Gong-style searcher
//! for single-register histories with memoization.
//!
//! Keys of the key-value store are independent registers (operations on
//! different keys commute), so a store history is linearizable iff each
//! per-key sub-history is — which keeps the search tractable.

use std::collections::HashSet;

/// One completed operation on a single register (one key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Invocation timestamp (any monotonic clock, nanoseconds).
    pub invoked: u64,
    /// Response timestamp; must be ≥ `invoked`.
    pub returned: u64,
    /// The operation and its observed outcome.
    pub op: RegisterOp,
}

/// A register operation with its observed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOp {
    /// A write that stored `value`.
    Write {
        /// The written value.
        value: u64,
    },
    /// A read that returned `value` (`None` = key absent).
    Read {
        /// The observed value.
        value: Option<u64>,
    },
}

/// Verdict of a linearizability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A valid linearization exists.
    Linearizable,
    /// No valid linearization exists: the history is incorrect.
    NotLinearizable,
}

/// Checks a single-register history for linearizability.
///
/// `initial` is the register's value before the history begins (`None` =
/// absent).
///
/// # Panics
///
/// Panics if the history has more than 63 operations (the memoized search
/// uses a bitmask) or if any record has `returned < invoked`.
pub fn check_register(history: &[OpRecord], initial: Option<u64>) -> Verdict {
    assert!(
        history.len() < 64,
        "history too long for the bitmask search"
    );
    for record in history {
        assert!(
            record.returned >= record.invoked,
            "response precedes invocation"
        );
    }
    if history.is_empty() {
        return Verdict::Linearizable;
    }
    let mut seen: HashSet<(u64, Option<u64>)> = HashSet::new();
    if dfs(history, 0, initial, &mut seen) {
        Verdict::Linearizable
    } else {
        Verdict::NotLinearizable
    }
}

/// Depth-first search over linearization prefixes.
///
/// `done` is the bitmask of already linearized operations and `state` the
/// register value after them. An operation may be linearized next only if
/// no *other* pending operation returned before it was invoked (real-time
/// order).
fn dfs(
    history: &[OpRecord],
    done: u64,
    state: Option<u64>,
    seen: &mut HashSet<(u64, Option<u64>)>,
) -> bool {
    if done.count_ones() as usize == history.len() {
        return true;
    }
    if !seen.insert((done, state)) {
        return false; // already explored this configuration
    }
    // The real-time frontier: an op is a candidate if it is pending and its
    // invocation precedes the earliest return among pending ops.
    let min_return = history
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, r)| r.returned)
        .min()
        .expect("at least one pending op");
    for (i, record) in history.iter().enumerate() {
        if done & (1 << i) != 0 || record.invoked > min_return {
            continue;
        }
        let next_state = match record.op {
            RegisterOp::Write { value } => Some(value),
            RegisterOp::Read { value } => {
                if value != state {
                    continue; // this read cannot be linearized here
                }
                state
            }
        };
        if dfs(history, done | (1 << i), next_state, seen) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(invoked: u64, returned: u64, value: u64) -> OpRecord {
        OpRecord {
            invoked,
            returned,
            op: RegisterOp::Write { value },
        }
    }

    fn r(invoked: u64, returned: u64, value: Option<u64>) -> OpRecord {
        OpRecord {
            invoked,
            returned,
            op: RegisterOp::Read { value },
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert_eq!(check_register(&[], None), Verdict::Linearizable);
    }

    #[test]
    fn sequential_write_then_read() {
        let h = [w(0, 1, 5), r(2, 3, Some(5))];
        assert_eq!(check_register(&h, None), Verdict::Linearizable);
    }

    #[test]
    fn read_of_never_written_value_is_rejected() {
        let h = [w(0, 1, 5), r(2, 3, Some(6))];
        assert_eq!(check_register(&h, None), Verdict::NotLinearizable);
    }

    #[test]
    fn stale_read_after_write_returned_is_rejected() {
        // Write(5) completed before the read was invoked, yet the read saw
        // the initial value: a real-time violation.
        let h = [w(0, 1, 5), r(5, 6, None)];
        assert_eq!(check_register(&h, None), Verdict::NotLinearizable);
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Read overlaps the write: both outcomes are linearizable.
        let old = [w(0, 10, 5), r(1, 2, None)];
        let new = [w(0, 10, 5), r(1, 2, Some(5))];
        assert_eq!(check_register(&old, None), Verdict::Linearizable);
        assert_eq!(check_register(&new, None), Verdict::Linearizable);
    }

    #[test]
    fn overlapping_writes_allow_either_order() {
        let h1 = [w(0, 10, 1), w(1, 9, 2), r(11, 12, Some(1))];
        let h2 = [w(0, 10, 1), w(1, 9, 2), r(11, 12, Some(2))];
        assert_eq!(check_register(&h1, None), Verdict::Linearizable);
        assert_eq!(check_register(&h2, None), Verdict::Linearizable);
    }

    #[test]
    fn non_monotonic_reads_are_rejected() {
        // Two sequential reads observing new-then-old values.
        let h = [w(0, 1, 1), w(2, 3, 2), r(4, 5, Some(2)), r(6, 7, Some(1))];
        assert_eq!(check_register(&h, None), Verdict::NotLinearizable);
    }

    #[test]
    fn initial_value_is_respected() {
        let h = [r(0, 1, Some(9))];
        assert_eq!(check_register(&h, Some(9)), Verdict::Linearizable);
        assert_eq!(check_register(&h, Some(8)), Verdict::NotLinearizable);
    }

    #[test]
    fn long_concurrent_history_is_searchable() {
        // 24 fully concurrent writes + reads stress the memoization.
        let mut h = Vec::new();
        for i in 0..12u64 {
            h.push(w(0, 100, i));
        }
        for _ in 0..12 {
            h.push(r(0, 100, Some(3)));
        }
        assert_eq!(check_register(&h, None), Verdict::Linearizable);
    }

    #[test]
    #[should_panic(expected = "response precedes invocation")]
    fn inverted_timestamps_panic() {
        let h = [w(5, 1, 0)];
        check_register(&h, None);
    }
}
