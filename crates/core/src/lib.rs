//! # psmr-core — Parallel State-Machine Replication
//!
//! The paper's contribution (§IV) and the baselines it is evaluated
//! against:
//!
//! * [`engines::PsmrEngine`] — **P-SMR**: parallel delivery *and* parallel
//!   execution. Each replica runs `k` worker threads; worker `t_i`
//!   subscribes to multicast groups `g_i` and `g_all` and alternates
//!   between *parallel mode* (singleton destination sets) and *synchronous
//!   mode* (multi-group commands synchronized with signals), exactly as in
//!   Algorithm 1.
//! * [`engines::SmrEngine`] — classical SMR: sequential delivery, one
//!   executor thread per replica.
//! * [`engines::SpSmrEngine`] — semi-parallel SMR (sP-SMR, the model of
//!   CBASE, reference 4 of the paper): a single totally ordered stream, a scheduler thread that
//!   dispatches independent commands to worker threads and serializes
//!   dependent ones.
//! * [`engines::NoRepEngine`] — a non-replicated scheduler/worker server
//!   (the `no-rep` baseline).
//!
//! Supporting machinery:
//!
//! * [`service::Service`] — what a replicated service implements,
//! * [`conflict`] — C-Dep (command dependencies) and the derived C-G
//!   (command-to-groups) function,
//! * [`client::ClientProxy`] — the client-side proxy of the commodified
//!   architecture (Figure 1 of the paper), with both blocking calls and the
//!   windowed asynchronous interface the evaluation's closed-loop clients
//!   use,
//! * [`linear`] — an offline linearizability checker used by the test
//!   suite.
//!
//! # Quickstart
//!
//! ```
//! use psmr_core::conflict::{CommandClass, DependencySpec};
//! use psmr_core::engines::{Engine, PsmrEngine};
//! use psmr_core::service::Service;
//! use psmr_common::{ids::CommandId, SystemConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A tiny service: one atomic counter, `add` commands are global.
//! #[derive(Default)]
//! struct Counter(AtomicU64);
//! const ADD: CommandId = CommandId::new(0);
//!
//! impl Service for Counter {
//!     fn execute(&self, _cmd: CommandId, payload: &[u8]) -> Vec<u8> {
//!         let d = u64::from_le_bytes(payload.try_into().unwrap());
//!         let new = self.0.fetch_add(d, Ordering::SeqCst) + d;
//!         new.to_le_bytes().to_vec()
//!     }
//! }
//!
//! let mut spec = DependencySpec::new();
//! spec.declare(ADD, CommandClass::Global);
//!
//! let mut cfg = SystemConfig::new(2);
//! cfg.replicas(2);
//! let engine = PsmrEngine::spawn(&cfg, spec.into_map(), Counter::default);
//! let mut client = engine.client();
//! let r1 = client.execute(ADD, 5u64.to_le_bytes().to_vec());
//! let r2 = client.execute(ADD, 2u64.to_le_bytes().to_vec());
//! assert_eq!(u64::from_le_bytes(r1[..].try_into().unwrap()), 5);
//! assert_eq!(u64::from_le_bytes(r2[..].try_into().unwrap()), 7);
//! engine.shutdown();
//! ```

pub mod client;
pub mod conflict;
pub mod engines;
pub mod linear;
pub mod remap;
pub mod service;

pub use client::ClientProxy;
pub use conflict::{CommandClass, CommandMap, DependencySpec};
pub use engines::{Engine, NoRepEngine, PsmrEngine, SmrEngine, SpSmrEngine};
pub use remap::{RemapTable, RemappableMap, REMAP};
pub use service::Service;
