//! C-Dep and C-G: command dependencies and the command-to-groups function.
//!
//! Two commands are *dependent* if they access one common variable and at
//! least one of them changes it (§III). The service designer provides the
//! dependency information (C-Dep) alongside the command signatures; from it
//! and the multiprogramming level, the proxies derive the C-G function that
//! maps each invocation to its destination group set (§IV-C):
//!
//! * dependent commands are assigned at least one common group (they will
//!   synchronize), and
//! * independent commands are spread across groups (they will run
//!   concurrently).
//!
//! The encoding here covers both levels of the paper's prototype: commands
//! that depend on each other *regardless of parameters* and commands that
//! *may* depend according to their parameters (same key).

use psmr_common::ids::{CommandId, GroupId};
use psmr_multicast::Destinations;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How one command kind interacts with the service state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Depends on every other command (e.g. the key-value store's `insert`
    /// and `delete`, which restructure the tree). C-G: all groups.
    Global,
    /// Touches exactly the state named by its key parameter. C-G: group
    /// `(key mod k)`. `writes` distinguishes updates from keyed reads: two
    /// keyed reads of the same key are independent, but they still share a
    /// group, which is harmless (same-group commands serialize per worker).
    Keyed {
        /// Whether the command modifies the keyed state.
        writes: bool,
    },
    /// Reads arbitrary state without a key affinity (the coarse C-Dep's
    /// `get_state`). C-G: a group chosen round-robin. Only sound when every
    /// writing command is `Global` (validated by
    /// [`DependencySpec::into_map`]).
    Free,
}

/// The shared key-extraction function of a C-Dep: maps a command payload to
/// the key its conflicts are computed over.
type KeyExtractor = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;

/// The C-Dep of a service: a class per command plus the key extractor used
/// by `Keyed` commands.
///
/// # Example
///
/// The fine-grained C-Dep of the paper's key-value store (§V-A):
///
/// ```
/// use psmr_common::ids::CommandId;
/// use psmr_core::conflict::{CommandClass, DependencySpec};
///
/// const READ: CommandId = CommandId::new(0);
/// const UPDATE: CommandId = CommandId::new(1);
/// const INSERT: CommandId = CommandId::new(2);
/// const DELETE: CommandId = CommandId::new(3);
///
/// let mut spec = DependencySpec::new();
/// spec.declare(READ, CommandClass::Keyed { writes: false })
///     .declare(UPDATE, CommandClass::Keyed { writes: true })
///     .declare(INSERT, CommandClass::Global)
///     .declare(DELETE, CommandClass::Global)
///     .key_extractor(|payload| {
///         u64::from_le_bytes(payload[..8].try_into().unwrap())
///     });
/// let map = spec.into_map();
/// ```
pub struct DependencySpec {
    classes: HashMap<CommandId, CommandClass>,
    key_of: KeyExtractor,
}

impl std::fmt::Debug for DependencySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependencySpec")
            .field("classes", &self.classes)
            .finish()
    }
}

impl DependencySpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self {
            classes: HashMap::new(),
            key_of: Arc::new(|_| 0),
        }
    }

    /// Declares the class of a command.
    pub fn declare(&mut self, cmd: CommandId, class: CommandClass) -> &mut Self {
        self.classes.insert(cmd, class);
        self
    }

    /// Installs the key extractor used by `Keyed` commands. The extractor
    /// must be deterministic: it runs in both client and server proxies.
    pub fn key_extractor(&mut self, f: impl Fn(&[u8]) -> u64 + Send + Sync + 'static) -> &mut Self {
        self.key_of = Arc::new(f);
        self
    }

    /// Compiles the specification into a [`CommandMap`].
    ///
    /// # Panics
    ///
    /// Panics if the spec mixes `Free` commands with `Keyed { writes: true }`
    /// commands: a free read could then miss the group of a keyed write it
    /// depends on, breaking the "dependent commands share a group"
    /// requirement of §IV-C.
    pub fn into_map(&self) -> CommandMap {
        let has_free = self
            .classes
            .values()
            .any(|c| matches!(c, CommandClass::Free));
        let has_keyed_write = self
            .classes
            .values()
            .any(|c| matches!(c, CommandClass::Keyed { writes: true }));
        assert!(
            !(has_free && has_keyed_write),
            "C-Dep mixes Free reads with Keyed writes: a free read would not \
             share a group with the keyed writes it depends on"
        );
        CommandMap {
            classes: self.classes.clone(),
            key_of: Arc::clone(&self.key_of),
            rr: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Default for DependencySpec {
    fn default() -> Self {
        Self::new()
    }
}

/// The compiled C-G function plus the pairwise conflict test used by the
/// sP-SMR scheduler.
///
/// Cloneable and cheap to share: client proxies use
/// [`CommandMap::destinations`] (Algorithm 1, line 2), server proxies use it
/// again on delivery (line 9), and schedulers use [`CommandMap::conflicts`].
#[derive(Clone)]
pub struct CommandMap {
    classes: HashMap<CommandId, CommandClass>,
    key_of: KeyExtractor,
    /// Round-robin counter for `Free` commands (the paper uses a random
    /// group; round-robin is the deterministic-rate equivalent and spreads
    /// load identically).
    rr: Arc<AtomicU64>,
}

impl std::fmt::Debug for CommandMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandMap")
            .field("classes", &self.classes)
            .finish()
    }
}

impl CommandMap {
    /// The class of a command.
    ///
    /// # Panics
    ///
    /// Panics if the command was never declared: an undeclared command has
    /// no dependency information and executing it would be unsound.
    pub fn class(&self, cmd: CommandId) -> CommandClass {
        *self
            .classes
            .get(&cmd)
            .unwrap_or_else(|| panic!("command {cmd} not declared in C-Dep"))
    }

    /// The key a payload addresses (meaningful for `Keyed` commands).
    pub fn key(&self, payload: &[u8]) -> u64 {
        (self.key_of)(payload)
    }

    /// The C-G function: destination groups of an invocation, for a
    /// deployment with multiprogramming level `mpl`.
    ///
    /// **Client-side note:** `Free` commands draw a round-robin group, so
    /// consecutive calls may differ; all other classes are deterministic.
    /// Server proxies re-deriving `γ` on delivery (Algorithm 1, line 9) must
    /// use [`CommandMap::destinations_at`] with the group the command
    /// actually arrived on — which this function's result determines.
    pub fn destinations(&self, cmd: CommandId, payload: &[u8], mpl: usize) -> Destinations {
        match self.class(cmd) {
            CommandClass::Global => Destinations::all(mpl),
            CommandClass::Keyed { .. } => {
                Destinations::one(GroupId::new((self.key(payload) % mpl as u64) as usize))
            }
            CommandClass::Free => {
                let g = self.rr.fetch_add(1, Ordering::Relaxed) % mpl as u64;
                Destinations::one(GroupId::new(g as usize))
            }
        }
    }

    /// Server-side γ derivation: like [`CommandMap::destinations`] but for
    /// `Free` commands returns the singleton of the group the command was
    /// delivered on (the client's round-robin choice).
    pub fn destinations_at(
        &self,
        cmd: CommandId,
        payload: &[u8],
        mpl: usize,
        delivered_on: GroupId,
    ) -> Destinations {
        match self.class(cmd) {
            CommandClass::Free => Destinations::one(delivered_on),
            _ => self.destinations(cmd, payload, mpl),
        }
    }

    /// The pairwise dependency test (C-Dep): do two invocations conflict?
    ///
    /// Used by the sP-SMR / no-rep scheduler to decide whether a command can
    /// run concurrently with in-flight commands.
    pub fn conflicts(
        &self,
        a_cmd: CommandId,
        a_payload: &[u8],
        b_cmd: CommandId,
        b_payload: &[u8],
    ) -> bool {
        use CommandClass::*;
        match (self.class(a_cmd), self.class(b_cmd)) {
            (Global, _) | (_, Global) => true,
            (Keyed { writes: wa }, Keyed { writes: wb }) => {
                (wa || wb) && self.key(a_payload) == self.key(b_payload)
            }
            // Free commands only read, and keyed writes are excluded by
            // validation when Free commands exist.
            (Free, _) | (_, Free) => false,
        }
    }

    /// Whether the command writes (used by schedulers and services).
    pub fn is_write(&self, cmd: CommandId) -> bool {
        matches!(
            self.class(cmd),
            CommandClass::Global | CommandClass::Keyed { writes: true }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const READ: CommandId = CommandId::new(0);
    const UPDATE: CommandId = CommandId::new(1);
    const INSERT: CommandId = CommandId::new(2);
    const GETSTATE: CommandId = CommandId::new(3);
    const SETSTATE: CommandId = CommandId::new(4);

    fn key_payload(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    fn fine_spec() -> CommandMap {
        let mut spec = DependencySpec::new();
        spec.declare(READ, CommandClass::Keyed { writes: false })
            .declare(UPDATE, CommandClass::Keyed { writes: true })
            .declare(INSERT, CommandClass::Global)
            .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));
        spec.into_map()
    }

    fn coarse_spec() -> CommandMap {
        let mut spec = DependencySpec::new();
        spec.declare(GETSTATE, CommandClass::Free)
            .declare(SETSTATE, CommandClass::Global);
        spec.into_map()
    }

    #[test]
    fn fine_cg_routes_by_key_modulo_mpl() {
        let map = fine_spec();
        let d = map.destinations(UPDATE, &key_payload(10), 4);
        assert_eq!(d.groups(), &[GroupId::new(2)]); // 10 % 4
        let d = map.destinations(READ, &key_payload(10), 4);
        assert_eq!(d.groups(), &[GroupId::new(2)], "same key, same group");
    }

    #[test]
    fn global_commands_go_to_all_groups() {
        let map = fine_spec();
        let d = map.destinations(INSERT, &key_payload(1), 3);
        assert_eq!(d.groups().len(), 3);
        assert!(!d.is_singleton());
    }

    #[test]
    fn coarse_cg_spreads_free_reads_round_robin() {
        let map = coarse_spec();
        let groups: Vec<GroupId> = (0..8)
            .map(|_| map.destinations(GETSTATE, &[], 4).executor())
            .collect();
        // Round-robin over 4 groups, twice around.
        let expect: Vec<GroupId> = (0..8).map(|i| GroupId::new(i % 4)).collect();
        assert_eq!(groups, expect);
    }

    #[test]
    fn dependent_commands_always_share_a_group() {
        // The §IV-C requirement, checked over both specs and many keys.
        let fine = fine_spec();
        for mpl in [1usize, 2, 3, 8] {
            for ka in 0..20u64 {
                for kb in 0..20u64 {
                    let (pa, pb) = (key_payload(ka), key_payload(kb));
                    for (ca, cb) in [(UPDATE, UPDATE), (UPDATE, READ), (INSERT, UPDATE)] {
                        if fine.conflicts(ca, &pa, cb, &pb) {
                            let da = fine.destinations(ca, &pa, mpl);
                            let db = fine.destinations(cb, &pb, mpl);
                            assert!(
                                da.groups().iter().any(|g| db.contains(*g)),
                                "{ca}({ka}) and {cb}({kb}) dependent but disjoint at mpl {mpl}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn conflict_matrix_matches_paper_kv_semantics() {
        let map = fine_spec();
        let (k1, k2) = (key_payload(1), key_payload(2));
        // Reads are independent, even on the same key.
        assert!(!map.conflicts(READ, &k1, READ, &k1));
        // Update vs read/update on the same key: dependent.
        assert!(map.conflicts(UPDATE, &k1, READ, &k1));
        assert!(map.conflicts(UPDATE, &k1, UPDATE, &k1));
        // Different keys: independent.
        assert!(!map.conflicts(UPDATE, &k1, UPDATE, &k2));
        assert!(!map.conflicts(UPDATE, &k1, READ, &k2));
        // Insert depends on everything.
        assert!(map.conflicts(INSERT, &k1, READ, &k2));
        assert!(map.conflicts(INSERT, &k1, INSERT, &k2));
    }

    #[test]
    fn coarse_conflicts() {
        let map = coarse_spec();
        assert!(!map.conflicts(GETSTATE, &[], GETSTATE, &[]));
        assert!(map.conflicts(SETSTATE, &[], GETSTATE, &[]));
        assert!(map.is_write(SETSTATE));
        assert!(!map.is_write(GETSTATE));
    }

    #[test]
    fn server_side_gamma_pins_free_commands_to_delivery_group() {
        let map = coarse_spec();
        let d = map.destinations_at(GETSTATE, &[], 4, GroupId::new(3));
        assert_eq!(d.groups(), &[GroupId::new(3)]);
        // Non-free classes are unaffected.
        let d = map.destinations_at(SETSTATE, &[], 4, GroupId::new(3));
        assert_eq!(d.groups().len(), 4);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_commands_panic() {
        fine_spec().class(CommandId::new(99));
    }

    #[test]
    #[should_panic(expected = "mixes Free reads with Keyed writes")]
    fn unsound_spec_rejected() {
        let mut spec = DependencySpec::new();
        spec.declare(GETSTATE, CommandClass::Free)
            .declare(UPDATE, CommandClass::Keyed { writes: true });
        let _ = spec.into_map();
    }

    #[test]
    fn mpl_one_degenerates_to_total_order() {
        let map = fine_spec();
        for k in 0..10u64 {
            assert_eq!(
                map.destinations(UPDATE, &key_payload(k), 1).executor(),
                GroupId::new(0)
            );
        }
    }
}
