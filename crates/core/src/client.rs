//! The client proxy of the commodified architecture (Figure 1).
//!
//! "Client proxies intercept client invocations, turn them into requests
//! that include a command identifier and the marshaled parameters, and
//! multicast the requests to the replicas. … Even though the client proxy
//! may receive the response for a command from multiple servers, all
//! responses are the same and the proxy returns only one response to the
//! client." (§III)
//!
//! [`ClientProxy::execute`] is the blocking call of Algorithm 1 lines 1–6.
//! The evaluation's closed-loop clients keep a window of outstanding
//! commands (50 in the paper); [`ClientProxy::submit`] /
//! [`ClientProxy::recv_response`] expose that asynchronous interface.

use crate::service::SharedRouter;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::{ClientId, CommandId, RequestId};
use psmr_common::metrics::{counters, global};
use psmr_common::trace::{self, Stage};
use std::collections::HashMap;
use std::sync::Arc;

/// Where a client proxy hands its marshalled requests: the multicast-backed
/// engines route by C-G; the non-replicated baselines push into a server
/// channel directly.
pub trait RequestSink: Send + Sync {
    /// Accepts one marshalled request for ordering/execution.
    fn submit(&self, request: &Request);
}

/// A client-side proxy: marshals invocations, routes them through the
/// engine's [`RequestSink`], and deduplicates per-request responses from
/// the replicas.
pub struct ClientProxy {
    id: ClientId,
    next_request: u64,
    sink: Arc<dyn RequestSink>,
    inbox: Receiver<Response>,
    router: SharedRouter,
    /// In-flight requests, kept whole so they can be retransmitted after
    /// a suspected loss (server restart, dropped channel).
    outstanding: HashMap<RequestId, Request>,
}

impl std::fmt::Debug for ClientProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientProxy")
            .field("id", &self.id)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl ClientProxy {
    /// Creates a proxy for `id`, registering its response inbox with the
    /// engine's router. Engines construct proxies via `Engine::client`.
    pub fn new(id: ClientId, sink: Arc<dyn RequestSink>, router: SharedRouter) -> Self {
        let inbox = router.register(id);
        Self {
            id,
            next_request: 0,
            sink,
            inbox,
            router,
            outstanding: HashMap::new(),
        }
    }

    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of submitted commands whose response has not yet been
    /// received.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Executes a command and blocks until its response arrives
    /// (Algorithm 1 lines 1–6).
    ///
    /// Responses for *other* outstanding requests that arrive meanwhile are
    /// ignored — mixing `execute` with a non-empty window would drop them,
    /// so issue windowed traffic with [`ClientProxy::submit`] and drain it
    /// before calling `execute`.
    ///
    /// # Panics
    ///
    /// Panics if the engine shuts down while the command is in flight.
    pub fn execute(&mut self, command: CommandId, payload: impl Into<Bytes>) -> Bytes {
        let request = self.submit(command, payload);
        loop {
            let (id, response) = self.recv_response();
            if id == request {
                return response;
            }
        }
    }

    /// Submits a command without waiting and returns its request id.
    pub fn submit(&mut self, command: CommandId, payload: impl Into<Bytes>) -> RequestId {
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        let req = Request::new(self.id, request, command, payload);
        self.outstanding.insert(request, req.clone());
        self.sink.submit(&req);
        request
    }

    /// Re-submits every outstanding request through the sink and returns
    /// how many were retransmitted (also counted in the
    /// `requests_retransmitted` metric). The recovery path for requests a
    /// failed server may have dropped before ordering them: replicas that
    /// already executed a retransmitted command answer again and the
    /// duplicate response is discarded by the proxy's dedup, so
    /// retransmission is safe whenever the command either never ordered
    /// or is idempotent to re-execute.
    pub fn retransmit_outstanding(&mut self) -> usize {
        let retransmitted = self.outstanding.len();
        if retransmitted > 0 {
            let counter = global().counter(counters::REQUESTS_RETRANSMITTED);
            // Resubmit in original submission order (request ids are
            // sequential per client) so the FIFO ordering path sees the
            // same sequence the client issued — a map-order replay could
            // invert two writes to the same key.
            let mut pending: Vec<&Request> = self.outstanding.values().collect();
            pending.sort_unstable_by_key(|req| req.request);
            for req in pending {
                self.sink.submit(req);
                counter.inc();
            }
        }
        retransmitted
    }

    /// Blocks until the next *first* response for an outstanding request
    /// arrives; duplicate responses from other replicas are discarded.
    ///
    /// # Panics
    ///
    /// Panics if the engine shuts down while requests are outstanding.
    pub fn recv_response(&mut self) -> (RequestId, Bytes) {
        loop {
            let resp = self
                .inbox
                .recv()
                .expect("engine shut down with requests outstanding");
            if self.outstanding.remove(&resp.request).is_some() {
                // The chain's last stage: the lifecycle ends where the
                // client observes the response, not where the replica
                // sent it.
                if let Some((group, seq)) = resp.origin {
                    trace::global().stamp(group, seq, Stage::Released);
                }
                return (resp.request, resp.payload);
            }
            // Duplicate from another replica: drop.
        }
    }

    /// Non-blocking variant of [`ClientProxy::recv_response`].
    pub fn try_recv_response(&mut self) -> Option<(RequestId, Bytes)> {
        while let Ok(resp) = self.inbox.try_recv() {
            if self.outstanding.remove(&resp.request).is_some() {
                if let Some((group, seq)) = resp.origin {
                    trace::global().stamp(group, seq, Stage::Released);
                }
                return Some((resp.request, resp.payload));
            }
        }
        None
    }
}

impl Drop for ClientProxy {
    fn drop(&mut self) {
        self.router.unregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ResponseRouter;
    use parking_lot::Mutex;
    use std::collections::HashSet;

    /// A sink that immediately "executes" by echoing the payload back,
    /// `copies` times (simulating multiple replicas responding).
    struct EchoSink {
        router: SharedRouter,
        copies: usize,
        log: Mutex<Vec<Request>>,
    }

    impl RequestSink for EchoSink {
        fn submit(&self, request: &Request) {
            self.log.lock().push(request.clone());
            for _ in 0..self.copies {
                self.router.respond(
                    request.client,
                    Response::new(request.request, request.payload.clone()),
                );
            }
        }
    }

    fn setup(copies: usize) -> (ClientProxy, Arc<EchoSink>) {
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let sink = Arc::new(EchoSink {
            router: Arc::clone(&router),
            copies,
            log: Mutex::new(Vec::new()),
        });
        let proxy = ClientProxy::new(
            ClientId::new(1),
            Arc::clone(&sink) as Arc<dyn RequestSink>,
            router,
        );
        (proxy, sink)
    }

    #[test]
    fn execute_round_trips_payload() {
        let (mut proxy, sink) = setup(1);
        let resp = proxy.execute(CommandId::new(7), vec![1, 2, 3]);
        assert_eq!(&resp[..], &[1, 2, 3]);
        assert_eq!(proxy.outstanding(), 0);
        let log = sink.log.lock();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].command, CommandId::new(7));
    }

    #[test]
    fn duplicate_replica_responses_are_discarded() {
        let (mut proxy, _sink) = setup(3);
        let r1 = proxy.execute(CommandId::new(0), vec![1]);
        // The two duplicate responses for request 0 must not satisfy
        // request 1.
        let r2 = proxy.execute(CommandId::new(0), vec![2]);
        assert_eq!(&r1[..], &[1]);
        assert_eq!(&r2[..], &[2]);
    }

    #[test]
    fn windowed_submission_tracks_outstanding() {
        let (mut proxy, _sink) = setup(2);
        let ids: Vec<RequestId> = (0..10)
            .map(|i| proxy.submit(CommandId::new(0), vec![i as u8]))
            .collect();
        assert_eq!(proxy.outstanding(), 10);
        let mut got = HashSet::new();
        for _ in 0..10 {
            let (id, _) = proxy.recv_response();
            got.insert(id);
        }
        assert_eq!(got, ids.into_iter().collect());
        assert_eq!(proxy.outstanding(), 0);
        assert!(proxy.try_recv_response().is_none());
    }

    #[test]
    fn request_ids_are_sequential_per_client() {
        let (mut proxy, sink) = setup(1);
        proxy.submit(CommandId::new(0), vec![]);
        proxy.submit(CommandId::new(0), vec![]);
        let log = sink.log.lock();
        assert_eq!(log[0].request, RequestId::new(0));
        assert_eq!(log[1].request, RequestId::new(1));
    }

    #[test]
    fn retransmit_resends_outstanding_and_counts() {
        let (mut proxy, sink) = setup(0); // sink never responds
        proxy.submit(CommandId::new(1), vec![1]);
        proxy.submit(CommandId::new(2), vec![2]);
        let before = global().value(counters::REQUESTS_RETRANSMITTED);
        assert_eq!(proxy.retransmit_outstanding(), 2);
        assert_eq!(global().value(counters::REQUESTS_RETRANSMITTED), before + 2);
        // Original submissions + retransmissions all reached the sink.
        assert_eq!(sink.log.lock().len(), 4);
        // Nothing outstanding: retransmit is a no-op.
        let (mut responsive, _sink) = setup(1);
        let _ = responsive.execute(CommandId::new(0), vec![]);
        assert_eq!(responsive.retransmit_outstanding(), 0);
    }

    #[test]
    fn drop_unregisters_from_router() {
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let sink = Arc::new(EchoSink {
            router: Arc::clone(&router),
            copies: 0,
            log: Mutex::new(Vec::new()),
        });
        {
            let _proxy = ClientProxy::new(
                ClientId::new(5),
                Arc::clone(&sink) as Arc<dyn RequestSink>,
                Arc::clone(&router),
            );
            assert_eq!(router.len(), 1);
        }
        assert!(router.is_empty());
    }
}
