//! The service abstraction and the client↔replica plumbing.
//!
//! A replicated service is "a state machine \[that\] consists of state
//! variables … and a set of commands that change the state" (§III). The
//! paper's architecture interposes proxies: client proxies marshal
//! invocations into requests; server proxies unmarshal and invoke the local
//! replica.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use psmr_common::envelope::Response;
use psmr_common::ids::{ClientId, CommandId};
use std::collections::HashMap;
use std::sync::Arc;

/// A deterministic replicated service.
///
/// `execute` takes `&self`: worker threads of one replica may invoke it
/// **concurrently**, but only for commands the service's dependency
/// specification (C-Dep) declares independent — the replication engine
/// guarantees dependent commands never run concurrently and are invoked in
/// the same order on every replica. Services therefore use interior
/// mutability sized to their own C-Dep: e.g. the key-value store keeps
/// values in atomics (independent updates may race only with reads of other
/// keys) and takes an exclusive lock inside structural commands, which its
/// C-Dep marks global.
///
/// Commands must be deterministic: identical state and payload must yield
/// identical responses and state changes on every replica.
pub trait Service: Send + Sync + 'static {
    /// Executes one command against the replica's state and returns the
    /// marshalled response.
    fn execute(&self, command: CommandId, payload: &[u8]) -> Vec<u8>;
}

impl<S: Service + ?Sized> Service for Arc<S> {
    fn execute(&self, command: CommandId, payload: &[u8]) -> Vec<u8> {
        (**self).execute(command, payload)
    }
}

/// A service that can also be checkpointed and restored — what the
/// recoverable engine spawns (`spawn_recoverable`) require. Blanket-
/// implemented for every `Service + Snapshot`, and object safe so the
/// engines can hold replicas as `Arc<dyn RecoverableService>` across
/// crash/restart cycles.
pub trait RecoverableService: Service + psmr_recovery::Snapshot {}

impl<S: Service + psmr_recovery::Snapshot> RecoverableService for S {}

/// One-to-one response delivery from replicas back to clients.
///
/// Stands in for the client↔server sockets of the paper's testbed. Every
/// replica that executes a command sends a response; the client proxy keeps
/// the first and discards duplicates.
#[derive(Debug, Default)]
pub struct ResponseRouter {
    routes: RwLock<HashMap<ClientId, Sender<Response>>>,
}

impl ResponseRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a client and returns its response inbox.
    pub fn register(&self, client: ClientId) -> Receiver<Response> {
        let (tx, rx) = unbounded();
        self.routes.write().insert(client, tx);
        rx
    }

    /// Unregisters a client (its inbox disconnects).
    pub fn unregister(&self, client: ClientId) {
        self.routes.write().remove(&client);
    }

    /// Delivers a response to a client; silently dropped if the client is
    /// gone (a client that timed out or departed, as with real sockets).
    pub fn respond(&self, client: ClientId, response: Response) {
        if let Some(tx) = self.routes.read().get(&client) {
            let _ = tx.send(response);
        }
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.routes.read().len()
    }

    /// Returns whether no client is registered.
    pub fn is_empty(&self) -> bool {
        self.routes.read().is_empty()
    }
}

/// Shared handle to a [`ResponseRouter`].
pub type SharedRouter = Arc<ResponseRouter>;

#[cfg(test)]
mod tests {
    use super::*;
    use psmr_common::ids::RequestId;

    #[test]
    fn router_routes_to_registered_clients() {
        let router = ResponseRouter::new();
        let rx = router.register(ClientId::new(1));
        router.respond(ClientId::new(1), Response::new(RequestId::new(5), vec![1]));
        let resp = rx.recv().unwrap();
        assert_eq!(resp.request, RequestId::new(5));
        assert_eq!(router.len(), 1);
    }

    #[test]
    fn responses_to_unknown_clients_are_dropped() {
        let router = ResponseRouter::new();
        // Does not panic or block.
        router.respond(ClientId::new(9), Response::new(RequestId::new(0), vec![]));
        assert!(router.is_empty());
    }

    #[test]
    fn unregister_disconnects_the_inbox() {
        let router = ResponseRouter::new();
        let rx = router.register(ClientId::new(2));
        router.unregister(ClientId::new(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn re_register_replaces_the_route() {
        let router = ResponseRouter::new();
        let old = router.register(ClientId::new(3));
        let new = router.register(ClientId::new(3));
        router.respond(ClientId::new(3), Response::new(RequestId::new(1), vec![7]));
        assert!(old.try_recv().is_err() || new.try_recv().is_ok());
        assert_eq!(router.len(), 1);
    }
}
