//! Cross-engine integration tests: every engine must produce the same
//! observable behaviour on the same workload, replicas must converge, and
//! recorded histories must be linearizable.

use parking_lot::RwLock;
use psmr_common::ids::CommandId;
use psmr_common::SystemConfig;
use psmr_core::conflict::{CommandClass, DependencySpec};
use psmr_core::engines::{Engine, NoRepEngine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_core::linear::{check_register, OpRecord, RegisterOp, Verdict};
use psmr_core::service::Service;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READ: CommandId = CommandId::new(0);
const WRITE: CommandId = CommandId::new(1);
const SNAPSHOT: CommandId = CommandId::new(2);

/// A keyed register map: reads/writes per key, plus a global snapshot
/// command (sums all values) that C-Dep marks Global.
struct RegisterMap {
    slots: RwLock<HashMap<u64, u64>>,
    executed: AtomicU64,
}

impl RegisterMap {
    fn new() -> Self {
        Self {
            slots: RwLock::new(HashMap::new()),
            executed: AtomicU64::new(0),
        }
    }
}

impl Service for RegisterMap {
    fn execute(&self, cmd: CommandId, payload: &[u8]) -> Vec<u8> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
        match cmd {
            READ => match self.slots.read().get(&key) {
                Some(v) => {
                    let mut out = vec![1u8];
                    out.extend_from_slice(&v.to_le_bytes());
                    out
                }
                None => vec![0u8],
            },
            WRITE => {
                let value = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                self.slots.write().insert(key, value);
                vec![1u8]
            }
            SNAPSHOT => {
                let sum: u64 = self.slots.read().values().sum();
                sum.to_le_bytes().to_vec()
            }
            other => panic!("unknown command {other}"),
        }
    }
}

fn spec() -> DependencySpec {
    let mut spec = DependencySpec::new();
    spec.declare(READ, CommandClass::Keyed { writes: false })
        .declare(WRITE, CommandClass::Keyed { writes: true })
        .declare(SNAPSHOT, CommandClass::Global)
        .key_extractor(|p| u64::from_le_bytes(p[..8].try_into().unwrap()));
    spec
}

fn cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500));
    cfg
}

fn key_payload(k: u64) -> Vec<u8> {
    k.to_le_bytes().to_vec()
}

fn write_payload(k: u64, v: u64) -> Vec<u8> {
    let mut p = k.to_le_bytes().to_vec();
    p.extend_from_slice(&v.to_le_bytes());
    p
}

fn parse_read(resp: &[u8]) -> Option<u64> {
    match resp[0] {
        0 => None,
        _ => Some(u64::from_le_bytes(resp[1..9].try_into().unwrap())),
    }
}

/// Runs a deterministic single-client workload and checks read-your-writes
/// plus snapshot consistency.
fn exercise_engine(engine: &dyn Engine) {
    let mut client = engine.client();
    // Writes on several keys (different workers in P-SMR).
    for k in 0..16u64 {
        let resp = client.execute(WRITE, write_payload(k, k * 100));
        assert_eq!(&resp[..], &[1u8], "{}: write ack", engine.label());
    }
    // Read-your-writes through the same client.
    for k in 0..16u64 {
        let resp = client.execute(READ, key_payload(k));
        assert_eq!(
            parse_read(&resp),
            Some(k * 100),
            "{}: read key {k}",
            engine.label()
        );
    }
    // A global snapshot sees every completed write.
    let resp = client.execute(SNAPSHOT, key_payload(0));
    let sum = u64::from_le_bytes(resp[..8].try_into().unwrap());
    assert_eq!(
        sum,
        (0..16).map(|k| k * 100).sum::<u64>(),
        "{}",
        engine.label()
    );
    // Overwrites are visible.
    client.execute(WRITE, write_payload(3, 7));
    let resp = client.execute(READ, key_payload(3));
    assert_eq!(parse_read(&resp), Some(7), "{}", engine.label());
}

#[test]
fn psmr_basic_session() {
    let engine = PsmrEngine::spawn(&cfg(4), spec().into_map(), RegisterMap::new);
    exercise_engine(&engine);
    engine.shutdown();
}

#[test]
fn smr_basic_session() {
    let engine = SmrEngine::spawn(&cfg(1), RegisterMap::new);
    exercise_engine(&engine);
    engine.shutdown();
}

#[test]
fn spsmr_basic_session() {
    let engine = SpSmrEngine::spawn(&cfg(4), spec().into_map(), RegisterMap::new);
    exercise_engine(&engine);
    engine.shutdown();
}

#[test]
fn norep_basic_session() {
    let engine = NoRepEngine::spawn(&cfg(4), spec().into_map(), RegisterMap::new);
    exercise_engine(&engine);
    engine.shutdown();
}

/// Hammers P-SMR with concurrent clients mixing keyed and global commands,
/// then checks the recorded per-key histories are linearizable.
#[test]
fn psmr_concurrent_history_is_linearizable() {
    let engine = Arc::new(PsmrEngine::spawn(
        &cfg(4),
        spec().into_map(),
        RegisterMap::new,
    ));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..6u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = engine.client();
            let mut records: Vec<(u64, OpRecord)> = Vec::new();
            for i in 0..40u64 {
                let key = (c + i) % 4; // heavy per-key contention
                let invoked = t0.elapsed().as_nanos() as u64;
                let op = if (c + i) % 3 == 0 {
                    let value = c * 1000 + i;
                    client.execute(WRITE, write_payload(key, value));
                    RegisterOp::Write { value }
                } else {
                    let resp = client.execute(READ, key_payload(key));
                    RegisterOp::Read {
                        value: parse_read(&resp),
                    }
                };
                let returned = t0.elapsed().as_nanos() as u64;
                records.push((
                    key,
                    OpRecord {
                        invoked,
                        returned,
                        op,
                    },
                ));
            }
            records
        }));
    }
    let mut by_key: HashMap<u64, Vec<OpRecord>> = HashMap::new();
    for h in handles {
        for (key, record) in h.join().unwrap() {
            by_key.entry(key).or_default().push(record);
        }
    }
    for (key, history) in by_key {
        // The checker caps at 63 ops; split long per-key histories into
        // time-ordered chunks, checking each chunk against a wildcard start
        // is unsound — instead verify the whole history fits.
        assert!(history.len() <= 60, "test sized to fit the checker");
        assert_eq!(
            check_register(&history, None),
            Verdict::Linearizable,
            "key {key} history not linearizable"
        );
    }
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

/// Replica convergence: with 2 replicas, both must execute the same number
/// of commands and end in the same state. We detect divergence through the
/// snapshot command, which every replica computes independently — the
/// client proxy keeps the first response, so we issue it repeatedly from
/// fresh clients to sample both replicas.
#[test]
fn psmr_replicas_converge_under_contention() {
    let engine = Arc::new(PsmrEngine::spawn(
        &cfg(3),
        spec().into_map(),
        RegisterMap::new,
    ));
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = engine.client();
            for i in 0..50u64 {
                let key = i % 7;
                client.execute(WRITE, write_payload(key, c * 10_000 + i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All writes done. Snapshots from any replica must now agree (the sum
    // is deterministic once the same writes are applied in the same per-key
    // order).
    let mut client = engine.client();
    let s1 = client.execute(SNAPSHOT, key_payload(0));
    let s2 = client.execute(SNAPSHOT, key_payload(0));
    assert_eq!(s1, s2, "replica snapshots disagree");
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

/// Dependent commands must never execute concurrently (the §IV-E safety
/// argument). The service asserts exclusivity internally.
#[test]
fn psmr_global_commands_execute_in_isolation() {
    struct ExclusiveProbe {
        in_global: AtomicU64,
        slots: RwLock<HashMap<u64, u64>>,
    }
    impl Service for ExclusiveProbe {
        fn execute(&self, cmd: CommandId, payload: &[u8]) -> Vec<u8> {
            let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
            match cmd {
                SNAPSHOT => {
                    assert_eq!(
                        self.in_global.fetch_add(1, Ordering::SeqCst),
                        0,
                        "global command overlapped another global command"
                    );
                    std::thread::sleep(Duration::from_micros(200));
                    self.in_global.fetch_sub(1, Ordering::SeqCst);
                    vec![0]
                }
                WRITE => {
                    assert_eq!(
                        self.in_global.load(Ordering::SeqCst),
                        0,
                        "keyed write overlapped a global command"
                    );
                    let v = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                    self.slots.write().insert(key, v);
                    vec![1]
                }
                _ => vec![0],
            }
        }
    }
    let engine = Arc::new(PsmrEngine::spawn(&cfg(4), spec().into_map(), || {
        ExclusiveProbe {
            in_global: AtomicU64::new(0),
            slots: RwLock::new(HashMap::new()),
        }
    }));
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut client = engine.client();
            for i in 0..30u64 {
                if i % 5 == 4 {
                    client.execute(SNAPSHOT, key_payload(0));
                } else {
                    client.execute(WRITE, write_payload((c * 31 + i) % 16, i));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

/// The windowed client interface sustains many outstanding commands, as the
/// paper's closed-loop clients do (window of 50).
#[test]
fn windowed_clients_complete_all_requests() {
    let engine = PsmrEngine::spawn(&cfg(4), spec().into_map(), RegisterMap::new);
    let mut client = engine.client();
    let mut completed = 0u64;
    let total = 500u64;
    let window = 50;
    let mut issued = 0u64;
    while completed < total {
        while issued < total && client.outstanding() < window {
            client.submit(WRITE, write_payload(issued % 32, issued));
            issued += 1;
        }
        let _ = client.recv_response();
        completed += 1;
    }
    assert_eq!(client.outstanding(), 0);
    drop(client);
    engine.shutdown();
}

/// MPL=1 P-SMR degenerates gracefully (everything serializes through the
/// one worker and g_all).
#[test]
fn psmr_mpl_one_still_correct() {
    let engine = PsmrEngine::spawn(&cfg(1), spec().into_map(), RegisterMap::new);
    exercise_engine(&engine);
    engine.shutdown();
}
