//! Seeded frame-codec property test: arbitrary split/coalesce of the
//! byte stream across `read()` boundaries, a torn final frame, and
//! bit-flipped bytes must never panic the decoder, never invent a
//! frame, and always yield the exact valid prefix.
//!
//! Same discipline as `crates/wal/tests/torn_tail.rs`: the whole case
//! derives from the seed, so a failing line like `seed 17, cut at 113`
//! reproduces exactly.

use psmr_net::frame::{encode_frame, FrameDecoder, HEADER_LEN};

/// splitmix64 — tiny, seedable, and good enough to scatter offsets.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded message sequence and its concatenated wire image.
fn build_stream(rng: &mut Rng) -> (Vec<Vec<u8>>, Vec<u8>) {
    let count = rng.below(18) + 3;
    let mut frames = Vec::new();
    let mut wire = Vec::new();
    for _ in 0..count {
        let len = rng.below(200) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        wire.extend_from_slice(&encode_frame(&payload));
        frames.push(payload);
    }
    (frames, wire)
}

/// Feeds `bytes` to the decoder in seeded arbitrary chunks — sometimes
/// byte-by-byte, sometimes coalescing several frames per push — pulling
/// every available frame between pushes. Returns the yielded frames and
/// whether the decoder ended poisoned.
fn drive(rng: &mut Rng, bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut dec = FrameDecoder::new();
    let mut yielded = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let chunk = (rng.below(512) + 1) as usize;
        let end = (at + chunk).min(bytes.len());
        dec.push(&bytes[at..end]);
        at = end;
        // Sometimes let input pile up before decoding (coalesce).
        if rng.below(4) == 0 && at < bytes.len() {
            continue;
        }
        loop {
            match dec.next() {
                Ok(Some(frame)) => yielded.push(frame),
                Ok(None) => break,
                Err(_) => return (yielded, true),
            }
        }
    }
    // Drain whatever the last pushes completed.
    loop {
        match dec.next() {
            Ok(Some(frame)) => yielded.push(frame),
            Ok(None) => return (yielded, false),
            Err(_) => return (yielded, true),
        }
    }
}

/// Index of the frame containing wire byte `pos`, given each frame's
/// total wire length.
fn frame_at(frames: &[Vec<u8>], pos: usize) -> usize {
    let mut offset = 0;
    for (idx, f) in frames.iter().enumerate() {
        offset += HEADER_LEN + f.len();
        if pos < offset {
            return idx;
        }
    }
    frames.len()
}

#[test]
fn torn_streams_yield_the_exact_complete_prefix() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed);
        let (frames, wire) = build_stream(&mut rng);
        let cut = rng.below(wire.len() as u64 + 1) as usize;
        let ctx = format!("seed {seed}: cut at {cut} of {}", wire.len());

        // How many frames are wholly inside the prefix.
        let mut complete = 0;
        let mut offset = 0;
        for f in &frames {
            offset += HEADER_LEN + f.len();
            if offset <= cut {
                complete += 1;
            } else {
                break;
            }
        }

        let (yielded, poisoned) = drive(&mut rng, &wire[..cut]);
        assert!(!poisoned, "{ctx}: a torn tail is not corruption");
        assert_eq!(
            yielded.len(),
            complete,
            "{ctx}: decoder must yield every complete frame and nothing more"
        );
        assert_eq!(yielded, frames[..complete].to_vec(), "{ctx}");
    }
}

#[test]
fn bit_flips_never_surface_a_wrong_frame() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed ^ 0xB17_F11B);
        let (frames, mut wire) = build_stream(&mut rng);
        let pos = rng.below(wire.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        wire[pos] ^= 1 << bit;
        let damaged = frame_at(&frames, pos);
        let ctx = format!("seed {seed}: flip bit {bit} at byte {pos} (frame {damaged})");

        let (yielded, poisoned) = drive(&mut rng, &wire);
        // Every frame before the damaged one decodes exactly; the
        // damaged frame either poisons the decoder (crc/size check) or
        // desynchronizes the length field so the stream ends torn —
        // never a wrong frame handed upward.
        assert_eq!(
            yielded.len(),
            damaged,
            "{ctx}: must yield exactly the frames before the corruption"
        );
        assert_eq!(yielded, frames[..damaged].to_vec(), "{ctx}");
        if !poisoned {
            // Not poisoned means the flipped length made the decoder
            // wait for bytes that never arrive — legal, but only when
            // the flip landed in a length field.
            let in_header = {
                let mut offset = 0;
                let mut header = false;
                for f in &frames {
                    if pos < offset + HEADER_LEN {
                        header = true;
                        break;
                    }
                    offset += HEADER_LEN + f.len();
                    if pos < offset {
                        break;
                    }
                }
                header
            };
            assert!(
                in_header,
                "{ctx}: an un-poisoned decoder is only legal for a header flip"
            );
        }
    }
}

/// Chaos-shaped streams — seeded compositions of the mutations the
/// `psmr-net` chaos engine injects on live links (duplicated chunks,
/// bit flips, truncation) — must never panic the decoder and never make
/// it invent a frame: everything yielded is byte-identical to a frame
/// that was actually encoded, and a poisoned decoder stays poisoned.
#[test]
fn chaos_streams_never_yield_invented_frames() {
    for seed in 0..96u64 {
        let mut rng = Rng(seed ^ 0xC4A0_55ED);
        let (frames, wire) = build_stream(&mut rng);
        let mut bytes = wire.clone();
        let mutations = rng.below(3) + 1;
        let mut applied = Vec::new();
        for _ in 0..mutations {
            if bytes.is_empty() {
                break;
            }
            match rng.below(3) {
                0 => {
                    // Duplicate a chunk in place — whole-frame chunks
                    // model the chaos duplicator, partial chunks model
                    // replayed overlap after a reconnect.
                    let start = rng.below(bytes.len() as u64) as usize;
                    let len = (rng.below(256) + 1) as usize;
                    let end = (start + len).min(bytes.len());
                    let mut spliced = bytes[..end].to_vec();
                    spliced.extend_from_slice(&bytes[start..end]);
                    spliced.extend_from_slice(&bytes[end..]);
                    bytes = spliced;
                    applied.push(format!("dup {start}..{end}"));
                }
                1 => {
                    let pos = rng.below(bytes.len() as u64) as usize;
                    let bit = rng.below(8) as u8;
                    bytes[pos] ^= 1 << bit;
                    applied.push(format!("flip {pos}:{bit}"));
                }
                _ => {
                    let keep = rng.below(bytes.len() as u64 + 1) as usize;
                    bytes.truncate(keep);
                    applied.push(format!("truncate to {keep}"));
                }
            }
        }
        let ctx = format!("seed {seed}: {}", applied.join(", "));

        let (yielded, poisoned) = drive(&mut rng, &bytes);
        for frame in &yielded {
            assert!(
                frames.iter().any(|original| original == frame),
                "{ctx}: decoder yielded a frame that was never encoded"
            );
        }
        if poisoned {
            // Poison must be sticky: re-drive the same bytes in one
            // push and keep pulling past the first error. Decoding is
            // fragmentation-invariant, so the one-push decoder must
            // reach the same poison within a bounded number of pulls.
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let mut hit_err = false;
            for _ in 0..bytes.len() + 4 {
                match dec.next() {
                    Err(_) => {
                        hit_err = true;
                        break;
                    }
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                }
            }
            assert!(hit_err, "{ctx}: chunked drive poisoned, one push did not");
            for _ in 0..3 {
                assert!(dec.next().is_err(), "{ctx}: poisoned decoder recovered");
            }
        }
    }
}

/// Byte-at-a-time feeding — the worst-case `read()` fragmentation —
/// decodes identically to one big push.
#[test]
fn byte_at_a_time_equals_one_push() {
    let mut rng = Rng(0xFEED);
    let (frames, wire) = build_stream(&mut rng);
    let mut one = FrameDecoder::new();
    one.push(&wire);
    let mut trickle = FrameDecoder::new();
    let mut from_one = Vec::new();
    while let Ok(Some(f)) = one.next() {
        from_one.push(f);
    }
    let mut from_trickle = Vec::new();
    for &b in &wire {
        trickle.push(&[b]);
        while let Ok(Some(f)) = trickle.next() {
            from_trickle.push(f);
        }
    }
    assert_eq!(from_one, frames);
    assert_eq!(from_trickle, frames);
}
