//! Reconnect semantics of the TCP mesh, driven by raw-socket fake
//! peers so each scenario is deterministic:
//!
//! * a peer that is down at connect time — frames queue and deliver
//!   once it comes up (dial-with-backoff);
//! * a connection severed mid-stream — the dialer reconnects
//!   (`net_reconnects`) and replays its resend buffer
//!   (`net_frames_resent`);
//! * duplicate delivery on reconnect — the receiver's per-peer
//!   sequence filter drops the replayed prefix
//!   (`net_frames_dup_dropped`);
//! * a **restarted** peer (new incarnation in the HELLO/ack handshake)
//!   — the dialer discards its resend buffer instead of replaying
//!   frames addressed to the dead process, and the receiver lifts its
//!   dup floor so the restarted sender's fresh sequence numbers
//!   deliver.

use psmr_common::metrics::{counters, global};
use psmr_net::frame::{encode_frame, FrameDecoder};
use psmr_net::{ClusterConfig, NodeSpec, TcpMesh};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(20);

/// The labeled name a `scoped("peer", p)` instrument writes alongside
/// its plain rollup.
fn peer_counter(name: &str, peer: u64) -> String {
    format!("{name}{{peer={peer}}}")
}

/// Reserves a loopback port by binding and immediately releasing it.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind :0");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// A two-node cluster config over the given mesh addresses.
fn two_nodes(addr0: String, addr1: String) -> ClusterConfig {
    let node = |addr: String| NodeSpec {
        addr,
        client_addr: "127.0.0.1:0".to_string(),
        admin_addr: String::new(),
        data_dir: std::env::temp_dir().join("psmr-net-test"),
    };
    ClusterConfig {
        nodes: vec![node(addr0), node(addr1)],
    }
}

/// One data frame as the raw fake peer decodes it off the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RawFrame {
    seq: u64,
    chan: u8,
    body: Vec<u8>,
}

/// Reads frames off `stream` until `want` data frames arrived (HELLO
/// frames are validated and skipped). Panics on deadline.
fn read_frames(stream: &mut TcpStream, want: usize, ctx: &str) -> Vec<RawFrame> {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("set timeout");
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    let start = Instant::now();
    while out.len() < want {
        assert!(start.elapsed() < DEADLINE, "{ctx}: timed out at {out:?}");
        match stream.read(&mut buf) {
            Ok(0) => panic!("{ctx}: peer closed early at {out:?}"),
            Ok(n) => {
                decoder.push(&buf[..n]);
                while let Ok(Some(payload)) = decoder.next() {
                    match payload[0] {
                        1 => assert_eq!(payload.len(), 17, "{ctx}: malformed HELLO"),
                        0 => out.push(RawFrame {
                            seq: u64::from_le_bytes(payload[1..9].try_into().unwrap()),
                            chan: payload[9],
                            body: payload[26..].to_vec(),
                        }),
                        k => panic!("{ctx}: unknown frame kind {k}"),
                    }
                }
            }
            Err(_) => {}
        }
    }
    out
}

/// Encodes a wire data frame the way a sending mesh would.
fn raw_data_frame(seq: u64, chan: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = vec![0u8];
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.push(chan);
    payload.extend_from_slice(&0u64.to_le_bytes()); // from
    payload.extend_from_slice(&1u64.to_le_bytes()); // to
    payload.extend_from_slice(body);
    encode_frame(&payload)
}

fn raw_hello(proc_id: u64, incarnation: u64) -> Vec<u8> {
    let mut payload = vec![1u8];
    payload.extend_from_slice(&proc_id.to_le_bytes());
    payload.extend_from_slice(&incarnation.to_le_bytes());
    encode_frame(&payload)
}

/// The ack a listening mesh answers HELLO with; fake listening peers
/// must send one before the dialer releases any data frames.
fn raw_ack(incarnation: u64) -> Vec<u8> {
    let mut payload = vec![2u8];
    payload.extend_from_slice(&incarnation.to_le_bytes());
    encode_frame(&payload)
}

#[test]
fn peer_down_at_connect_queues_and_delivers_once_it_arrives() {
    let addr0 = free_addr();
    let addr1 = free_addr();
    let mesh = TcpMesh::spawn(0, &two_nodes(addr0, addr1.clone())).expect("spawn mesh");
    // Peer 1 is down; these queue behind the backing-off dialer.
    for i in 0..3u8 {
        assert!(mesh.send(1, 7, 10, 11, &[i]));
    }
    // Let a few dial attempts fail so the test exercises the backoff
    // path, not just a slow first connect.
    std::thread::sleep(Duration::from_millis(120));
    // While the peer is down the link reports disconnected with the
    // queued frames parked in its resend buffer.
    let status = mesh.peer_status();
    assert_eq!(status.len(), 1, "one outbound peer");
    assert_eq!(status[0].peer, 1);
    assert!(!status[0].connected, "peer is down");
    assert_eq!(status[0].resend_depth, 3, "queued frames are buffered");
    let backoffs = global().value(&peer_counter(counters::NET_BACKOFF_SLEEPS, 1));
    assert!(backoffs > 0, "failed dials must count backoff sleeps");
    let listener = TcpListener::bind(&addr1).expect("bind peer late");
    let (mut conn, _) = listener.accept().expect("accept");
    conn.write_all(&raw_ack(70)).expect("ack hello");
    let frames = read_frames(&mut conn, 3, "late peer");
    assert_eq!(
        frames,
        vec![
            RawFrame {
                seq: 1,
                chan: 7,
                body: vec![0]
            },
            RawFrame {
                seq: 2,
                chan: 7,
                body: vec![1]
            },
            RawFrame {
                seq: 3,
                chan: 7,
                body: vec![2]
            },
        ],
        "queued frames deliver in order once the peer is up"
    );
    // The handshake flipped the link to connected and counted under the
    // peer-labeled connect counter.
    let start = Instant::now();
    while !mesh.peer_status()[0].connected {
        assert!(start.elapsed() < DEADLINE, "link never marked connected");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        global().value(&peer_counter(counters::NET_CONNECTS, 1)) > 0,
        "successful handshakes must count under net_connects{{peer=1}}"
    );
    mesh.shutdown();
}

#[test]
fn severed_connection_reconnects_and_replays_the_buffer() {
    let addr0 = free_addr();
    let addr1 = free_addr();
    let listener = TcpListener::bind(&addr1).expect("bind peer");
    let mesh = TcpMesh::spawn(0, &two_nodes(addr0, addr1)).expect("spawn mesh");
    for i in 0..3u8 {
        assert!(mesh.send(1, 2, 0, 1, &[i]));
    }
    let (mut conn, _) = listener.accept().expect("accept first");
    conn.write_all(&raw_ack(70)).expect("ack hello");
    let first = read_frames(&mut conn, 3, "before sever");
    assert_eq!(first.iter().map(|f| f.seq).collect::<Vec<_>>(), [1, 2, 3]);

    let reconnects_before = global().value(counters::NET_RECONNECTS);
    let resent_before = global().value(counters::NET_FRAMES_RESENT);
    let labeled_reconnects_before = global().value(&peer_counter(counters::NET_RECONNECTS, 1));
    let labeled_resent_before = global().value(&peer_counter(counters::NET_FRAMES_RESENT, 1));
    drop(conn); // sever mid-stream

    // Keep offering traffic until the dialer notices the dead socket
    // (TCP only surfaces the reset on a later write) and re-dials.
    listener.set_nonblocking(true).expect("nonblocking accept");
    let start = Instant::now();
    let mut extra = 3u8;
    let mut second = loop {
        assert!(
            start.elapsed() < DEADLINE,
            "dialer never reconnected after sever"
        );
        assert!(mesh.send(1, 2, 0, 1, &[extra]));
        extra += 1;
        match listener.accept() {
            Ok((mut conn, _)) => {
                conn.set_nonblocking(false).expect("blocking conn");
                // Same incarnation: this is the same fake process, so
                // the dialer must keep and replay its buffer.
                conn.write_all(&raw_ack(70)).expect("ack hello again");
                break conn;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    // The reconnect counts only once the HELLO/ack handshake finishes,
    // which races the accept above — poll instead of asserting at once.
    let counted = Instant::now();
    while global().value(counters::NET_RECONNECTS) <= reconnects_before {
        assert!(
            counted.elapsed() < DEADLINE,
            "re-dial must count under net_reconnects"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The replay starts at the buffer's front: the already-delivered
    // frames 1..3 are written again (and counted as resends), followed
    // by whatever the loop above queued. `read_frames` may decode more
    // than it was asked for, so assert on the prefix.
    let replay = read_frames(&mut second, 3, "replay after reconnect");
    let seqs: Vec<u64> = replay.iter().map(|f| f.seq).collect();
    assert_eq!(
        seqs[..3],
        [1, 2, 3],
        "resend buffer replays wholesale from its oldest retained frame"
    );
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "replay and fresh traffic stay in per-link order: {seqs:?}"
    );
    let deadline = Instant::now();
    while global().value(counters::NET_FRAMES_RESENT) < resent_before + 3 {
        assert!(
            deadline.elapsed() < DEADLINE,
            "replayed frames must count under net_frames_resent"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The same events land on the peer-labeled instruments the admin
    // endpoint exposes, not only the plain rollups.
    assert!(
        global().value(&peer_counter(counters::NET_RECONNECTS, 1)) > labeled_reconnects_before,
        "re-dial must count under net_reconnects{{peer=1}}"
    );
    assert!(
        global().value(&peer_counter(counters::NET_FRAMES_RESENT, 1)) >= labeled_resent_before + 3,
        "replays must count under net_frames_resent{{peer=1}}"
    );
    mesh.shutdown();
}

#[test]
fn receiver_drops_replayed_duplicates_after_reconnect() {
    // Listener-accept requires the accept loop, so keep the nonblocking
    // listener-based mesh as the receiving side (node 1 of the pair).
    let addr0 = free_addr();
    let addr1 = free_addr();
    let mesh = TcpMesh::spawn(1, &two_nodes(addr0, addr1.clone())).expect("spawn mesh");
    let inbox = mesh.subscribe(3);
    let dups_before = global().value(counters::NET_FRAMES_DUP_DROPPED);
    // The fake sender HELLOs as process 0, so its drops are labeled
    // peer=0 on the receiving mesh.
    let labeled_dups_before = global().value(&peer_counter(counters::NET_FRAMES_DUP_DROPPED, 0));

    // First incarnation of the sending connection: seqs 1..=5.
    let mut conn = TcpStream::connect(&addr1).expect("dial mesh");
    conn.write_all(&raw_hello(0, 70)).expect("hello");
    for seq in 1..=5u64 {
        conn.write_all(&raw_data_frame(seq, 3, &[seq as u8]))
            .expect("send");
    }
    // Drain the first incarnation's deliveries before replaying: the
    // two connections are read by different threads, and an undrained
    // frame here could otherwise race the replay below, lose the
    // dup-floor race, and be suppressed as a false duplicate.
    let mut seen = Vec::new();
    let start = Instant::now();
    while seen.len() < 5 {
        assert!(
            start.elapsed() < DEADLINE,
            "missing first-connection deliveries; got {seen:?}"
        );
        if let Ok(inbound) = inbox.recv_timeout(Duration::from_millis(50)) {
            seen.push(inbound.body[0]);
        }
    }
    drop(conn);

    // Reconnect (same incarnation: same fake process) and replay a
    // buffer overlapping what was delivered: seqs 3..=8 — exactly what
    // a mesh dialer does after a sever.
    let mut conn = TcpStream::connect(&addr1).expect("redial mesh");
    conn.write_all(&raw_hello(0, 70)).expect("hello again");
    for seq in 3..=8u64 {
        conn.write_all(&raw_data_frame(seq, 3, &[seq as u8]))
            .expect("resend");
    }

    // Exactly once each: 1..=8 in order, with the replayed 3..=5
    // suppressed.
    let start = Instant::now();
    while seen.len() < 8 {
        assert!(
            start.elapsed() < DEADLINE,
            "missing deliveries; got {seen:?}"
        );
        if let Ok(inbound) = inbox.recv_timeout(Duration::from_millis(50)) {
            seen.push(inbound.body[0]);
        }
    }
    assert_eq!(seen, (1..=8u8).collect::<Vec<_>>());
    assert!(
        inbox.recv_timeout(Duration::from_millis(100)).is_err(),
        "duplicates must not deliver: got extra {seen:?}"
    );
    assert!(
        global().value(counters::NET_FRAMES_DUP_DROPPED) >= dups_before + 3,
        "suppressed replays must count under net_frames_dup_dropped"
    );
    assert!(
        global().value(&peer_counter(counters::NET_FRAMES_DUP_DROPPED, 0))
            >= labeled_dups_before + 3,
        "suppressed replays must count under net_frames_dup_dropped{{peer=0}}"
    );
    mesh.shutdown();
}

#[test]
fn restarted_peer_gets_no_replay_of_the_old_incarnations_frames() {
    let addr0 = free_addr();
    let addr1 = free_addr();
    let listener = TcpListener::bind(&addr1).expect("bind peer");
    let mesh = TcpMesh::spawn(0, &two_nodes(addr0, addr1)).expect("spawn mesh");
    for i in 0..3u8 {
        assert!(mesh.send(1, 2, 0, 1, &[i]));
    }
    // First incarnation of the fake peer receives seqs 1..=3.
    let (mut conn, _) = listener.accept().expect("accept first");
    conn.write_all(&raw_ack(70)).expect("ack hello");
    let first = read_frames(&mut conn, 3, "first incarnation");
    assert_eq!(first.iter().map(|f| f.seq).collect::<Vec<_>>(), [1, 2, 3]);
    drop(conn);

    // Frames queued while the peer is "dead" are addressed to a process
    // that will never read them.
    for i in 10..13u8 {
        assert!(mesh.send(1, 2, 0, 1, &[i]));
    }

    // The restarted peer acks with a NEW incarnation: the dialer must
    // discard its whole buffer rather than replay it. Only traffic
    // queued after the discard may arrive.
    listener.set_nonblocking(true).expect("nonblocking accept");
    let start = Instant::now();
    let mut second = loop {
        assert!(start.elapsed() < DEADLINE, "dialer never re-dialed");
        assert!(mesh.send(1, 2, 0, 1, &[99]));
        match listener.accept() {
            Ok((mut conn, _)) => {
                conn.set_nonblocking(false).expect("blocking conn");
                conn.write_all(&raw_ack(71))
                    .expect("ack as new incarnation");
                break conn;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    // Queue one frame strictly after the handshake so something is
    // guaranteed to flow on the new connection.
    assert!(mesh.send(1, 2, 0, 1, &[100]));
    let fresh = read_frames(&mut second, 1, "after restart");
    assert!(
        fresh
            .iter()
            .all(|f| f.seq > 3 && f.body != vec![0] && f.body != vec![1]),
        "old incarnation's frames must not replay to the new one: {fresh:?}"
    );
    mesh.shutdown();
}

#[test]
fn receiver_accepts_restarted_senders_fresh_sequence_numbers() {
    let addr0 = free_addr();
    let addr1 = free_addr();
    let mesh = TcpMesh::spawn(1, &two_nodes(addr0, addr1.clone())).expect("spawn mesh");
    let inbox = mesh.subscribe(3);

    // First incarnation of the sender: seqs 1..=3.
    let mut conn = TcpStream::connect(&addr1).expect("dial mesh");
    conn.write_all(&raw_hello(0, 70)).expect("hello");
    for seq in 1..=3u64 {
        conn.write_all(&raw_data_frame(seq, 3, &[seq as u8]))
            .expect("send");
    }
    drop(conn);

    // Wait for the first incarnation's frames before redialing, so the
    // two connections' reader threads cannot interleave their HELLOs
    // (incarnation ids are unordered; a real restarted sender never has
    // two live connections racing like that).
    let mut seen = Vec::new();
    let start = Instant::now();
    while seen.len() < 3 {
        assert!(
            start.elapsed() < DEADLINE,
            "first incarnation never delivered; got {seen:?}"
        );
        if let Ok(inbound) = inbox.recv_timeout(Duration::from_millis(50)) {
            seen.push(inbound.body[0]);
        }
    }

    // The restarted sender starts its sequence numbers over at 1. With
    // a proc-only dup filter these would all be swallowed as replays;
    // the incarnation in HELLO must lift the floor.
    let mut conn = TcpStream::connect(&addr1).expect("redial mesh");
    conn.write_all(&raw_hello(0, 71))
        .expect("hello as new incarnation");
    for seq in 1..=3u64 {
        conn.write_all(&raw_data_frame(seq, 3, &[10 + seq as u8]))
            .expect("send");
    }

    let start = Instant::now();
    while seen.len() < 6 {
        assert!(
            start.elapsed() < DEADLINE,
            "missing deliveries; got {seen:?}"
        );
        if let Ok(inbound) = inbox.recv_timeout(Duration::from_millis(50)) {
            seen.push(inbound.body[0]);
        }
    }
    assert_eq!(seen, vec![1, 2, 3, 11, 12, 13]);
    mesh.shutdown();
}
