//! Length-prefixed, crc-framed envelopes — the wire format every TCP
//! link in the [`crate`] speaks.
//!
//! A frame is `len (u32 LE) | crc32 (u32 LE) | payload`, with the crc —
//! the shared [`psmr_common::crc::crc32`], the same checksum the WAL
//! record frames use — computed over the payload alone. TCP already
//! guarantees ordered delivery, so the codec's job is narrower than a
//! datagram protocol's: delimit messages across arbitrary `read()`
//! boundaries and refuse to hand corrupt bytes upward.
//!
//! The failure model mirrors the WAL's torn-tail contract: a stream that
//! ends mid-frame (peer died between writes) yields the exact prefix of
//! complete frames and then simply stops; a frame whose crc does not
//! match (bit rot, a desynchronized peer) surfaces a typed error and
//! **poisons the decoder** — there is no resynchronization heuristic, the
//! connection is torn down and re-established instead, which the
//! transport's sequence numbers make safe (see [`crate::tcp`]).

use psmr_common::crc::crc32;
use std::fmt;

/// Bytes of framing before the payload: length + crc.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single frame's payload. Anything larger is treated
/// as corruption (a flipped length byte would otherwise make the decoder
/// wait forever for petabytes that never come).
pub const MAX_FRAME: usize = 64 << 20;

/// Why a frame stream is unusable from some point on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A frame header announced a payload longer than [`MAX_FRAME`].
    TooLarge {
        /// The announced payload length.
        len: usize,
    },
    /// A complete frame arrived whose payload fails its crc.
    Corrupt,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len } => {
                write!(f, "frame announces {len} payload bytes (cap {MAX_FRAME})")
            }
            FrameError::Corrupt => write!(f, "frame payload fails its crc"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one payload as a single wire frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload over MAX_FRAME");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder: feed it whatever `read()` returned, pull
/// complete frames out.
///
/// # Example
///
/// ```
/// use psmr_net::frame::{encode_frame, FrameDecoder};
///
/// let mut dec = FrameDecoder::new();
/// let wire = encode_frame(b"hello");
/// dec.push(&wire[..3]); // arbitrary split
/// assert_eq!(dec.next().unwrap(), None); // torn: not an error
/// dec.push(&wire[3..]);
/// assert_eq!(dec.next().unwrap(), Some(b"hello".to_vec()));
/// assert_eq!(dec.next().unwrap(), None);
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Offset of the first undecoded byte in `buf` (consumed bytes are
    /// compacted away lazily).
    start: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes to the buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames (the torn tail, if
    /// the stream ended here).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The next complete frame's payload; `Ok(None)` when the buffered
    /// bytes end mid-frame (push more and retry).
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the buffered bytes cannot be a valid frame
    /// stream; the decoder stays poisoned and every later call returns
    /// the same error — tear the connection down.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            self.poisoned = Some(FrameError::TooLarge { len });
            return Err(FrameError::TooLarge { len });
        }
        let crc = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            self.poisoned = Some(FrameError::Corrupt);
            return Err(FrameError::Corrupt);
        }
        let frame = payload.to_vec();
        self.start += HEADER_LEN + len;
        // Compact lazily: only when the dead prefix dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_delimits_back_to_back_frames() {
        let mut wire = Vec::new();
        for i in 0..5u8 {
            wire.extend_from_slice(&encode_frame(&vec![i; i as usize * 7]));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        for i in 0..5u8 {
            assert_eq!(dec.next().unwrap(), Some(vec![i; i as usize * 7]));
        }
        assert_eq!(dec.next().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(b""));
        assert_eq!(dec.next().unwrap(), Some(Vec::new()));
    }

    #[test]
    fn oversize_header_poisons() {
        let mut dec = FrameDecoder::new();
        let mut bad = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bad.extend_from_slice(&[0; 4]);
        dec.push(&bad);
        assert!(matches!(dec.next(), Err(FrameError::TooLarge { .. })));
        // Poisoned: the same error again, even after more bytes.
        dec.push(&encode_frame(b"later"));
        assert!(matches!(dec.next(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn crc_mismatch_poisons() {
        let mut wire = encode_frame(b"payload");
        let last = wire.len() - 1;
        wire[last] ^= 0x10;
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next(), Err(FrameError::Corrupt));
        assert_eq!(dec.next(), Err(FrameError::Corrupt));
    }
}
