//! # psmr-net — the real TCP network substrate
//!
//! Everything in this workspace runs, by default, over the in-process
//! [`psmr_netsim::LiveNet`] channel network — the right substrate for
//! deterministic tests and `psmr-sim`. This crate adds the second
//! substrate the paper's evaluation assumes: **real sockets between
//! real OS processes**, selected by cluster config rather than code.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed, crc-framed envelopes over a byte
//!   stream (torn tails yield a clean prefix; corrupt frames poison).
//! * [`chaos`] — per-link fault injection (drop, delay, duplicate,
//!   corrupt, partition, throttle) behind a runtime-swappable policy
//!   handle, threaded into the mesh's writer/reader paths.
//! * [`cluster`] — the `NodeId` → `SocketAddr` routing table, parsed
//!   from a small TOML subset.
//! * [`tcp`] — the per-process mesh: per-peer outbound queues,
//!   reconnect with backoff, replay-on-reconnect with receiver-side
//!   duplicate suppression, channel multiplexing.
//! * [`codec`] — wire codecs for the paxos and state-transfer messages.
//! * [`bridge`] — splices a `LiveNet` onto a mesh channel, so the
//!   protocol code runs unmodified over either substrate.
//!
//! The `psmr-node` / `psmr-client` binaries (crate `psmr-node`) put
//! these together into an N-process deployment.

pub mod bridge;
pub mod chaos;
pub mod cluster;
pub mod codec;
pub mod frame;
pub mod tcp;

pub use bridge::{Bridge, OwnerFn};
pub use chaos::{ChaosHandle, ChaosPolicy, LinkChaos};
pub use cluster::{ClusterConfig, ClusterError, NodeSpec};
pub use frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME};
pub use tcp::{Inbound, PeerStatus, TcpMesh};
