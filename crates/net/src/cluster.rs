//! Cluster topology: the `NodeId` → `SocketAddr` routing table a
//! multi-process deployment is launched from.
//!
//! The config is a flat TOML file with one `[[node]]` section per
//! process, in node-id order:
//!
//! ```toml
//! [[node]]
//! addr = "127.0.0.1:7401"        # mesh listener (node ↔ node traffic)
//! client_addr = "127.0.0.1:7501" # client listener
//! admin_addr = "127.0.0.1:7601"  # admin endpoint (metrics/trace/status)
//! data_dir = "/var/lib/psmr/n0"  # WAL + snapshots of this node
//! ```
//!
//! The parser below covers exactly that subset (sections, quoted-string
//! and integer values, `#` comments) — the build environment vendors no
//! TOML crate, and the deployment config needs nothing more.

use std::fmt;
use std::path::PathBuf;

/// One process in the deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Address the node's mesh listener binds (peer traffic).
    pub addr: String,
    /// Address the node's client listener binds.
    pub client_addr: String,
    /// Address the node's admin endpoint binds (`metrics` / `trace` /
    /// `status` queries). Empty string = admin endpoint disabled, so
    /// pre-existing configs keep parsing.
    pub admin_addr: String,
    /// Directory holding the node's WAL and durable snapshots.
    pub data_dir: PathBuf,
}

/// The parsed routing table. Node id = position of its `[[node]]`
/// section; node 0 hosts the serialized orderer in the deployments the
/// `psmr-node` binary spawns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterConfig {
    /// The deployment's nodes, in id order.
    pub nodes: Vec<NodeSpec>,
}

/// Why a cluster config did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A line was neither a section header, a `key = value`, nor blank.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A `key = value` appeared before any `[[node]]` section.
    KeyOutsideNode {
        /// 1-based line number.
        line: usize,
    },
    /// A node section is missing a required key.
    MissingKey {
        /// Index of the incomplete node.
        node: usize,
        /// The key that never appeared.
        key: &'static str,
    },
    /// The file declared no nodes at all.
    Empty,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Malformed { line } => write!(f, "line {line}: malformed"),
            ClusterError::KeyOutsideNode { line } => {
                write!(f, "line {line}: key before any [[node]] section")
            }
            ClusterError::MissingKey { node, key } => {
                write!(f, "node {node}: missing required key `{key}`")
            }
            ClusterError::Empty => write!(f, "no [[node]] sections"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterConfig {
    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on any malformed or incomplete input.
    pub fn parse(text: &str) -> Result<Self, ClusterError> {
        let mut nodes: Vec<PartialNode> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = strip_comment(raw).trim().to_string();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed == "[[node]]" {
                nodes.push(PartialNode::default());
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(ClusterError::Malformed { line });
            };
            let Some(node) = nodes.last_mut() else {
                return Err(ClusterError::KeyOutsideNode { line });
            };
            let key = key.trim();
            let value = parse_value(value.trim()).ok_or(ClusterError::Malformed { line })?;
            match key {
                "addr" => node.addr = Some(value),
                "client_addr" => node.client_addr = Some(value),
                "admin_addr" => node.admin_addr = Some(value),
                "data_dir" => node.data_dir = Some(value),
                // Unknown keys are tolerated so configs can carry
                // operator annotations this version does not read.
                _ => {}
            }
        }
        if nodes.is_empty() {
            return Err(ClusterError::Empty);
        }
        nodes
            .into_iter()
            .enumerate()
            .map(|(node, partial)| partial.complete(node))
            .collect::<Result<Vec<_>, _>>()
            .map(|nodes| Self { nodes })
    }

    /// Reads and parses a config file.
    ///
    /// # Errors
    ///
    /// I/O errors are folded into [`ClusterError::Empty`]'s sibling — a
    /// boxed error — by the caller; this returns the parse error or the
    /// read error as a `String` for binary-friendly reporting.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }

    /// Renders the config back to the TOML subset (launchers write the
    /// file they hand to `psmr-node`).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            out.push_str("[[node]]\n");
            out.push_str(&format!("addr = \"{}\"\n", node.addr));
            out.push_str(&format!("client_addr = \"{}\"\n", node.client_addr));
            if !node.admin_addr.is_empty() {
                out.push_str(&format!("admin_addr = \"{}\"\n", node.admin_addr));
            }
            out.push_str(&format!("data_dir = \"{}\"\n\n", node.data_dir.display()));
        }
        out
    }

    /// Number of nodes in the deployment.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the deployment has no nodes (never true for a parsed
    /// config).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Drops a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A `"quoted string"` or bare integer value.
fn parse_value(value: &str) -> Option<String> {
    if let Some(stripped) = value.strip_prefix('"') {
        let inner = stripped.strip_suffix('"')?;
        if inner.contains('"') {
            return None;
        }
        return Some(inner.to_string());
    }
    value.parse::<i64>().ok().map(|_| value.to_string())
}

#[derive(Default)]
struct PartialNode {
    addr: Option<String>,
    client_addr: Option<String>,
    admin_addr: Option<String>,
    data_dir: Option<String>,
}

impl PartialNode {
    fn complete(self, node: usize) -> Result<NodeSpec, ClusterError> {
        let missing = |key| ClusterError::MissingKey { node, key };
        Ok(NodeSpec {
            addr: self.addr.ok_or(missing("addr"))?,
            client_addr: self.client_addr.ok_or(missing("client_addr"))?,
            admin_addr: self.admin_addr.unwrap_or_default(),
            data_dir: PathBuf::from(self.data_dir.ok_or(missing("data_dir"))?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# three-node loopback deployment
[[node]]
addr = "127.0.0.1:7401"   # mesh
client_addr = "127.0.0.1:7501"
data_dir = "/tmp/psmr/n0"

[[node]]
addr = "127.0.0.1:7402"
client_addr = "127.0.0.1:7502"
admin_addr = "127.0.0.1:7602"
data_dir = "/tmp/psmr/n1"

[[node]]
addr = "127.0.0.1:7403"
client_addr = "127.0.0.1:7503"
data_dir = "/tmp/psmr/n2"
"#;

    #[test]
    fn parses_the_documented_shape() {
        let cfg = ClusterConfig::parse(SAMPLE).expect("parse");
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.nodes[0].addr, "127.0.0.1:7401");
        assert_eq!(cfg.nodes[2].client_addr, "127.0.0.1:7503");
        assert_eq!(cfg.nodes[1].data_dir, PathBuf::from("/tmp/psmr/n1"));
        // admin_addr is optional: absent sections parse to "".
        assert_eq!(cfg.nodes[1].admin_addr, "127.0.0.1:7602");
        assert_eq!(cfg.nodes[0].admin_addr, "");
        assert_eq!(cfg.nodes[2].admin_addr, "");
    }

    #[test]
    fn round_trips_through_to_toml() {
        let cfg = ClusterConfig::parse(SAMPLE).expect("parse");
        let again = ClusterConfig::parse(&cfg.to_toml()).expect("reparse");
        assert_eq!(cfg, again);
    }

    #[test]
    fn rejects_incomplete_and_malformed_input() {
        assert_eq!(ClusterConfig::parse(""), Err(ClusterError::Empty));
        assert_eq!(
            ClusterConfig::parse("addr = \"x\""),
            Err(ClusterError::KeyOutsideNode { line: 1 })
        );
        assert_eq!(
            ClusterConfig::parse("[[node]]\naddr = \"x\"\nclient_addr = \"y\""),
            Err(ClusterError::MissingKey {
                node: 0,
                key: "data_dir"
            })
        );
        assert_eq!(
            ClusterConfig::parse("[[node]]\nwhat even is this"),
            Err(ClusterError::Malformed { line: 2 })
        );
        assert_eq!(
            ClusterConfig::parse("[[node]]\naddr = unquoted"),
            Err(ClusterError::Malformed { line: 2 })
        );
    }

    #[test]
    fn comments_inside_strings_are_not_comments() {
        let cfg = ClusterConfig::parse(
            "[[node]]\naddr = \"a#b:1\"\nclient_addr = \"c:2\"\ndata_dir = \"/d\"\n",
        )
        .expect("parse");
        assert_eq!(cfg.nodes[0].addr, "a#b:1");
    }
}
