//! Bridges an in-process [`LiveNet`] onto a [`TcpMesh`] channel.
//!
//! The protocols (paxos groups, state-transfer servers) are written
//! against `LiveNet` and stay unmodified in multi-process deployments.
//! A bridge splices the two substrates together per message type:
//!
//! * **Egress** — the bridge installs a `LiveNet` gateway, so a send to
//!   a node this process does not host is encoded and queued on the
//!   mesh toward the owning process (`owner` maps `NodeId` → process).
//! * **Ingress** — a thread drains the mesh channel, decodes each body
//!   and injects it with [`LiveNet::deliver`], which never re-consults
//!   the gateway: bridged traffic cannot loop back out.
//!
//! Codec and ownership are closures, so one bridge type serves paxos
//! messages, transfer messages, and anything a deployment adds later.

use crate::tcp::TcpMesh;
use psmr_netsim::{LiveNet, NodeId};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maps a protocol-level node id to the process hosting it (`None` =
/// nobody; the send is dropped like any `LiveNet` send to an
/// unregistered node).
pub type OwnerFn = Arc<dyn Fn(NodeId) -> Option<usize> + Send + Sync>;

/// Serializes a protocol message for the mesh (see [`crate::codec`]).
pub type EncodeFn<M> = Arc<dyn Fn(&M) -> Vec<u8> + Send + Sync>;

/// Parses a mesh body back into a protocol message; `None` drops the
/// frame (malformed bodies are treated as loss, like any UDP-ish net).
pub type DecodeFn<M> = Arc<dyn Fn(&[u8]) -> Option<M> + Send + Sync>;

/// A spliced `LiveNet` ↔ mesh channel; keeps the ingress thread.
#[derive(Debug)]
pub struct Bridge {
    ingress: Option<JoinHandle<()>>,
}

impl Bridge {
    /// Splices `net` onto mesh channel `chan`.
    ///
    /// `owner` routes egress traffic; `encode`/`decode` are the message
    /// type's wire codec (see [`crate::codec`]). The ingress thread runs
    /// until the mesh shuts down (its subscription disconnects).
    pub fn splice<M: Send + 'static>(
        net: &LiveNet<M>,
        mesh: &TcpMesh,
        chan: u8,
        owner: OwnerFn,
        encode: EncodeFn<M>,
        decode: DecodeFn<M>,
    ) -> Self {
        let egress_mesh = mesh.clone();
        net.set_gateway(Arc::new(
            move |from: NodeId, to: NodeId, msg: &M| match owner(to) {
                Some(peer) => {
                    egress_mesh.send(peer, chan, from.as_raw(), to.as_raw(), &encode(msg))
                }
                None => false,
            },
        ));
        let rx = mesh.subscribe(chan);
        let ingress_net = net.clone();
        let ingress = std::thread::Builder::new()
            .name(format!("bridge-chan{chan}"))
            .spawn(move || {
                while let Ok(inbound) = rx.recv() {
                    if let Some(msg) = decode(&inbound.body) {
                        ingress_net.deliver(
                            NodeId::new(inbound.from),
                            NodeId::new(inbound.to),
                            msg,
                        );
                    }
                }
            })
            .expect("spawn bridge ingress");
        Self {
            ingress: Some(ingress),
        }
    }

    /// Joins the ingress thread (call after the mesh shut down).
    pub fn stop(mut self) {
        if let Some(t) = self.ingress.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Bridge {
    fn drop(&mut self) {
        if let Some(t) = self.ingress.take() {
            let _ = t.join();
        }
    }
}
