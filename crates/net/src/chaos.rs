//! Per-link network fault injection for the real TCP mesh.
//!
//! The in-process substrates (`psmr-netsim`, `psmr-sim`) can drop,
//! delay, and sever links because they *are* the network; the TCP mesh
//! delegates delivery to the kernel and loses that lever. This module
//! restores it: a [`ChaosPolicy`] describes, per outbound peer, the
//! faults a [`crate::tcp::TcpMesh`] must inject into its own writer and
//! reader paths, and a shared [`ChaosHandle`] lets tests and the admin
//! endpoint swap the policy on a **live** node — no restart, no special
//! build.
//!
//! Faults compose per frame, in this order:
//!
//! 1. **partition** — `out` withholds every data write on the link
//!    (the connection stays up, frames queue in the resend buffer);
//!    `in` discards inbound data frames from the peer before dispatch.
//!    Together they make a symmetric partition of this node.
//! 2. **drop** — with probability `drop_pct`%, the frame is consumed
//!    without being written: loss, exactly like a resend-buffer
//!    eviction.
//! 3. **delay / jitter / throttle** — the writer sleeps
//!    `delay + U(0, jitter) + len/throttle_bps` before the write,
//!    serializing the link at the throttled bandwidth.
//! 4. **corrupt** — with probability `corrupt_pct`%, one byte of the
//!    written frame image is flipped. The receiver's crc check poisons
//!    its decoder and tears the connection down; the dialer reconnects
//!    and replays — the full corruption-recovery path under test.
//! 5. **duplicate** — with probability `duplicate_pct`%, the frame is
//!    written twice; the receiver's sequence filter must drop the copy.
//!
//! Handshake frames (HELLO/ack) are exempt so a chaotic link can still
//! *form*; chaos shapes data traffic. Every injected fault ticks a
//! peer-labeled `chaos_*` counter, so injected misbehavior is exactly
//! as observable as organic misbehavior.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A tiny seedable generator (splitmix64) shared by the chaos engine
/// and the mesh's jittered backoff. Not cryptographic; just scatter.
#[derive(Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self(seed)
    }

    /// The next raw 64-bit value.
    pub fn raw(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.raw() % n
    }

    /// `d` randomized into `[d/2, d]` — the shape every backoff in the
    /// deployment uses, so simultaneous retriers de-synchronize instead
    /// of re-dialing a restarted peer in lockstep.
    pub fn jittered(&mut self, d: Duration) -> Duration {
        let half = d / 2;
        half + Duration::from_nanos(
            self.below(half.as_nanos().min(u128::from(u64::MAX)) as u64 + 1),
        )
    }
}

/// The fault mix injected on one outbound (and, for `partition_in`,
/// inbound) peer link. The default is a clean link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkChaos {
    /// Percent (0–100) of data frames consumed without being written.
    pub drop_pct: u8,
    /// Fixed delay inserted before every data write.
    pub delay: Duration,
    /// Uniform extra delay in `[0, jitter]` added on top of `delay`.
    pub jitter: Duration,
    /// Percent (0–100) of data frames written twice.
    pub duplicate_pct: u8,
    /// Percent (0–100) of data frames written with one byte flipped.
    pub corrupt_pct: u8,
    /// Withhold every outbound data write on this link.
    pub partition_out: bool,
    /// Discard every inbound data frame from this peer before dispatch.
    pub partition_in: bool,
    /// Serialize writes at this many payload bytes per second
    /// (0 = unthrottled).
    pub throttle_bps: u64,
}

impl LinkChaos {
    /// Whether this is the default clean link (nothing to inject).
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    /// Parses the admin-verb argument grammar: whitespace-separated
    /// `key=value` pairs, unspecified keys staying at their clean
    /// default. Keys: `drop`, `dup`, `corrupt` (percent 0–100),
    /// `delay_ms`, `jitter_ms`, `throttle_bps`, and
    /// `partition=out|in|both|off`.
    ///
    /// # Errors
    ///
    /// A human-readable reason on an unknown key, an out-of-range
    /// percentage, or an unparsable value.
    pub fn parse_args(args: &[&str]) -> Result<Self, String> {
        let mut chaos = Self::default();
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("`{arg}`: expected key=value"));
            };
            let pct = || -> Result<u8, String> {
                let v: u8 = value.parse().map_err(|_| format!("`{arg}`: bad percent"))?;
                if v > 100 {
                    return Err(format!("`{arg}`: percent over 100"));
                }
                Ok(v)
            };
            let ms = || -> Result<Duration, String> {
                value
                    .parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("`{arg}`: bad milliseconds"))
            };
            match key {
                "drop" => chaos.drop_pct = pct()?,
                "dup" => chaos.duplicate_pct = pct()?,
                "corrupt" => chaos.corrupt_pct = pct()?,
                "delay_ms" => chaos.delay = ms()?,
                "jitter_ms" => chaos.jitter = ms()?,
                "throttle_bps" => {
                    chaos.throttle_bps = value.parse().map_err(|_| format!("`{arg}`: bad rate"))?;
                }
                "partition" => match value {
                    "out" => chaos.partition_out = true,
                    "in" => chaos.partition_in = true,
                    "both" => {
                        chaos.partition_out = true;
                        chaos.partition_in = true;
                    }
                    "off" => {
                        chaos.partition_out = false;
                        chaos.partition_in = false;
                    }
                    _ => return Err(format!("`{arg}`: expected out|in|both|off")),
                },
                _ => return Err(format!("`{arg}`: unknown key")),
            }
        }
        Ok(chaos)
    }
}

impl fmt::Display for LinkChaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let partition = match (self.partition_out, self.partition_in) {
            (true, true) => "both",
            (true, false) => "out",
            (false, true) => "in",
            (false, false) => "off",
        };
        write!(
            f,
            "drop={} delay_ms={} jitter_ms={} dup={} corrupt={} partition={partition} throttle_bps={}",
            self.drop_pct,
            self.delay.as_millis(),
            self.jitter.as_millis(),
            self.duplicate_pct,
            self.corrupt_pct,
            self.throttle_bps
        )
    }
}

/// The live policy: per-peer link faults. Peers without an entry are
/// clean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPolicy {
    /// Peer id → the faults injected on that link.
    pub links: HashMap<usize, LinkChaos>,
}

/// What the writer must do with one data frame, as decided by
/// [`ChaosHandle::egress_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressPlan {
    /// The link is partitioned outbound: write nothing, keep the frame
    /// queued, re-check later.
    Withhold,
    /// Consume the frame without writing it (injected loss).
    Drop,
    /// Write the frame after `delay`, flipping the byte at
    /// `corrupt_at` (index reduced by the caller into the frame's
    /// crc+payload region, so the damage is always crc-detectable) in a
    /// scratch copy when set, and writing the (uncorrupted) frame a
    /// second time when `duplicate`.
    Write {
        /// Sleep before the write (fixed + jitter + throttle share).
        delay: Duration,
        /// Whether a bandwidth throttle contributed to `delay`.
        throttled: bool,
        /// Raw random byte position; the caller reduces it into the
        /// frame region whose damage the receiver can detect (never the
        /// length field). `None` writes the frame verbatim.
        corrupt_at: Option<u64>,
        /// Write the clean frame image a second time.
        duplicate: bool,
    },
}

/// The clean-link fast path: write verbatim, no delay.
pub const CLEAN_WRITE: EgressPlan = EgressPlan::Write {
    delay: Duration::ZERO,
    throttled: false,
    corrupt_at: None,
    duplicate: false,
};

struct HandleInner {
    /// Fast path: `false` means every link is clean and the mesh's hot
    /// paths skip the policy lock entirely.
    active: AtomicBool,
    policy: parking_lot::Mutex<ChaosPolicy>,
    /// splitmix64 state, advanced lock-free by every roll.
    rng: AtomicU64,
}

/// Shared, runtime-swappable view of a mesh's chaos policy. Cloning is
/// cheap; all clones see every update.
#[derive(Clone)]
pub struct ChaosHandle {
    inner: Arc<HandleInner>,
}

impl fmt::Debug for ChaosHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosHandle")
            .field("active", &self.inner.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ChaosHandle {
    fn default() -> Self {
        Self::new(0x9E37_79B9)
    }
}

impl ChaosHandle {
    /// A handle over an all-clean policy, rolling from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Arc::new(HandleInner {
                active: AtomicBool::new(false),
                policy: parking_lot::Mutex::new(ChaosPolicy::default()),
                rng: AtomicU64::new(seed),
            }),
        }
    }

    /// Reseeds the fault dice (tests pin this for reproducibility).
    pub fn reseed(&self, seed: u64) {
        self.inner.rng.store(seed, Ordering::Relaxed);
    }

    /// Whether any link currently has faults configured.
    pub fn is_active(&self) -> bool {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Installs (or replaces) the fault mix of one peer link. A clean
    /// `chaos` removes the entry.
    pub fn set(&self, peer: usize, chaos: LinkChaos) {
        let mut policy = self.inner.policy.lock();
        if chaos.is_clean() {
            policy.links.remove(&peer);
        } else {
            policy.links.insert(peer, chaos);
        }
        let active = !policy.links.is_empty();
        self.inner.active.store(active, Ordering::Relaxed);
    }

    /// Removes every configured fault (the heal switch).
    pub fn clear(&self) {
        self.inner.policy.lock().links.clear();
        self.inner.active.store(false, Ordering::Relaxed);
    }

    /// Removes one peer's faults.
    pub fn clear_peer(&self, peer: usize) {
        self.set(peer, LinkChaos::default());
    }

    /// The configured links, in peer order (empty = all clean).
    pub fn snapshot(&self) -> Vec<(usize, LinkChaos)> {
        let policy = self.inner.policy.lock();
        let mut links: Vec<(usize, LinkChaos)> =
            policy.links.iter().map(|(&p, &c)| (p, c)).collect();
        links.sort_unstable_by_key(|&(p, _)| p);
        links
    }

    /// One lock-free splitmix64 roll.
    fn roll(&self) -> u64 {
        let state = self
            .inner
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Percent dice: `true` with probability `pct`%.
    fn hit(&self, pct: u8) -> bool {
        pct > 0 && self.roll() % 100 < u64::from(pct)
    }

    /// Decides the fate of one outbound data frame of `len` encoded
    /// bytes toward `peer`. The clean fast path never takes the policy
    /// lock.
    pub fn egress_plan(&self, peer: usize, len: usize) -> EgressPlan {
        if !self.is_active() {
            return CLEAN_WRITE;
        }
        let Some(chaos) = self.inner.policy.lock().links.get(&peer).copied() else {
            return CLEAN_WRITE;
        };
        if chaos.partition_out {
            return EgressPlan::Withhold;
        }
        if self.hit(chaos.drop_pct) {
            return EgressPlan::Drop;
        }
        let mut delay = chaos.delay;
        if !chaos.jitter.is_zero() {
            let extra =
                self.roll() % (chaos.jitter.as_nanos().min(u128::from(u64::MAX)) as u64 + 1);
            delay += Duration::from_nanos(extra);
        }
        let throttled = chaos.throttle_bps > 0 && len > 0;
        if throttled {
            delay += Duration::from_nanos(
                (len as u128 * 1_000_000_000 / u128::from(chaos.throttle_bps))
                    .min(u128::from(u64::MAX)) as u64,
            );
        }
        EgressPlan::Write {
            delay,
            throttled,
            corrupt_at: self.hit(chaos.corrupt_pct).then(|| self.roll()),
            duplicate: self.hit(chaos.duplicate_pct),
        }
    }

    /// Whether an inbound data frame from `peer` must be discarded
    /// (`partition=in`). The clean fast path never takes the policy
    /// lock.
    pub fn ingress_blocked(&self, peer: usize) -> bool {
        if !self.is_active() {
            return false;
        }
        self.inner
            .policy
            .lock()
            .links
            .get(&peer)
            .is_some_and(|c| c.partition_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_through_display() {
        let parsed = LinkChaos::parse_args(&[
            "drop=5",
            "delay_ms=200",
            "jitter_ms=50",
            "dup=2",
            "corrupt=1",
            "partition=out",
            "throttle_bps=65536",
        ])
        .expect("parse");
        assert_eq!(parsed.drop_pct, 5);
        assert_eq!(parsed.delay, Duration::from_millis(200));
        assert_eq!(parsed.jitter, Duration::from_millis(50));
        assert!(parsed.partition_out && !parsed.partition_in);
        let rendered = parsed.to_string();
        let args: Vec<&str> = rendered.split_whitespace().collect();
        assert_eq!(LinkChaos::parse_args(&args).expect("reparse"), parsed);
    }

    #[test]
    fn grammar_rejects_nonsense() {
        assert!(LinkChaos::parse_args(&["drop=101"]).is_err());
        assert!(LinkChaos::parse_args(&["drop"]).is_err());
        assert!(LinkChaos::parse_args(&["volume=11"]).is_err());
        assert!(LinkChaos::parse_args(&["partition=sideways"]).is_err());
        assert!(LinkChaos::parse_args(&["delay_ms=fast"]).is_err());
        assert_eq!(
            LinkChaos::parse_args(&[]).expect("empty is clean"),
            LinkChaos::default()
        );
    }

    #[test]
    fn clean_handle_is_inert_and_lock_free() {
        let handle = ChaosHandle::new(7);
        assert!(!handle.is_active());
        assert_eq!(handle.egress_plan(1, 100), CLEAN_WRITE);
        assert!(!handle.ingress_blocked(1));
        assert!(handle.snapshot().is_empty());
    }

    #[test]
    fn set_clear_and_snapshot_swap_at_runtime() {
        let handle = ChaosHandle::new(7);
        let chaos = LinkChaos {
            partition_out: true,
            ..LinkChaos::default()
        };
        handle.set(2, chaos);
        assert!(handle.is_active());
        assert_eq!(handle.egress_plan(2, 10), EgressPlan::Withhold);
        assert_eq!(handle.egress_plan(1, 10), CLEAN_WRITE);
        assert_eq!(handle.snapshot(), vec![(2, chaos)]);
        // Installing the clean default removes the entry — and healing
        // through a clone is visible to every holder.
        let clone = handle.clone();
        clone.set(2, LinkChaos::default());
        assert!(!handle.is_active());
        assert_eq!(handle.egress_plan(2, 10), CLEAN_WRITE);
        handle.set(1, chaos);
        handle.clear();
        assert!(handle.snapshot().is_empty());
    }

    #[test]
    fn probabilities_converge_on_their_rates() {
        let handle = ChaosHandle::new(42);
        handle.set(
            1,
            LinkChaos {
                drop_pct: 25,
                ..LinkChaos::default()
            },
        );
        let drops = (0..4000)
            .filter(|_| handle.egress_plan(1, 64) == EgressPlan::Drop)
            .count();
        // 25% ± generous slack; seeded, so this is deterministic.
        assert!((700..1300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn delay_jitter_and_throttle_compose() {
        let handle = ChaosHandle::new(9);
        handle.set(
            3,
            LinkChaos {
                delay: Duration::from_millis(10),
                jitter: Duration::from_millis(5),
                throttle_bps: 1000,
                ..LinkChaos::default()
            },
        );
        for _ in 0..100 {
            match handle.egress_plan(3, 500) {
                EgressPlan::Write { delay, .. } => {
                    // 10ms fixed + [0,5]ms jitter + 500B at 1000B/s = 500ms.
                    assert!(delay >= Duration::from_millis(510), "{delay:?}");
                    assert!(delay <= Duration::from_millis(515), "{delay:?}");
                }
                other => panic!("unexpected plan {other:?}"),
            }
        }
    }

    #[test]
    fn symmetric_partition_blocks_both_directions() {
        let handle = ChaosHandle::new(1);
        handle.set(
            0,
            LinkChaos::parse_args(&["partition=both"]).expect("parse"),
        );
        assert_eq!(handle.egress_plan(0, 8), EgressPlan::Withhold);
        assert!(handle.ingress_blocked(0));
        handle.clear();
        assert_eq!(handle.egress_plan(0, 8), CLEAN_WRITE);
        assert!(!handle.ingress_blocked(0));
    }

    #[test]
    fn rng_jitter_stays_in_the_half_open_band() {
        let mut rng = Rng::seeded(11);
        for _ in 0..1000 {
            let d = rng.jittered(Duration::from_millis(100));
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(100));
        }
    }
}
