//! The TCP mesh: one process's view of the deployment's full mesh of
//! loopback-or-LAN links.
//!
//! Each process runs a [`TcpMesh`]: a listener accepting inbound links
//! from every peer, and one **dialer** per outbound peer that connects,
//! reconnects with exponential backoff, and writes [`crate::frame`]
//! envelopes from a per-peer outbound queue. Delivery semantics match
//! the simulated [`psmr_netsim::live::LiveNet`] the protocols were built
//! against: **best-effort, dup-suppressed, per-link FIFO**.
//!
//! * Every data frame carries a per-link sequence number. The dialer
//!   keeps a bounded resend buffer and replays it wholesale after a
//!   reconnect (`net_frames_resent`); the receiver drops any sequence
//!   number at or below the last one seen from that peer
//!   (`net_frames_dup_dropped`), so a replayed prefix never delivers
//!   twice to the same incarnation.
//! * Every mesh picks a fresh **incarnation id** at spawn. HELLO
//!   carries the sender's; the receiver acks with its own, and resets
//!   its dup filter when a peer's incarnation changed (a restarted
//!   process restarts its sequence numbers). Symmetrically, a dialer
//!   that sees a *new* incarnation in the ack discards every frame
//!   queued before that dial began instead of replaying it: those
//!   frames were addressed to a process that no longer exists, and
//!   replaying them would resurrect state (e.g. trimmed log prefixes)
//!   the restarted peer must instead rebuild through its own
//!   protocols. Discards count as loss (`net_frames_dropped`).
//! * A full resend buffer evicts its oldest **unsent** frame
//!   (`net_frames_dropped`) — loss, exactly like a lossy `LiveNet`
//!   link. Protocols already tolerate it (paxos retries, the decided-
//!   batch relay re-subscribes on a gap).
//! * Frames are multiplexed by an application-chosen channel byte
//!   ([`TcpMesh::subscribe`]), so paxos traffic, state transfer, and the
//!   relay/client planes share one socket pair per peer direction.

use crate::chaos::{ChaosHandle, EgressPlan, Rng, CLEAN_WRITE};
use crate::cluster::ClusterConfig;
use crate::frame::{encode_frame, FrameDecoder};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use psmr_common::metrics::{counters, global, histograms, ScopedCounter, ScopedHistogram};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Frames a dialer retains for replay-on-reconnect, per peer.
const RESEND_CAP: usize = 4096;
/// First retry delay after a failed dial.
const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Retry delays stop doubling here.
const BACKOFF_MAX: Duration = Duration::from_secs(1);
/// How often parked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Frame kinds inside the envelope payload.
const KIND_DATA: u8 = 0;
/// `kind | sender proc u64 | sender incarnation u64`.
const KIND_HELLO: u8 = 1;
/// `kind | receiver incarnation u64` — the listener's reply to HELLO.
const KIND_ACK: u8 = 2;
/// `kind | seq u64 | chan u8 | from u64 | to u64` precedes a data body.
const DATA_HEADER: usize = 1 + 8 + 1 + 8 + 8;
/// How long a dialer waits for the HELLO ack before re-dialing.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// One received message: the logical endpoints the sender stamped plus
/// the opaque body (decoded by the channel's own codec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbound {
    /// Logical sender (a protocol-level node id, not the process id).
    pub from: u64,
    /// Logical destination.
    pub to: u64,
    /// The message bytes.
    pub body: Vec<u8>,
}

/// Outbound state of one peer link, shared between `send` and the
/// dialer thread.
struct LinkState {
    next_seq: u64,
    /// `(seq, encoded frame)` — encoded once, replayed as-is.
    buffer: VecDeque<(u64, Arc<Vec<u8>>)>,
}

struct Link {
    state: Mutex<LinkState>,
    /// Kicks the dialer out of its idle wait when a frame is queued.
    wake: Sender<()>,
    /// `highest seq ever written + 1`: frames below it are resends when
    /// written again, frames at/above it were never sent (eviction of
    /// one is real loss).
    sent_watermark: AtomicU64,
    /// Whether the dialer currently holds an acked connection — the
    /// admin `status` endpoint's per-peer connectivity bit.
    connected: AtomicBool,
    /// `net_frames_dropped{peer=P}` — shared between `send` (eviction)
    /// and the dialer (incarnation-change discard).
    dropped: ScopedCounter,
}

/// The dialer side's per-peer (`{peer=P}`) instruments, resolved once
/// per dialer thread so the send path never re-hashes metric names.
struct DialerMetrics {
    connects: ScopedCounter,
    reconnects: ScopedCounter,
    backoff_sleeps: ScopedCounter,
    frames_sent: ScopedCounter,
    bytes_sent: ScopedCounter,
    frames_resent: ScopedCounter,
    handshake_ns: ScopedHistogram,
    chaos_dropped: ScopedCounter,
    chaos_delayed: ScopedCounter,
    chaos_duplicated: ScopedCounter,
    chaos_corrupted: ScopedCounter,
    chaos_partitioned: ScopedCounter,
    chaos_throttle_sleeps: ScopedCounter,
}

impl DialerMetrics {
    fn new(peer: usize) -> Self {
        let scope = global().scoped("peer", peer);
        Self {
            connects: scope.counter(counters::NET_CONNECTS),
            reconnects: scope.counter(counters::NET_RECONNECTS),
            backoff_sleeps: scope.counter(counters::NET_BACKOFF_SLEEPS),
            frames_sent: scope.counter(counters::NET_FRAMES_SENT),
            bytes_sent: scope.counter(counters::NET_BYTES_SENT),
            frames_resent: scope.counter(counters::NET_FRAMES_RESENT),
            handshake_ns: scope.histogram(histograms::NET_HANDSHAKE_NS),
            chaos_dropped: scope.counter(counters::CHAOS_FRAMES_DROPPED),
            chaos_delayed: scope.counter(counters::CHAOS_FRAMES_DELAYED),
            chaos_duplicated: scope.counter(counters::CHAOS_FRAMES_DUPLICATED),
            chaos_corrupted: scope.counter(counters::CHAOS_FRAMES_CORRUPTED),
            chaos_partitioned: scope.counter(counters::CHAOS_FRAMES_PARTITIONED),
            chaos_throttle_sleeps: scope.counter(counters::CHAOS_THROTTLE_SLEEPS),
        }
    }
}

/// The receiver side's per-sending-process (`{peer=P}`) instruments,
/// resolved when the connection's HELLO reveals who is talking.
struct ReaderMetrics {
    frames_received: ScopedCounter,
    bytes_received: ScopedCounter,
    dup_dropped: ScopedCounter,
}

impl ReaderMetrics {
    fn new(from_proc: u64) -> Self {
        let scope = global().scoped("peer", from_proc);
        Self {
            frames_received: scope.counter(counters::NET_FRAMES_RECEIVED),
            bytes_received: scope.counter(counters::NET_BYTES_RECEIVED),
            dup_dropped: scope.counter(counters::NET_FRAMES_DUP_DROPPED),
        }
    }
}

/// Dialer-side health of one outbound peer link, as reported by
/// [`TcpMesh::peer_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's node id.
    pub peer: usize,
    /// Whether the outbound link currently holds an acked connection.
    pub connected: bool,
    /// Frames parked in the bounded resend buffer.
    pub resend_depth: usize,
}

struct MeshInner {
    me: usize,
    /// Distinguishes this process's lifetime from earlier ones at the
    /// same address, so peers can tell a reconnect from a restart.
    incarnation: u64,
    shutdown: AtomicBool,
    /// Index = peer id; `None` at `me`.
    links: Vec<Option<Link>>,
    subscribers: Mutex<HashMap<u8, Sender<Inbound>>>,
    /// Per sending process: its incarnation and the highest data-frame
    /// seq seen from it — the reconnect dup filter. A new incarnation
    /// resets the seq floor (restarted peers restart their counters).
    last_seen: Mutex<HashMap<u64, (u64, u64)>>,
    /// The live fault-injection policy consulted by every dialer write
    /// and every inbound data frame. All clean by default.
    chaos: ChaosHandle,
}

/// This process's endpoint of the deployment mesh. Cloneable; all clones
/// share the links.
#[derive(Clone)]
pub struct TcpMesh {
    inner: Arc<MeshInner>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpMesh")
            .field("me", &self.inner.me)
            .field("peers", &(self.inner.links.len() - 1))
            .finish()
    }
}

impl TcpMesh {
    /// Binds `cluster.nodes[me].addr` and spawns the accept loop plus
    /// one dialer per peer. Dialers start connecting immediately and
    /// keep retrying with backoff until shutdown.
    ///
    /// # Errors
    ///
    /// The bind error when the mesh address is unavailable.
    pub fn spawn(me: usize, cluster: &ClusterConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cluster.nodes[me].addr)?;
        listener.set_nonblocking(true)?;
        // Build each link together with its dialer's wake receiver
        // (bounded(1): wakes coalesce while the dialer is busy).
        let mut wake_rxs: Vec<Option<Receiver<()>>> = Vec::with_capacity(cluster.len());
        let links = (0..cluster.len())
            .map(|peer| {
                if peer == me {
                    wake_rxs.push(None);
                    return None;
                }
                let (wake, wake_rx) = bounded(1);
                wake_rxs.push(Some(wake_rx));
                Some(Link {
                    state: Mutex::new(LinkState {
                        next_seq: 1,
                        buffer: VecDeque::new(),
                    }),
                    wake,
                    sent_watermark: AtomicU64::new(1),
                    connected: AtomicBool::new(false),
                    dropped: global()
                        .scoped("peer", peer)
                        .counter(counters::NET_FRAMES_DROPPED),
                })
            })
            .collect();
        let incarnation = fresh_incarnation();
        let inner = Arc::new(MeshInner {
            me,
            incarnation,
            shutdown: AtomicBool::new(false),
            links,
            subscribers: Mutex::new(HashMap::new()),
            last_seen: Mutex::new(HashMap::new()),
            chaos: ChaosHandle::new(incarnation ^ (me as u64)),
        });
        let mesh = Self {
            inner,
            threads: Arc::new(Mutex::new(Vec::new())),
        };
        let mut threads = Vec::new();
        for (peer, wake_rx) in wake_rxs.into_iter().enumerate() {
            let Some(wake_rx) = wake_rx else { continue };
            let inner = Arc::clone(&mesh.inner);
            let addr = cluster.nodes[peer].addr.clone();
            let thread = std::thread::Builder::new()
                .name(format!("mesh-{me}-dial-{peer}"))
                .spawn(move || dialer_main(&inner, peer, &addr, wake_rx))
                .expect("spawn mesh dialer");
            threads.push(thread);
        }
        let inner = Arc::clone(&mesh.inner);
        let accept_threads = Arc::clone(&mesh.threads);
        let thread = std::thread::Builder::new()
            .name(format!("mesh-{me}-accept"))
            .spawn(move || accept_main(&inner, listener, &accept_threads))
            .expect("spawn mesh acceptor");
        threads.push(thread);
        mesh.threads.lock().extend(threads);
        Ok(mesh)
    }

    /// This process's id in the cluster config.
    pub fn me(&self) -> usize {
        self.inner.me
    }

    /// This process lifetime's incarnation id (what peers see in HELLO).
    pub fn incarnation(&self) -> u64 {
        self.inner.incarnation
    }

    /// The mesh's live fault-injection policy. Install faults through
    /// it ([`ChaosHandle::set`]) and they take effect on the very next
    /// frame — no restart, no rebuild.
    pub fn chaos(&self) -> &ChaosHandle {
        &self.inner.chaos
    }

    /// Dialer-side health of every outbound peer link, in peer-id order
    /// (this node itself is omitted).
    pub fn peer_status(&self) -> Vec<PeerStatus> {
        self.inner
            .links
            .iter()
            .enumerate()
            .filter_map(|(peer, link)| {
                link.as_ref().map(|l| PeerStatus {
                    peer,
                    connected: l.connected.load(Ordering::Relaxed),
                    resend_depth: l.state.lock().buffer.len(),
                })
            })
            .collect()
    }

    /// Queues one message for `peer` on channel `chan`. Returns `false`
    /// only after shutdown (a down peer still queues: the dialer
    /// delivers once it connects). `from`/`to` are protocol-level node
    /// ids carried opaquely to the receiver.
    pub fn send(&self, peer: usize, chan: u8, from: u64, to: u64, body: &[u8]) -> bool {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        if peer == self.inner.me {
            // Local loopback: reliable, no seq machinery.
            dispatch(
                &self.inner,
                chan,
                Inbound {
                    from,
                    to,
                    body: body.to_vec(),
                },
            );
            return true;
        }
        let Some(link) = self.inner.links.get(peer).and_then(|l| l.as_ref()) else {
            return false;
        };
        let mut payload = Vec::with_capacity(DATA_HEADER + body.len());
        let mut state = link.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        payload.push(KIND_DATA);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(chan);
        payload.extend_from_slice(&from.to_le_bytes());
        payload.extend_from_slice(&to.to_le_bytes());
        payload.extend_from_slice(body);
        if state.buffer.len() >= RESEND_CAP {
            if let Some((evicted, _)) = state.buffer.pop_front() {
                if evicted >= link.sent_watermark.load(Ordering::Relaxed) {
                    link.dropped.inc();
                }
            }
        }
        state
            .buffer
            .push_back((seq, Arc::new(encode_frame(&payload))));
        drop(state);
        let _ = link.wake.try_send(());
        true
    }

    /// Registers (or replaces) the consumer of channel `chan`.
    pub fn subscribe(&self, chan: u8) -> Receiver<Inbound> {
        let (tx, rx) = unbounded();
        self.inner.subscribers.lock().insert(chan, tx);
        rx
    }

    /// Stops every mesh thread and joins them. Subscriber receivers
    /// disconnect (their senders are dropped), so consumer threads
    /// blocked on `recv()` unblock too. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.subscribers.lock().clear();
        for link in self.inner.links.iter().flatten() {
            let _ = link.wake.try_send(());
        }
        let drained: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for t in drained {
            let _ = t.join();
        }
    }
}

/// A value distinguishing this process lifetime from any other process
/// that answered (or will answer) at the same mesh address: wall-clock
/// nanos folded with the pid.
fn fresh_incarnation() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64);
    nanos ^ (u64::from(std::process::id()) << 48)
}

/// Hands one inbound message to the channel's subscriber (or drops it —
/// same contract as `LiveNet` sending to an unregistered node).
fn dispatch(inner: &MeshInner, chan: u8, msg: Inbound) {
    if let Some(tx) = inner.subscribers.lock().get(&chan) {
        let _ = tx.send(msg);
    }
}

/// The per-peer dialer: connect (with backoff), replay the resend
/// buffer, then stream queued frames until the link drops.
fn dialer_main(inner: &Arc<MeshInner>, peer: usize, addr: &str, wake: Receiver<()>) {
    let link = inner.links[peer].as_ref().expect("dialer has a link");
    let metrics = DialerMetrics::new(peer);
    // Jitters the dial backoff so the followers of a restarted peer
    // spread their re-dials instead of arriving in lockstep.
    let mut rng = Rng::seeded(inner.incarnation ^ ((peer as u64) << 32));
    let mut conn: Option<TcpStream> = None;
    // Next seq to write on the current connection.
    let mut cursor = 0u64;
    let mut backoff = BACKOFF_MIN;
    let mut ever_connected = false;
    // The peer incarnation this link last replayed to.
    let mut peer_incarnation: Option<u64> = None;
    while !inner.shutdown.load(Ordering::Relaxed) {
        let Some(stream) = conn.as_mut() else {
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    // Frames queued before this connect attempt were
                    // addressed to whichever process was (or wasn't)
                    // alive back then; if the ack below reveals a new
                    // incarnation, exactly those frames are discarded.
                    let pre_dial_seq = link.state.lock().next_seq;
                    let mut hello = Vec::with_capacity(17);
                    hello.push(KIND_HELLO);
                    hello.extend_from_slice(&(inner.me as u64).to_le_bytes());
                    hello.extend_from_slice(&inner.incarnation.to_le_bytes());
                    let handshake_start = std::time::Instant::now();
                    let handshake = stream
                        .write_all(&encode_frame(&hello))
                        .and_then(|()| read_ack(inner, &mut stream));
                    let acked = match handshake {
                        Ok(acked) => acked,
                        Err(_) => {
                            metrics.backoff_sleeps.inc();
                            std::thread::sleep(rng.jittered(backoff.min(POLL)));
                            backoff = (backoff * 2).min(BACKOFF_MAX);
                            continue;
                        }
                    };
                    metrics.handshake_ns.record(handshake_start.elapsed());
                    metrics.connects.inc();
                    if ever_connected {
                        metrics.reconnects.inc();
                    }
                    ever_connected = true;
                    backoff = BACKOFF_MIN;
                    link.connected.store(true, Ordering::Relaxed);
                    let mut state = link.state.lock();
                    let prior = peer_incarnation.replace(acked);
                    if prior.is_some() && prior != Some(acked) {
                        // A *different* process now answers at this
                        // address. Frames retained for its predecessor
                        // must not replay — discard them as loss —
                        // while frames queued once this dial was
                        // already underway still deliver.
                        let watermark = link.sent_watermark.load(Ordering::Relaxed);
                        let unsent = state
                            .buffer
                            .iter()
                            .filter(|(s, _)| *s < pre_dial_seq && *s >= watermark)
                            .count();
                        link.dropped.add(unsent as u64);
                        state.buffer.retain(|(s, _)| *s >= pre_dial_seq);
                    }
                    // Replay the whole retained buffer on this fresh
                    // connection; the receiver's seq filter drops what
                    // its incarnation already saw.
                    cursor = state.buffer.front().map_or(state.next_seq, |(seq, _)| *seq);
                    drop(state);
                    conn = Some(stream);
                }
                Err(_) => {
                    // Sleep in short slices so shutdown stays prompt.
                    metrics.backoff_sleeps.inc();
                    let mut left = rng.jittered(backoff);
                    while left > Duration::ZERO && !inner.shutdown.load(Ordering::Relaxed) {
                        let slice = left.min(POLL);
                        std::thread::sleep(slice);
                        left = left.saturating_sub(slice);
                    }
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
            continue;
        };
        let next = {
            let state = link.state.lock();
            state
                .buffer
                .iter()
                .find(|(seq, _)| *seq >= cursor)
                .map(|(seq, frame)| (*seq, Arc::clone(frame)))
        };
        match next {
            None => match wake.recv_timeout(POLL) {
                Ok(()) | Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            },
            Some((seq, frame)) => {
                let mut plan = inner.chaos.egress_plan(peer, frame.len());
                // Frame-destroying faults (loss, corruption) hit a
                // frame's *first* transmission only: a replayed frame
                // (seq below the sent watermark) is the recovery path
                // for a teardown that already happened, and re-rolling
                // destructive dice on it would let a growing backlog
                // make every replay fail — a wedged link instead of a
                // faulty one. Partition, delay, and throttle still
                // shape replays like any other bytes.
                if seq < link.sent_watermark.load(Ordering::Relaxed) {
                    match &mut plan {
                        EgressPlan::Drop => plan = CLEAN_WRITE,
                        EgressPlan::Write { corrupt_at, .. } => *corrupt_at = None,
                        EgressPlan::Withhold => {}
                    }
                }
                match plan {
                    EgressPlan::Withhold => {
                        // Partitioned outbound: keep the frame queued (it is
                        // not loss — it delivers when the partition heals)
                        // and park briefly before re-checking the policy.
                        metrics.chaos_partitioned.inc();
                        std::thread::sleep(POLL);
                    }
                    EgressPlan::Drop => {
                        // Injected loss: consume the frame exactly as if the
                        // write happened, so the link's seq accounting stays
                        // coherent and nothing ever replays it.
                        metrics.chaos_dropped.inc();
                        if seq >= link.sent_watermark.load(Ordering::Relaxed) {
                            link.sent_watermark.store(seq + 1, Ordering::Relaxed);
                        }
                        cursor = seq + 1;
                    }
                    EgressPlan::Write {
                        delay,
                        throttled,
                        corrupt_at,
                        duplicate,
                    } => {
                        if !delay.is_zero() {
                            metrics.chaos_delayed.inc();
                            if throttled {
                                metrics.chaos_throttle_sleeps.inc();
                            }
                            // Sleep in short slices so shutdown stays prompt.
                            let mut left = delay;
                            while left > Duration::ZERO && !inner.shutdown.load(Ordering::Relaxed) {
                                let slice = left.min(POLL);
                                std::thread::sleep(slice);
                                left = left.saturating_sub(slice);
                            }
                        }
                        // Corruption flips one byte in a scratch copy; the
                        // canonical image stays in the resend buffer, so the
                        // receiver's crc teardown + our reconnect replay
                        // eventually delivers the frame intact. The flip
                        // lands past the 4-byte length field (crc or
                        // payload): a flipped *length* would desync the
                        // decoder into silently awaiting a phantom frame —
                        // no poison, no teardown, a wedged link — whereas a
                        // crc/payload flip is always detected.
                        let corrupted = corrupt_at.map(|at| {
                            metrics.chaos_corrupted.inc();
                            let mut copy: Vec<u8> = (*frame).clone();
                            let idx = 4 + (at % (copy.len() as u64 - 4)) as usize;
                            copy[idx] ^= 0x01;
                            copy
                        });
                        let image: &[u8] = corrupted.as_deref().unwrap_or(&frame);
                        let write = stream.write_all(image).and_then(|()| {
                            if duplicate {
                                // The receiver's seq filter drops the copy.
                                metrics.chaos_duplicated.inc();
                                stream.write_all(&frame)
                            } else {
                                Ok(())
                            }
                        });
                        match write {
                            Ok(()) => {
                                metrics.bytes_sent.add(frame.len() as u64);
                                let watermark = link.sent_watermark.load(Ordering::Relaxed);
                                if seq < watermark {
                                    metrics.frames_resent.inc();
                                } else {
                                    metrics.frames_sent.inc();
                                    link.sent_watermark.store(seq + 1, Ordering::Relaxed);
                                }
                                cursor = seq + 1;
                            }
                            Err(_) => {
                                conn = None;
                                link.connected.store(false, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Blocks (bounded by [`HANDSHAKE_TIMEOUT`]) for the listener's ack and
/// returns the peer's incarnation id.
fn read_ack(inner: &MeshInner, stream: &mut TcpStream) -> std::io::Result<u64> {
    stream.set_read_timeout(Some(POLL))?;
    let give_up = std::time::Instant::now() + HANDSHAKE_TIMEOUT;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 256];
    loop {
        if inner.shutdown.load(Ordering::Relaxed) || std::time::Instant::now() >= give_up {
            return Err(std::io::Error::from(ErrorKind::TimedOut));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::UnexpectedEof)),
            Ok(n) => {
                decoder.push(&buf[..n]);
                if let Some(payload) = decoder
                    .next()
                    .map_err(|_| std::io::Error::from(ErrorKind::InvalidData))?
                {
                    if payload.len() != 9 || payload[0] != KIND_ACK {
                        return Err(std::io::Error::from(ErrorKind::InvalidData));
                    }
                    return Ok(u64::from_le_bytes(payload[1..9].try_into().unwrap()));
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The accept loop: one reader thread per inbound connection.
fn accept_main(
    inner: &Arc<MeshInner>,
    listener: TcpListener,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(POLL));
                let inner = Arc::clone(inner);
                let me = inner.me;
                let handle = std::thread::Builder::new()
                    .name(format!("mesh-{me}-read"))
                    .spawn(move || reader_main(&inner, stream))
                    .expect("spawn mesh reader");
                threads.lock().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Reads one inbound connection: HELLO first, then seq-filtered data
/// frames dispatched to channel subscribers. Any framing error tears
/// the connection down (the peer's dialer re-establishes and replays).
fn reader_main(inner: &Arc<MeshInner>, mut stream: TcpStream) {
    let mut decoder = FrameDecoder::new();
    let mut sender: Option<(u64, u64)> = None;
    let mut metrics: Option<ReaderMetrics> = None;
    let mut buf = [0u8; 64 * 1024];
    // A framing/protocol violation (not a clean close or shutdown)
    // counts as a poisoned decode, labeled by sender once known.
    let poisoned = |sender: &Option<(u64, u64)>| match sender {
        Some((from_proc, _)) => global()
            .scoped("peer", from_proc)
            .counter(counters::NET_DECODE_POISONED)
            .inc(),
        None => global().counter(counters::NET_DECODE_POISONED).inc(),
    };
    while !inner.shutdown.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next() {
                        Ok(Some(payload)) => {
                            if !handle_payload(
                                inner,
                                &mut sender,
                                &mut metrics,
                                &payload,
                                &mut stream,
                            ) {
                                poisoned(&sender);
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            poisoned(&sender);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// One decoded frame payload; `false` = protocol violation, drop the
/// connection.
fn handle_payload(
    inner: &MeshInner,
    sender: &mut Option<(u64, u64)>,
    metrics: &mut Option<ReaderMetrics>,
    payload: &[u8],
    stream: &mut TcpStream,
) -> bool {
    match payload.first() {
        Some(&KIND_HELLO) => {
            if payload.len() != 17 {
                return false;
            }
            let from_proc = u64::from_le_bytes(payload[1..9].try_into().unwrap());
            let incarnation = u64::from_le_bytes(payload[9..17].try_into().unwrap());
            {
                // A new incarnation of the peer restarts its sequence
                // numbers; lift the dup floor so its frames deliver.
                let mut last_seen = inner.last_seen.lock();
                let entry = last_seen.entry(from_proc).or_insert((incarnation, 0));
                if entry.0 != incarnation {
                    *entry = (incarnation, 0);
                }
            }
            *sender = Some((from_proc, incarnation));
            *metrics = Some(ReaderMetrics::new(from_proc));
            let mut ack = Vec::with_capacity(9);
            ack.push(KIND_ACK);
            ack.extend_from_slice(&inner.incarnation.to_le_bytes());
            stream.write_all(&encode_frame(&ack)).is_ok()
        }
        Some(&KIND_DATA) => {
            let Some(&(from_proc, conn_incarnation)) = sender.as_ref() else {
                return false; // data before HELLO
            };
            if payload.len() < DATA_HEADER {
                return false;
            }
            if let Some(m) = metrics.as_ref() {
                m.frames_received.inc();
                m.bytes_received.add(payload.len() as u64);
            }
            if inner.chaos.ingress_blocked(from_proc as usize) {
                // Inbound partition: discard before the dup-floor
                // update so the frame still delivers when the peer's
                // dialer replays it after the partition heals.
                global()
                    .scoped("peer", from_proc)
                    .counter(counters::CHAOS_FRAMES_PARTITIONED)
                    .inc();
                return true;
            }
            let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
            let chan = payload[9];
            let from = u64::from_le_bytes(payload[10..18].try_into().unwrap());
            let to = u64::from_le_bytes(payload[18..26].try_into().unwrap());
            {
                let mut last_seen = inner.last_seen.lock();
                let (current, last) = last_seen.entry(from_proc).or_insert((conn_incarnation, 0));
                // A lingering connection from a dead incarnation may
                // still have buffered frames after the restarted peer's
                // HELLO reset the floor; letting them through would
                // raise the floor past the fresh sequence numbers and
                // swallow the new incarnation's traffic.
                if *current != conn_incarnation || seq <= *last {
                    match metrics.as_ref() {
                        Some(m) => m.dup_dropped.inc(),
                        None => global().counter(counters::NET_FRAMES_DUP_DROPPED).inc(),
                    }
                    return true;
                }
                *last = seq;
            }
            dispatch(
                inner,
                chan,
                Inbound {
                    from,
                    to,
                    body: payload[DATA_HEADER..].to_vec(),
                },
            );
            true
        }
        _ => false,
    }
}
