//! Wire codecs for the protocol messages that cross process boundaries:
//! the paxos messages ([`psmr_paxos::NetMsg`]) and the state-transfer
//! protocol ([`psmr_recovery::TransferMsg`]).
//!
//! In-process these messages move as cloned Rust values through
//! `LiveNet` channels; between processes they become tagged byte bodies
//! inside [`crate::frame`] envelopes. The encoding is deliberately dumb:
//! little-endian fixed-width integers, `u32` length prefixes, one tag
//! byte per enum variant — no derive machinery, no versioning beyond
//! the frame crc (both ends of a deployment run the same build).
//!
//! Decoders return `Option`: `None` means "not a message this version
//! understands", and the caller drops the body the way `LiveNet` drops
//! sends to unregistered nodes.

use bytes::Bytes;
use psmr_common::ids::GroupId;
use psmr_paxos::runtime::Batch;
use psmr_paxos::{Ballot, NetMsg};
use psmr_recovery::{StreamCut, TransferMsg};
use std::sync::Arc;

/// Little-endian cursor over a decode buffer.
struct Rd<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.bytes.get(self.at..self.at + 4)?.try_into().unwrap());
        self.at += 4;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.bytes.get(self.at..self.at + 8)?.try_into().unwrap());
        self.at += 8;
        Some(v)
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let v = self.bytes.get(self.at..self.at + len)?;
        self.at += len;
        Some(v)
    }

    fn bytes_u32(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn put_bytes_u32(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_ballot(out: &mut Vec<u8>, b: Ballot) {
    out.extend_from_slice(&b.round.to_le_bytes());
    out.extend_from_slice(&b.proposer.to_le_bytes());
}

fn rd_ballot(rd: &mut Rd<'_>) -> Option<Ballot> {
    Some(Ballot::new(rd.u64()?, rd.u64()?))
}

fn put_batch(out: &mut Vec<u8>, batch: &Batch) {
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for command in batch.iter() {
        put_bytes_u32(out, command);
    }
}

fn rd_batch(rd: &mut Rd<'_>) -> Option<Batch> {
    let count = rd.u32()? as usize;
    let mut commands = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        commands.push(Bytes::from(rd.bytes_u32()?.to_vec()));
    }
    Some(Arc::new(commands))
}

/// Encodes one paxos message for the wire.
pub fn encode_paxos(msg: &NetMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        NetMsg::Prepare {
            ballot,
            from_instance,
        } => {
            out.push(0);
            put_ballot(&mut out, *ballot);
            out.extend_from_slice(&from_instance.to_le_bytes());
        }
        NetMsg::Promise { ballot, accepted } => {
            out.push(1);
            put_ballot(&mut out, *ballot);
            out.extend_from_slice(&(accepted.len() as u32).to_le_bytes());
            for (instance, ballot, value) in accepted {
                out.extend_from_slice(&instance.to_le_bytes());
                put_ballot(&mut out, *ballot);
                put_batch(&mut out, value);
            }
        }
        NetMsg::Nack { rejected, promised } => {
            out.push(2);
            put_ballot(&mut out, *rejected);
            put_ballot(&mut out, *promised);
        }
        NetMsg::Accept {
            ballot,
            instance,
            value,
        } => {
            out.push(3);
            put_ballot(&mut out, *ballot);
            out.extend_from_slice(&instance.to_le_bytes());
            put_batch(&mut out, value);
        }
        NetMsg::Accepted { ballot, instance } => {
            out.push(4);
            put_ballot(&mut out, *ballot);
            out.extend_from_slice(&instance.to_le_bytes());
        }
        NetMsg::Decide { instance, value } => {
            out.push(5);
            out.extend_from_slice(&instance.to_le_bytes());
            put_batch(&mut out, value);
        }
    }
    out
}

/// Decodes one paxos message; `None` on any malformed body.
pub fn decode_paxos(bytes: &[u8]) -> Option<NetMsg> {
    let mut rd = Rd::new(bytes);
    let msg = match rd.u8()? {
        0 => NetMsg::Prepare {
            ballot: rd_ballot(&mut rd)?,
            from_instance: rd.u64()?,
        },
        1 => {
            let ballot = rd_ballot(&mut rd)?;
            let count = rd.u32()? as usize;
            let mut accepted = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                accepted.push((rd.u64()?, rd_ballot(&mut rd)?, rd_batch(&mut rd)?));
            }
            NetMsg::Promise { ballot, accepted }
        }
        2 => NetMsg::Nack {
            rejected: rd_ballot(&mut rd)?,
            promised: rd_ballot(&mut rd)?,
        },
        3 => NetMsg::Accept {
            ballot: rd_ballot(&mut rd)?,
            instance: rd.u64()?,
            value: rd_batch(&mut rd)?,
        },
        4 => NetMsg::Accepted {
            ballot: rd_ballot(&mut rd)?,
            instance: rd.u64()?,
        },
        5 => NetMsg::Decide {
            instance: rd.u64()?,
            value: rd_batch(&mut rd)?,
        },
        _ => return None,
    };
    rd.done().then_some(msg)
}

fn put_cut(out: &mut Vec<u8>, cut: &StreamCut) {
    out.extend_from_slice(&(cut.group.as_raw() as u64).to_le_bytes());
    out.extend_from_slice(&cut.seq.to_le_bytes());
    out.extend_from_slice(&(cut.offset as u64).to_le_bytes());
}

fn rd_cut(rd: &mut Rd<'_>) -> Option<StreamCut> {
    Some(StreamCut {
        group: GroupId::new(usize::try_from(rd.u64()?).ok()?),
        seq: rd.u64()?,
        offset: usize::try_from(rd.u64()?).ok()?,
    })
}

/// Encodes one state-transfer message for the wire.
pub fn encode_transfer(msg: &TransferMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        TransferMsg::Fetch => out.push(0),
        TransferMsg::Probe => out.push(1),
        TransferMsg::Offer {
            id,
            cut,
            epoch,
            table,
            len,
            chunks,
            digest,
        } => {
            out.push(2);
            out.extend_from_slice(&id.to_le_bytes());
            put_cut(&mut out, cut);
            out.extend_from_slice(&epoch.to_le_bytes());
            put_bytes_u32(&mut out, table);
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&chunks.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
        }
        TransferMsg::Chunk { index, bytes } => {
            out.push(3);
            out.extend_from_slice(&index.to_le_bytes());
            put_bytes_u32(&mut out, bytes);
        }
        TransferMsg::NotFound => out.push(4),
    }
    out
}

/// Decodes one state-transfer message; `None` on any malformed body.
pub fn decode_transfer(bytes: &[u8]) -> Option<TransferMsg> {
    let mut rd = Rd::new(bytes);
    let msg = match rd.u8()? {
        0 => TransferMsg::Fetch,
        1 => TransferMsg::Probe,
        2 => TransferMsg::Offer {
            id: rd.u64()?,
            cut: rd_cut(&mut rd)?,
            epoch: rd.u64()?,
            table: rd.bytes_u32()?.to_vec(),
            len: rd.u64()?,
            chunks: rd.u32()?,
            digest: rd.u64()?,
        },
        3 => TransferMsg::Chunk {
            index: rd.u32()?,
            bytes: rd.bytes_u32()?.to_vec(),
        },
        4 => TransferMsg::NotFound,
        _ => return None,
    };
    rd.done().then_some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(items: &[&[u8]]) -> Batch {
        Arc::new(items.iter().map(|b| Bytes::from(b.to_vec())).collect())
    }

    #[test]
    fn paxos_messages_round_trip() {
        let cases: Vec<NetMsg> = vec![
            NetMsg::Prepare {
                ballot: Ballot::new(3, 100),
                from_instance: 17,
            },
            NetMsg::Promise {
                ballot: Ballot::new(3, 100),
                accepted: vec![
                    (5, Ballot::new(2, 100), batch(&[b"abc", b""])),
                    (6, Ballot::new(1, 0), batch(&[])),
                ],
            },
            NetMsg::Nack {
                rejected: Ballot::new(1, 1),
                promised: Ballot::new(9, 2),
            },
            NetMsg::Accept {
                ballot: Ballot::new(4, 100),
                instance: 8,
                value: batch(&[b"cmd1", b"cmd2"]),
            },
            NetMsg::Accepted {
                ballot: Ballot::new(4, 100),
                instance: 8,
            },
            NetMsg::Decide {
                instance: 8,
                value: batch(&[b"cmd1"]),
            },
        ];
        for msg in cases {
            let wire = encode_paxos(&msg);
            assert_eq!(decode_paxos(&wire), Some(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn transfer_messages_round_trip() {
        let cases = vec![
            TransferMsg::Fetch,
            TransferMsg::Probe,
            TransferMsg::Offer {
                id: 4,
                cut: StreamCut {
                    group: GroupId::new(2),
                    seq: 19,
                    offset: 3,
                },
                epoch: 7,
                table: vec![1, 2, 3],
                len: 999,
                chunks: 4,
                digest: 0xDEAD_BEEF,
            },
            TransferMsg::Chunk {
                index: 2,
                bytes: vec![9; 37],
            },
            TransferMsg::NotFound,
        ];
        for msg in cases {
            let wire = encode_transfer(&msg);
            let back = decode_transfer(&wire).expect("decode");
            // TransferMsg has no PartialEq; compare via Debug.
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn malformed_bodies_decode_to_none() {
        assert!(decode_paxos(&[]).is_none());
        assert!(decode_paxos(&[99]).is_none());
        assert!(decode_transfer(&[42]).is_none());
        let mut truncated = encode_paxos(&NetMsg::Accepted {
            ballot: Ballot::new(1, 2),
            instance: 3,
        });
        truncated.pop();
        assert!(decode_paxos(&truncated).is_none());
        // Trailing garbage is rejected too.
        let mut padded = encode_transfer(&TransferMsg::Fetch);
        padded.push(0);
        assert!(decode_transfer(&padded).is_none());
    }
}
