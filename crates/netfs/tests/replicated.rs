//! End-to-end NetFS over every replication engine.

use psmr_common::SystemConfig;
use psmr_core::engines::{Engine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_netfs::client::NetFsClient;
use psmr_netfs::{dependency_spec, NetFsService};
use std::time::Duration;

fn cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500));
    cfg
}

fn exercise(mut fs: NetFsClient, label: &str) {
    fs.mkdir("/home")
        .unwrap_or_else(|e| panic!("{label}: mkdir {e}"));
    fs.mkdir("/home/user").unwrap();
    fs.create("/home/user/notes.txt").unwrap();
    fs.write("/home/user/notes.txt", 0, b"first line\n")
        .unwrap();
    fs.write("/home/user/notes.txt", 11, b"second line\n")
        .unwrap();
    let data = fs.read("/home/user/notes.txt", 0, 1024).unwrap();
    assert_eq!(data, b"first line\nsecond line\n", "{label}");
    let stat = fs.lstat("/home/user/notes.txt").unwrap();
    assert_eq!(stat.size, 23, "{label}");
    assert_eq!(
        fs.readdir("/home/user").unwrap(),
        vec!["notes.txt"],
        "{label}"
    );
    let fd = fs.open("/home/user/notes.txt").unwrap();
    fs.release(fd).unwrap();
    fs.unlink("/home/user/notes.txt").unwrap();
    assert_eq!(fs.access("/home/user/notes.txt"), Err(2), "{label}: ENOENT");
    fs.rmdir("/home/user").unwrap();
    fs.rmdir("/home").unwrap();
}

#[test]
fn netfs_over_psmr() {
    let engine = PsmrEngine::spawn(&cfg(4), dependency_spec().into_map(), NetFsService::new);
    exercise(NetFsClient::new(engine.client()), "P-SMR");
    engine.shutdown();
}

#[test]
fn netfs_over_smr() {
    let engine = SmrEngine::spawn(&cfg(1), NetFsService::new);
    exercise(NetFsClient::new(engine.client()), "SMR");
    engine.shutdown();
}

#[test]
fn netfs_over_spsmr() {
    let engine = SpSmrEngine::spawn(&cfg(4), dependency_spec().into_map(), NetFsService::new);
    exercise(NetFsClient::new(engine.client()), "sP-SMR");
    engine.shutdown();
}

#[test]
fn netfs_concurrent_clients_on_disjoint_files() {
    let engine = std::sync::Arc::new(PsmrEngine::spawn(
        &cfg(4),
        dependency_spec().into_map(),
        || NetFsService::with_tree(4, 16, 64),
    ));
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let engine = std::sync::Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut fs = NetFsClient::new(engine.client());
            let path = format!("/d{}/f{}", t % 4, t % 16);
            for i in 0..30u64 {
                fs.write(&path, 0, &i.to_le_bytes()).unwrap();
                let back = fs.read(&path, 0, 8).unwrap();
                // Another client may write the same file between our write
                // and read; the value must be some client's write though.
                assert_eq!(back.len(), 8);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    match std::sync::Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => panic!("clients still hold the engine"),
    }
}

#[test]
fn netfs_fd_table_is_consistent_across_structural_ops() {
    let engine = PsmrEngine::spawn(&cfg(3), dependency_spec().into_map(), NetFsService::new);
    let mut fs = NetFsClient::new(engine.client());
    fs.create("/a").unwrap();
    fs.create("/b").unwrap();
    let fda = fs.open("/a").unwrap();
    let fdb = fs.open("/b").unwrap();
    assert_ne!(fda, fdb, "fds are distinct");
    let dd = fs.opendir("/").unwrap();
    assert_eq!(fs.readdir("/").unwrap(), vec!["a", "b"]);
    fs.releasedir(dd).unwrap();
    fs.release(fda).unwrap();
    fs.release(fdb).unwrap();
    // Double release fails deterministically on every replica.
    assert_eq!(fs.release(fda), Err(9));
    engine.shutdown();
}
