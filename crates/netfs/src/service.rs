//! The NetFS server proxy: decompress → execute → compress.

use crate::fs::MemFs;
use crate::ops::{
    NetFsOp, NetFsResult, ACCESS, CREATE, LSTAT, MKDIR, MKNOD, OPEN, OPENDIR, READ, READDIR,
    RELEASE, RELEASEDIR, RMDIR, UNLINK, UTIMENS, WRITE,
};
use psmr_common::ids::CommandId;
use psmr_core::conflict::{CommandClass, DependencySpec};
use psmr_core::service::Service;

/// The replicated NetFS service: an in-memory file system behind the
/// decompress/execute/compress pipeline of §VI-C.
#[derive(Debug, Default)]
pub struct NetFsService {
    fs: MemFs,
}

impl NetFsService {
    /// An empty file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates `files` files spread over `dirs` directories
    /// (`/d<i>/f<j>`), each `size` bytes — the benchmark fixture.
    pub fn with_tree(dirs: u64, files: u64, size: usize) -> Self {
        let service = Self::new();
        for d in 0..dirs {
            service.fs.mkdir(&format!("/d{d}")).expect("fresh dir");
        }
        for f in 0..files {
            let path = format!("/d{}/f{f}", f % dirs.max(1));
            service.fs.create(&path).expect("fresh file");
            service
                .fs
                .write(&path, 0, &vec![b'x'; size])
                .expect("initial data");
        }
        service
    }

    /// Paths of the fixture created by [`NetFsService::with_tree`].
    pub fn tree_paths(dirs: u64, files: u64) -> Vec<String> {
        (0..files)
            .map(|f| format!("/d{}/f{f}", f % dirs.max(1)))
            .collect()
    }
}

impl Service for NetFsService {
    fn execute(&self, command: CommandId, payload: &[u8]) -> Vec<u8> {
        // Workers decompress requests (§VI-C). Malformed payloads cannot
        // occur through our own proxies; answer EBADF-style error instead
        // of unwinding across the replica.
        let Some(op) = NetFsOp::decode_payload(payload) else {
            return NetFsResult::Err(crate::fs::errno::EBADF).encode();
        };
        debug_assert_eq!(op.command(), command, "payload/command mismatch");
        let result = match op {
            NetFsOp::Create { path } | NetFsOp::Mknod { path } => match self.fs.create(&path) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Mkdir { path } => match self.fs.mkdir(&path) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Unlink { path } => match self.fs.unlink(&path) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Rmdir { path } => match self.fs.rmdir(&path) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Open { path } => match self.fs.open(&path) {
                Ok(fd) => NetFsResult::Fd(fd),
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Opendir { path } => match self.fs.opendir(&path) {
                Ok(fd) => NetFsResult::Fd(fd),
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Release { fd } => match self.fs.release(fd) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Releasedir { fd } => match self.fs.releasedir(fd) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Utimens { path, mtime } => match self.fs.utimens(&path, mtime) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Access { path } => match self.fs.access(&path) {
                Ok(()) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Lstat { path } => match self.fs.lstat(&path) {
                Ok(stat) => NetFsResult::Stat(stat),
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Read { path, offset, len } => match self.fs.read(&path, offset, len) {
                Ok(data) => NetFsResult::Data(data),
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Write { path, offset, data } => match self.fs.write(&path, offset, &data) {
                Ok(_) => NetFsResult::Ok,
                Err(e) => NetFsResult::Err(e),
            },
            NetFsOp::Readdir { path } => match self.fs.readdir(&path) {
                Ok(entries) => NetFsResult::Entries(entries),
                Err(e) => NetFsResult::Err(e),
            },
        };
        result.encode()
    }
}

impl psmr_recovery::Snapshot for NetFsService {
    /// Deterministic encoding of the whole replica state: the directory
    /// tree (pre-order, sorted names) followed by the shared fd table
    /// (ascending descriptor order) — see [`MemFs::snapshot_bytes`].
    fn snapshot(&self) -> Vec<u8> {
        self.fs.snapshot_bytes()
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), psmr_recovery::RestoreError> {
        self.fs.restore_bytes(snapshot)
    }
}

/// The C-Dep of §V-B: structural and fd-table calls depend on all calls;
/// `access`, `lstat`, `read`, `write` and `readdir` are per-path.
pub fn dependency_spec() -> DependencySpec {
    let mut spec = DependencySpec::new();
    for cmd in [
        CREATE, MKNOD, MKDIR, UNLINK, RMDIR, OPEN, UTIMENS, RELEASE, OPENDIR, RELEASEDIR,
    ] {
        spec.declare(cmd, CommandClass::Global);
    }
    for cmd in [ACCESS, LSTAT, READ, READDIR] {
        spec.declare(cmd, CommandClass::Keyed { writes: false });
    }
    spec.declare(WRITE, CommandClass::Keyed { writes: true });
    // Payloads carry the uncompressed path-hash key in their first 8 bytes.
    spec.key_extractor(|payload| u64::from_le_bytes(payload[..8].try_into().expect("key prefix")));
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::errno::*;

    fn run(service: &NetFsService, op: NetFsOp) -> NetFsResult {
        let payload = op.encode_payload();
        NetFsResult::decode(&service.execute(op.command(), &payload)).expect("decodes")
    }

    #[test]
    fn full_session_through_the_marshalled_interface() {
        let service = NetFsService::new();
        assert_eq!(
            run(&service, NetFsOp::Mkdir { path: "/d".into() }),
            NetFsResult::Ok
        );
        assert_eq!(
            run(
                &service,
                NetFsOp::Create {
                    path: "/d/f".into()
                }
            ),
            NetFsResult::Ok
        );
        assert_eq!(
            run(
                &service,
                NetFsOp::Write {
                    path: "/d/f".into(),
                    offset: 0,
                    data: b"abc".to_vec()
                }
            ),
            NetFsResult::Ok
        );
        assert_eq!(
            run(
                &service,
                NetFsOp::Read {
                    path: "/d/f".into(),
                    offset: 0,
                    len: 3
                }
            ),
            NetFsResult::Data(b"abc".to_vec())
        );
        assert_eq!(
            run(&service, NetFsOp::Readdir { path: "/d".into() }),
            NetFsResult::Entries(vec!["f".into()])
        );
        let fd = match run(
            &service,
            NetFsOp::Open {
                path: "/d/f".into(),
            },
        ) {
            NetFsResult::Fd(fd) => fd,
            other => panic!("expected fd, got {other:?}"),
        };
        assert_eq!(run(&service, NetFsOp::Release { fd }), NetFsResult::Ok);
        assert_eq!(
            run(
                &service,
                NetFsOp::Unlink {
                    path: "/d/f".into()
                }
            ),
            NetFsResult::Ok
        );
        assert_eq!(
            run(
                &service,
                NetFsOp::Read {
                    path: "/d/f".into(),
                    offset: 0,
                    len: 1
                }
            ),
            NetFsResult::Err(ENOENT)
        );
    }

    #[test]
    fn with_tree_builds_the_fixture() {
        let service = NetFsService::with_tree(4, 16, 128);
        for path in NetFsService::tree_paths(4, 16) {
            match run(&service, NetFsOp::Lstat { path: path.clone() }) {
                NetFsResult::Stat(stat) => {
                    assert_eq!(stat.size, 128, "{path}");
                    assert!(!stat.is_dir);
                }
                other => panic!("lstat {path}: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_payloads_yield_an_error_response() {
        let service = NetFsService::new();
        let resp = service.execute(READ, &[0u8; 12]);
        assert_eq!(NetFsResult::decode(&resp), Some(NetFsResult::Err(EBADF)));
    }

    #[test]
    fn snapshot_restore_round_trips_tree_and_fd_table() {
        use psmr_recovery::Snapshot;
        let service = NetFsService::with_tree(3, 9, 64);
        run(
            &service,
            NetFsOp::Write {
                path: "/d1/f1".into(),
                offset: 2,
                data: b"zz".to_vec(),
            },
        );
        run(
            &service,
            NetFsOp::Utimens {
                path: "/d2/f2".into(),
                mtime: 777,
            },
        );
        let fd = match run(
            &service,
            NetFsOp::Open {
                path: "/d0/f0".into(),
            },
        ) {
            NetFsResult::Fd(fd) => fd,
            other => panic!("expected fd, got {other:?}"),
        };
        let snap = service.snapshot();
        // A twin that executed the same (order-insensitive) commands
        // snapshots identical bytes.
        let twin = NetFsService::with_tree(3, 9, 64);
        run(
            &twin,
            NetFsOp::Utimens {
                path: "/d2/f2".into(),
                mtime: 777,
            },
        );
        run(
            &twin,
            NetFsOp::Write {
                path: "/d1/f1".into(),
                offset: 2,
                data: b"zz".to_vec(),
            },
        );
        run(
            &twin,
            NetFsOp::Open {
                path: "/d0/f0".into(),
            },
        );
        assert_eq!(twin.snapshot(), snap);
        // Restoring into a divergent replica reproduces everything,
        // including the open-descriptor table.
        let recovered = NetFsService::with_tree(1, 1, 8);
        recovered.restore(&snap).expect("restores");
        assert_eq!(recovered.snapshot(), snap);
        assert_eq!(
            run(
                &recovered,
                NetFsOp::Read {
                    path: "/d1/f1".into(),
                    offset: 0,
                    len: 64
                }
            ),
            run(
                &service,
                NetFsOp::Read {
                    path: "/d1/f1".into(),
                    offset: 0,
                    len: 64
                }
            ),
        );
        match run(
            &recovered,
            NetFsOp::Lstat {
                path: "/d2/f2".into(),
            },
        ) {
            NetFsResult::Stat(stat) => assert_eq!(stat.mtime, 777),
            other => panic!("lstat: {other:?}"),
        }
        // The restored fd table still knows the open descriptor and keeps
        // allocating past it.
        assert_eq!(run(&recovered, NetFsOp::Release { fd }), NetFsResult::Ok);
        match run(
            &recovered,
            NetFsOp::Open {
                path: "/d0/f0".into(),
            },
        ) {
            NetFsResult::Fd(next) => assert!(next > fd, "fd counter restored"),
            other => panic!("reopen: {other:?}"),
        }
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        use psmr_recovery::Snapshot;
        let service = NetFsService::new();
        assert!(service.restore(&[1, 2, 3]).is_err(), "truncated header");
        let mut bad = 1u64.to_le_bytes().to_vec();
        bad.push(7); // unknown entry kind
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(b"/x");
        assert!(service.restore(&bad).is_err(), "unknown kind");
        // A valid snapshot with trailing garbage is rejected too.
        let mut trailing = service.snapshot();
        trailing.push(0);
        assert!(service.restore(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn spec_declares_every_command() {
        let map = dependency_spec().into_map();
        for cmd in [
            CREATE, MKNOD, MKDIR, UNLINK, RMDIR, OPEN, UTIMENS, RELEASE, OPENDIR, RELEASEDIR,
            ACCESS, LSTAT, READ, WRITE, READDIR,
        ] {
            let _ = map.class(cmd); // would panic if undeclared
        }
        // Same-path read/write conflict; different paths don't.
        let w1 = NetFsOp::Write {
            path: "/a".into(),
            offset: 0,
            data: vec![],
        };
        let r1 = NetFsOp::Read {
            path: "/a".into(),
            offset: 0,
            len: 1,
        };
        let r2 = NetFsOp::Read {
            path: "/b".into(),
            offset: 0,
            len: 1,
        };
        assert!(map.conflicts(WRITE, &w1.encode_payload(), READ, &r1.encode_payload()));
        assert!(!map.conflicts(WRITE, &w1.encode_payload(), READ, &r2.encode_payload()));
        // Structural calls conflict with everything.
        let mk = NetFsOp::Mkdir { path: "/x".into() };
        assert!(map.conflicts(MKDIR, &mk.encode_payload(), READ, &r2.encode_payload()));
    }
}
