//! The client-side file system proxy.
//!
//! Stands in for the FUSE interception layer of §VI-C: applications call
//! typed methods; the proxy marshals and compresses each call, multicasts
//! it through the replication engine, and decompresses the response.
//! Unlike the key-value store (one proxy per client), NetFS shares one
//! client proxy per node in the paper — here each [`NetFsClient`] wraps one
//! [`ClientProxy`] and can be shared behind a lock if desired.

use crate::ops::{NetFsOp, NetFsResult, Stat};
use psmr_common::ids::RequestId;
use psmr_core::client::ClientProxy;

/// A typed file system client over a replication engine.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct NetFsClient {
    proxy: ClientProxy,
}

impl NetFsClient {
    /// Wraps an engine client.
    pub fn new(proxy: ClientProxy) -> Self {
        Self { proxy }
    }

    fn call(&mut self, op: NetFsOp) -> NetFsResult {
        let payload = op.encode_payload();
        let resp = self.proxy.execute(op.command(), payload);
        NetFsResult::decode(&resp).expect("NetFS responses decode")
    }

    fn unit(&mut self, op: NetFsOp) -> Result<(), i32> {
        match self.call(op) {
            NetFsResult::Ok => Ok(()),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Creates an empty file.
    pub fn create(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Create { path: path.into() })
    }

    /// Creates a file node (alias of create in our model).
    pub fn mknod(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Mknod { path: path.into() })
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Mkdir { path: path.into() })
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Unlink { path: path.into() })
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Rmdir { path: path.into() })
    }

    /// Opens a file, returning a descriptor.
    pub fn open(&mut self, path: &str) -> Result<u64, i32> {
        match self.call(NetFsOp::Open { path: path.into() }) {
            NetFsResult::Fd(fd) => Ok(fd),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Opens a directory, returning a descriptor.
    pub fn opendir(&mut self, path: &str) -> Result<u64, i32> {
        match self.call(NetFsOp::Opendir { path: path.into() }) {
            NetFsResult::Fd(fd) => Ok(fd),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Closes a file descriptor.
    pub fn release(&mut self, fd: u64) -> Result<(), i32> {
        self.unit(NetFsOp::Release { fd })
    }

    /// Closes a directory descriptor.
    pub fn releasedir(&mut self, fd: u64) -> Result<(), i32> {
        self.unit(NetFsOp::Releasedir { fd })
    }

    /// Sets a file's modification time.
    pub fn utimens(&mut self, path: &str, mtime: u64) -> Result<(), i32> {
        self.unit(NetFsOp::Utimens {
            path: path.into(),
            mtime,
        })
    }

    /// Existence check.
    pub fn access(&mut self, path: &str) -> Result<(), i32> {
        self.unit(NetFsOp::Access { path: path.into() })
    }

    /// Metadata lookup.
    pub fn lstat(&mut self, path: &str) -> Result<Stat, i32> {
        match self.call(NetFsOp::Lstat { path: path.into() }) {
            NetFsResult::Stat(stat) => Ok(stat),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&mut self, path: &str, offset: u64, len: u32) -> Result<Vec<u8>, i32> {
        match self.call(NetFsOp::Read {
            path: path.into(),
            offset,
            len,
        }) {
            NetFsResult::Data(data) => Ok(data),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Writes `data` at `offset`.
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<(), i32> {
        self.unit(NetFsOp::Write {
            path: path.into(),
            offset,
            data: data.to_vec(),
        })
    }

    /// Lists a directory.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, i32> {
        match self.call(NetFsOp::Readdir { path: path.into() }) {
            NetFsResult::Entries(entries) => Ok(entries),
            NetFsResult::Err(e) => Err(e),
            other => panic!("unexpected NetFS response {other:?}"),
        }
    }

    /// Submits a call without waiting (windowed benchmarking).
    pub fn submit(&mut self, op: &NetFsOp) -> RequestId {
        self.proxy.submit(op.command(), op.encode_payload())
    }

    /// Receives the next completed call's decoded response.
    pub fn recv(&mut self) -> (RequestId, NetFsResult) {
        let (id, payload) = self.proxy.recv_response();
        (
            id,
            NetFsResult::decode(&payload).expect("NetFS responses decode"),
        )
    }

    /// Outstanding windowed calls.
    pub fn outstanding(&self) -> usize {
        self.proxy.outstanding()
    }
}
