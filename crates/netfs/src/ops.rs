//! NetFS command identifiers, marshalling and path partitioning.
//!
//! Request payloads have the shape `[8-byte path key][lz-compressed op
//! bytes]`: the key prefix stays uncompressed so the C-Dep key extractor
//! (which runs in both client and server proxies) can route without
//! decompressing; the op itself is compressed on the client and
//! decompressed by the executing worker (§VI-C).

use psmr_common::ids::CommandId;

/// `create(path)` — creates an empty file. Structural: depends on all.
pub const CREATE: CommandId = CommandId::new(10);
/// `mknod(path)` — creates a file node. Structural.
pub const MKNOD: CommandId = CommandId::new(11);
/// `mkdir(path)` — creates a directory. Structural.
pub const MKDIR: CommandId = CommandId::new(12);
/// `unlink(path)` — removes a file. Structural.
pub const UNLINK: CommandId = CommandId::new(13);
/// `rmdir(path)` — removes an empty directory. Structural.
pub const RMDIR: CommandId = CommandId::new(14);
/// `open(path)` — allocates a descriptor in the shared fd table. Depends
/// on all (the table is shared by every worker).
pub const OPEN: CommandId = CommandId::new(15);
/// `utimens(path, mtime)` — sets the modification time. Structural in the
/// paper's C-Dep.
pub const UTIMENS: CommandId = CommandId::new(16);
/// `release(fd)` — closes a descriptor. Shared-table: depends on all.
pub const RELEASE: CommandId = CommandId::new(17);
/// `opendir(path)` — opens a directory handle. Shared-table.
pub const OPENDIR: CommandId = CommandId::new(18);
/// `releasedir(fd)` — closes a directory handle. Shared-table.
pub const RELEASEDIR: CommandId = CommandId::new(19);
/// `access(path)` — existence check. Per-path.
pub const ACCESS: CommandId = CommandId::new(20);
/// `lstat(path)` — returns size/kind/mtime. Per-path.
pub const LSTAT: CommandId = CommandId::new(21);
/// `read(path, offset, len)` — reads file bytes. Per-path.
pub const READ: CommandId = CommandId::new(22);
/// `write(path, offset, data)` — writes file bytes. Per-path.
pub const WRITE: CommandId = CommandId::new(23);
/// `readdir(path)` — lists directory entries. Per-path.
pub const READDIR: CommandId = CommandId::new(24);

/// Stable FNV-1a hash of a path, used to assign paths to ranges (the
/// paper's "eight path ranges, each one assigned to a separate thread").
/// Must be identical on clients and servers; hence no `std` hasher.
pub fn path_key(path: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in path.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A decoded NetFS invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFsOp {
    /// See [`CREATE`].
    Create { path: String },
    /// See [`MKNOD`].
    Mknod { path: String },
    /// See [`MKDIR`].
    Mkdir { path: String },
    /// See [`UNLINK`].
    Unlink { path: String },
    /// See [`RMDIR`].
    Rmdir { path: String },
    /// See [`OPEN`].
    Open { path: String },
    /// See [`UTIMENS`].
    Utimens { path: String, mtime: u64 },
    /// See [`RELEASE`].
    Release { fd: u64 },
    /// See [`OPENDIR`].
    Opendir { path: String },
    /// See [`RELEASEDIR`].
    Releasedir { fd: u64 },
    /// See [`ACCESS`].
    Access { path: String },
    /// See [`LSTAT`].
    Lstat { path: String },
    /// See [`READ`].
    Read { path: String, offset: u64, len: u32 },
    /// See [`WRITE`].
    Write {
        path: String,
        offset: u64,
        data: Vec<u8>,
    },
    /// See [`READDIR`].
    Readdir { path: String },
}

#[allow(missing_docs)]
impl NetFsOp {
    /// The command identifier of this operation.
    pub fn command(&self) -> CommandId {
        match self {
            NetFsOp::Create { .. } => CREATE,
            NetFsOp::Mknod { .. } => MKNOD,
            NetFsOp::Mkdir { .. } => MKDIR,
            NetFsOp::Unlink { .. } => UNLINK,
            NetFsOp::Rmdir { .. } => RMDIR,
            NetFsOp::Open { .. } => OPEN,
            NetFsOp::Utimens { .. } => UTIMENS,
            NetFsOp::Release { .. } => RELEASE,
            NetFsOp::Opendir { .. } => OPENDIR,
            NetFsOp::Releasedir { .. } => RELEASEDIR,
            NetFsOp::Access { .. } => ACCESS,
            NetFsOp::Lstat { .. } => LSTAT,
            NetFsOp::Read { .. } => READ,
            NetFsOp::Write { .. } => WRITE,
            NetFsOp::Readdir { .. } => READDIR,
        }
    }

    /// The routing key: the path hash, or the fd for descriptor ops (fd
    /// ops are globally dependent anyway, so their key is unused).
    pub fn key(&self) -> u64 {
        match self {
            NetFsOp::Release { fd } | NetFsOp::Releasedir { fd } => *fd,
            NetFsOp::Create { path }
            | NetFsOp::Mknod { path }
            | NetFsOp::Mkdir { path }
            | NetFsOp::Unlink { path }
            | NetFsOp::Rmdir { path }
            | NetFsOp::Open { path }
            | NetFsOp::Utimens { path, .. }
            | NetFsOp::Opendir { path }
            | NetFsOp::Access { path }
            | NetFsOp::Lstat { path }
            | NetFsOp::Read { path, .. }
            | NetFsOp::Write { path, .. }
            | NetFsOp::Readdir { path } => path_key(path),
        }
    }

    /// Serializes the op body (everything but the key prefix; this is what
    /// gets lz-compressed on the wire).
    pub fn encode_body(&self) -> Vec<u8> {
        fn with_path(tag: u8, path: &str, extra: &[u8]) -> Vec<u8> {
            let mut out = vec![tag];
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(extra);
            out
        }
        match self {
            NetFsOp::Create { path } => with_path(0, path, &[]),
            NetFsOp::Mknod { path } => with_path(1, path, &[]),
            NetFsOp::Mkdir { path } => with_path(2, path, &[]),
            NetFsOp::Unlink { path } => with_path(3, path, &[]),
            NetFsOp::Rmdir { path } => with_path(4, path, &[]),
            NetFsOp::Open { path } => with_path(5, path, &[]),
            NetFsOp::Utimens { path, mtime } => with_path(6, path, &mtime.to_le_bytes()),
            NetFsOp::Release { fd } => {
                let mut out = vec![7];
                out.extend_from_slice(&fd.to_le_bytes());
                out
            }
            NetFsOp::Opendir { path } => with_path(8, path, &[]),
            NetFsOp::Releasedir { fd } => {
                let mut out = vec![9];
                out.extend_from_slice(&fd.to_le_bytes());
                out
            }
            NetFsOp::Access { path } => with_path(10, path, &[]),
            NetFsOp::Lstat { path } => with_path(11, path, &[]),
            NetFsOp::Read { path, offset, len } => {
                let mut extra = offset.to_le_bytes().to_vec();
                extra.extend_from_slice(&len.to_le_bytes());
                with_path(12, path, &extra)
            }
            NetFsOp::Write { path, offset, data } => {
                let mut extra = offset.to_le_bytes().to_vec();
                extra.extend_from_slice(&(data.len() as u32).to_le_bytes());
                extra.extend_from_slice(data);
                with_path(13, path, &extra)
            }
            NetFsOp::Readdir { path } => with_path(14, path, &[]),
        }
    }

    /// Parses an op body produced by [`NetFsOp::encode_body`].
    ///
    /// Returns `None` on malformed bytes.
    pub fn decode_body(body: &[u8]) -> Option<Self> {
        fn read_path(body: &[u8]) -> Option<(String, &[u8])> {
            let len = u32::from_le_bytes(body.get(0..4)?.try_into().ok()?) as usize;
            let bytes = body.get(4..4 + len)?;
            let rest = &body[4 + len..];
            Some((String::from_utf8(bytes.to_vec()).ok()?, rest))
        }
        let (&tag, body) = body.split_first()?;
        Some(match tag {
            0 => NetFsOp::Create {
                path: read_path(body)?.0,
            },
            1 => NetFsOp::Mknod {
                path: read_path(body)?.0,
            },
            2 => NetFsOp::Mkdir {
                path: read_path(body)?.0,
            },
            3 => NetFsOp::Unlink {
                path: read_path(body)?.0,
            },
            4 => NetFsOp::Rmdir {
                path: read_path(body)?.0,
            },
            5 => NetFsOp::Open {
                path: read_path(body)?.0,
            },
            6 => {
                let (path, rest) = read_path(body)?;
                let mtime = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
                NetFsOp::Utimens { path, mtime }
            }
            7 => NetFsOp::Release {
                fd: u64::from_le_bytes(body.get(0..8)?.try_into().ok()?),
            },
            8 => NetFsOp::Opendir {
                path: read_path(body)?.0,
            },
            9 => NetFsOp::Releasedir {
                fd: u64::from_le_bytes(body.get(0..8)?.try_into().ok()?),
            },
            10 => NetFsOp::Access {
                path: read_path(body)?.0,
            },
            11 => NetFsOp::Lstat {
                path: read_path(body)?.0,
            },
            12 => {
                let (path, rest) = read_path(body)?;
                let offset = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
                let len = u32::from_le_bytes(rest.get(8..12)?.try_into().ok()?);
                NetFsOp::Read { path, offset, len }
            }
            13 => {
                let (path, rest) = read_path(body)?;
                let offset = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
                let len = u32::from_le_bytes(rest.get(8..12)?.try_into().ok()?) as usize;
                let data = rest.get(12..12 + len)?.to_vec();
                NetFsOp::Write { path, offset, data }
            }
            14 => NetFsOp::Readdir {
                path: read_path(body)?.0,
            },
            _ => return None,
        })
    }

    /// Full request payload: `[8-byte key][lz-compressed body]`.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = self.key().to_le_bytes().to_vec();
        out.extend_from_slice(&psmr_lz::compress(&self.encode_body()));
        out
    }

    /// Parses a full request payload.
    pub fn decode_payload(payload: &[u8]) -> Option<Self> {
        let body = psmr_lz::decompress(payload.get(8..)?).ok()?;
        Self::decode_body(&body)
    }
}

/// File metadata returned by `lstat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Whether the node is a directory.
    pub is_dir: bool,
    /// Modification time (logical, set by `utimens` and writes).
    pub mtime: u64,
}

/// A decoded NetFS response (compressed on the wire, §VI-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFsResult {
    /// Success without data.
    Ok,
    /// POSIX-style error code (`ENOENT = 2`, `EEXIST = 17`, `ENOTEMPTY =
    /// 39`, `EBADF = 9`, `ENOTDIR = 20`, `EISDIR = 21`).
    Err(i32),
    /// Bytes read.
    Data(Vec<u8>),
    /// Directory entries.
    Entries(Vec<String>),
    /// A descriptor from `open`/`opendir`.
    Fd(u64),
    /// Metadata from `lstat`.
    Stat(Stat),
}

impl NetFsResult {
    /// Serializes and lz-compresses the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            NetFsResult::Ok => body.push(0),
            NetFsResult::Err(code) => {
                body.push(1);
                body.extend_from_slice(&code.to_le_bytes());
            }
            NetFsResult::Data(data) => {
                body.push(2);
                body.extend_from_slice(&(data.len() as u32).to_le_bytes());
                body.extend_from_slice(data);
            }
            NetFsResult::Entries(entries) => {
                body.push(3);
                body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    body.extend_from_slice(&(e.len() as u32).to_le_bytes());
                    body.extend_from_slice(e.as_bytes());
                }
            }
            NetFsResult::Fd(fd) => {
                body.push(4);
                body.extend_from_slice(&fd.to_le_bytes());
            }
            NetFsResult::Stat(stat) => {
                body.push(5);
                body.extend_from_slice(&stat.size.to_le_bytes());
                body.push(u8::from(stat.is_dir));
                body.extend_from_slice(&stat.mtime.to_le_bytes());
            }
        }
        psmr_lz::compress(&body)
    }

    /// Decompresses and parses a response.
    ///
    /// Returns `None` on malformed bytes.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let body = psmr_lz::decompress(payload).ok()?;
        let (&tag, rest) = body.split_first()?;
        Some(match tag {
            0 => NetFsResult::Ok,
            1 => NetFsResult::Err(i32::from_le_bytes(rest.get(0..4)?.try_into().ok()?)),
            2 => {
                let len = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?) as usize;
                NetFsResult::Data(rest.get(4..4 + len)?.to_vec())
            }
            3 => {
                let n = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?) as usize;
                let mut entries = Vec::with_capacity(n);
                let mut at = 4usize;
                for _ in 0..n {
                    let len = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                    at += 4;
                    entries.push(String::from_utf8(rest.get(at..at + len)?.to_vec()).ok()?);
                    at += len;
                }
                NetFsResult::Entries(entries)
            }
            4 => NetFsResult::Fd(u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?)),
            5 => NetFsResult::Stat(Stat {
                size: u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?),
                is_dir: *rest.get(8)? != 0,
                mtime: u64::from_le_bytes(rest.get(9..17)?.try_into().ok()?),
            }),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<NetFsOp> {
        vec![
            NetFsOp::Create { path: "/a".into() },
            NetFsOp::Mknod { path: "/a".into() },
            NetFsOp::Mkdir { path: "/d".into() },
            NetFsOp::Unlink { path: "/a".into() },
            NetFsOp::Rmdir { path: "/d".into() },
            NetFsOp::Open { path: "/a".into() },
            NetFsOp::Utimens {
                path: "/a".into(),
                mtime: 42,
            },
            NetFsOp::Release { fd: 3 },
            NetFsOp::Opendir { path: "/d".into() },
            NetFsOp::Releasedir { fd: 4 },
            NetFsOp::Access { path: "/a".into() },
            NetFsOp::Lstat { path: "/a".into() },
            NetFsOp::Read {
                path: "/a".into(),
                offset: 10,
                len: 1024,
            },
            NetFsOp::Write {
                path: "/a".into(),
                offset: 0,
                data: vec![7; 1024],
            },
            NetFsOp::Readdir { path: "/d".into() },
        ]
    }

    #[test]
    fn every_op_round_trips_through_the_payload() {
        for op in all_ops() {
            let payload = op.encode_payload();
            let back = NetFsOp::decode_payload(&payload).expect("decodes");
            assert_eq!(back, op);
            // The key prefix is the uncompressed routing key.
            let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
            assert_eq!(key, op.key());
        }
    }

    #[test]
    fn results_round_trip() {
        let results = [
            NetFsResult::Ok,
            NetFsResult::Err(2),
            NetFsResult::Data(vec![1; 1024]),
            NetFsResult::Entries(vec!["a.txt".into(), "b.txt".into()]),
            NetFsResult::Fd(99),
            NetFsResult::Stat(Stat {
                size: 512,
                is_dir: false,
                mtime: 7,
            }),
        ];
        for r in results {
            assert_eq!(NetFsResult::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn path_key_is_stable_and_spreads() {
        assert_eq!(path_key("/a/b"), path_key("/a/b"));
        assert_ne!(path_key("/a/b"), path_key("/a/c"));
        // 1000 distinct paths spread over 8 ranges without pathological
        // imbalance.
        let mut counts = [0u32; 8];
        for i in 0..1000 {
            counts[(path_key(&format!("/dir/file{i}")) % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((80..200).contains(&c), "range count {c}");
        }
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert_eq!(NetFsOp::decode_body(&[]), None);
        assert_eq!(NetFsOp::decode_body(&[99]), None);
        assert_eq!(NetFsOp::decode_body(&[0, 255, 0, 0, 0]), None);
        assert_eq!(NetFsResult::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn write_payloads_compress() {
        // A 1 KiB write of compressible data must shrink on the wire
        // (§VI-C: requests are compressed by the client).
        let op = NetFsOp::Write {
            path: "/f".into(),
            offset: 0,
            data: vec![0u8; 1024],
        };
        let payload = op.encode_payload();
        assert!(
            payload.len() < 200,
            "compressed write is {} bytes",
            payload.len()
        );
    }
}
