//! NetFS — the replicated networked file system of the paper (§V-B, §VI-C).
//!
//! NetFS implements a subset of the FUSE calls, enough to manipulate files
//! and directories: `create`, `mknod`, `mkdir`, `unlink`, `rmdir`, `open`,
//! `utimens`, `release`, `opendir`, `releasedir` (all of which change the
//! file-system tree or the shared file-descriptor table and therefore
//! *depend on all calls*), plus `access`, `lstat`, `read`, `write` and
//! `readdir` (which depend on the calls above and on each other *when they
//! use the same file path*). Soft and hard links are not supported, as in
//! the paper.
//!
//! Deployment (§VI-C):
//!
//! * the client-side **file system proxy** ([`client::NetFsClient`]) stands
//!   in for the FUSE interception layer: applications call typed methods,
//!   the proxy marshals, **lz-compresses** the request and multicasts it;
//! * paths are partitioned into ranges by a stable hash; with MPL = 8 this
//!   yields the paper's deployment of nine multicast groups — eight for
//!   per-path requests and one (`g_all`) for serialized requests;
//! * the worker that executes a request decompresses it, runs it against
//!   the in-memory file system ([`fs::MemFs`]), and compresses the
//!   response.
//!
//! # Example
//!
//! ```
//! use psmr_common::SystemConfig;
//! use psmr_core::engines::{Engine, PsmrEngine};
//! use psmr_netfs::{client::NetFsClient, dependency_spec, service::NetFsService};
//!
//! let mut cfg = SystemConfig::new(2);
//! cfg.replicas(1);
//! let engine = PsmrEngine::spawn(&cfg, dependency_spec().into_map(), NetFsService::new);
//! let mut fs = NetFsClient::new(engine.client());
//! fs.mkdir("/docs").unwrap();
//! fs.create("/docs/a.txt").unwrap();
//! fs.write("/docs/a.txt", 0, b"hello").unwrap();
//! assert_eq!(fs.read("/docs/a.txt", 0, 5).unwrap(), b"hello");
//! engine.shutdown();
//! ```

pub mod client;
pub mod fs;
pub mod ops;
pub mod service;

pub use client::NetFsClient;
pub use ops::{path_key, NetFsOp, NetFsResult};
pub use service::{dependency_spec, NetFsService};
