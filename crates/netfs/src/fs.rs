//! The in-memory file system a NetFS replica executes against.
//!
//! A tree of directories and files plus the shared file-descriptor table
//! (§V-B: "each file descriptor seen by a client when opening a file is
//! mapped to a local file descriptor at each NetFS server. Such mapping is
//! done with a hash table accessed by all threads").
//!
//! Locking discipline (mirrors the service's C-Dep):
//!
//! * structural calls and fd-table calls are Global → they take the tree's
//!   write lock;
//! * per-path calls take the read lock to resolve the path and then lock
//!   the file's own mutex for data access. Same-path calls are serialized
//!   by C-Dep; different-path calls touch different mutexes.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;

/// POSIX-ish error codes used by NetFS.
pub mod errno {
    /// No such file or directory.
    pub const ENOENT: i32 = 2;
    /// Bad file descriptor.
    pub const EBADF: i32 = 9;
    /// File exists.
    pub const EEXIST: i32 = 17;
    /// Not a directory.
    pub const ENOTDIR: i32 = 20;
    /// Is a directory.
    pub const EISDIR: i32 = 21;
    /// Directory not empty.
    pub const ENOTEMPTY: i32 = 39;
}

use errno::*;

#[derive(Debug)]
enum Node {
    File {
        data: Mutex<Vec<u8>>,
        mtime: Mutex<u64>,
    },
    Dir {
        children: HashMap<String, Node>,
    },
}

impl Node {
    fn new_file() -> Self {
        Node::File {
            data: Mutex::new(Vec::new()),
            mtime: Mutex::new(0),
        }
    }

    fn new_dir() -> Self {
        Node::Dir {
            children: HashMap::new(),
        }
    }
}

/// What an open descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Handle {
    File(String),
    Dir(String),
}

/// The in-memory file system. All methods return POSIX-style results.
#[derive(Debug)]
pub struct MemFs {
    root: RwLock<Node>,
    /// The shared fd table (one per replica, accessed by all workers).
    fds: Mutex<FdTable>,
}

#[derive(Debug, Default)]
struct FdTable {
    next: u64,
    open: HashMap<u64, Handle>,
}

/// Splits `/a/b/c` into `(["a", "b"], "c")`. Returns `None` for the root
/// or malformed paths.
fn split_path(path: &str) -> Option<(Vec<&str>, &str)> {
    if !path.starts_with('/') {
        return None;
    }
    let mut parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let last = parts.pop()?;
    Some((parts, last))
}

impl MemFs {
    /// An empty file system (just `/`).
    pub fn new() -> Self {
        Self {
            root: RwLock::new(Node::new_dir()),
            fds: Mutex::new(FdTable::default()),
        }
    }

    fn with_parent<T>(
        root: &Node,
        path: &str,
        f: impl FnOnce(&HashMap<String, Node>, &str) -> Result<T, i32>,
    ) -> Result<T, i32> {
        let (dirs, name) = split_path(path).ok_or(ENOENT)?;
        let mut node = root;
        for d in dirs {
            match node {
                Node::Dir { children } => {
                    node = children.get(d).ok_or(ENOENT)?;
                }
                Node::File { .. } => return Err(ENOTDIR),
            }
        }
        match node {
            Node::Dir { children } => f(children, name),
            Node::File { .. } => Err(ENOTDIR),
        }
    }

    fn with_parent_mut<T>(
        root: &mut Node,
        path: &str,
        f: impl FnOnce(&mut HashMap<String, Node>, &str) -> Result<T, i32>,
    ) -> Result<T, i32> {
        let (dirs, name) = split_path(path).ok_or(ENOENT)?;
        let mut node = root;
        for d in dirs {
            match node {
                Node::Dir { children } => {
                    node = children.get_mut(d).ok_or(ENOENT)?;
                }
                Node::File { .. } => return Err(ENOTDIR),
            }
        }
        match node {
            Node::Dir { children } => f(children, name),
            Node::File { .. } => Err(ENOTDIR),
        }
    }

    /// Creates an empty file (`create` / `mknod`).
    pub fn create(&self, path: &str) -> Result<(), i32> {
        let mut root = self.root.write();
        Self::with_parent_mut(&mut root, path, |children, name| {
            if children.contains_key(name) {
                return Err(EEXIST);
            }
            children.insert(name.to_string(), Node::new_file());
            Ok(())
        })
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> Result<(), i32> {
        let mut root = self.root.write();
        Self::with_parent_mut(&mut root, path, |children, name| {
            if children.contains_key(name) {
                return Err(EEXIST);
            }
            children.insert(name.to_string(), Node::new_dir());
            Ok(())
        })
    }

    /// Removes a file.
    pub fn unlink(&self, path: &str) -> Result<(), i32> {
        let mut root = self.root.write();
        Self::with_parent_mut(&mut root, path, |children, name| match children.get(name) {
            Some(Node::File { .. }) => {
                children.remove(name);
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(EISDIR),
            None => Err(ENOENT),
        })
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &str) -> Result<(), i32> {
        let mut root = self.root.write();
        Self::with_parent_mut(&mut root, path, |children, name| match children.get(name) {
            Some(Node::Dir { children: grand }) => {
                if !grand.is_empty() {
                    return Err(ENOTEMPTY);
                }
                children.remove(name);
                Ok(())
            }
            Some(Node::File { .. }) => Err(ENOTDIR),
            None => Err(ENOENT),
        })
    }

    /// Opens a file, allocating a shared-table descriptor.
    pub fn open(&self, path: &str) -> Result<u64, i32> {
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::File { .. }) => Ok(()),
            Some(Node::Dir { .. }) => Err(EISDIR),
            None => Err(ENOENT),
        })?;
        let mut fds = self.fds.lock();
        fds.next += 1;
        let fd = fds.next;
        fds.open.insert(fd, Handle::File(path.to_string()));
        Ok(fd)
    }

    /// Opens a directory handle.
    pub fn opendir(&self, path: &str) -> Result<u64, i32> {
        if path == "/" {
            let mut fds = self.fds.lock();
            fds.next += 1;
            let fd = fds.next;
            fds.open.insert(fd, Handle::Dir("/".to_string()));
            return Ok(fd);
        }
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::Dir { .. }) => Ok(()),
            Some(Node::File { .. }) => Err(ENOTDIR),
            None => Err(ENOENT),
        })?;
        let mut fds = self.fds.lock();
        fds.next += 1;
        let fd = fds.next;
        fds.open.insert(fd, Handle::Dir(path.to_string()));
        Ok(fd)
    }

    /// Closes a file descriptor.
    pub fn release(&self, fd: u64) -> Result<(), i32> {
        // Take the lock once: a guard held through a `match` scrutinee
        // would deadlock against the re-insert below.
        let mut fds = self.fds.lock();
        match fds.open.remove(&fd) {
            Some(Handle::File(_)) => Ok(()),
            Some(h @ Handle::Dir(_)) => {
                // Wrong kind: restore and fail, like close(2) on a dirfd
                // opened with opendir in our model.
                fds.open.insert(fd, h);
                Err(EBADF)
            }
            None => Err(EBADF),
        }
    }

    /// Closes a directory descriptor.
    pub fn releasedir(&self, fd: u64) -> Result<(), i32> {
        let mut fds = self.fds.lock();
        match fds.open.remove(&fd) {
            Some(Handle::Dir(_)) => Ok(()),
            Some(h @ Handle::File(_)) => {
                fds.open.insert(fd, h);
                Err(EBADF)
            }
            None => Err(EBADF),
        }
    }

    /// Number of open descriptors (tests/diagnostics).
    pub fn open_fds(&self) -> usize {
        self.fds.lock().open.len()
    }

    /// Sets a file's modification time.
    pub fn utimens(&self, path: &str, mtime: u64) -> Result<(), i32> {
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::File { mtime: m, .. }) => {
                *m.lock() = mtime;
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(EISDIR),
            None => Err(ENOENT),
        })
    }

    /// Existence check.
    pub fn access(&self, path: &str) -> Result<(), i32> {
        if path == "/" {
            return Ok(());
        }
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| {
            children.get(name).map(|_| ()).ok_or(ENOENT)
        })
    }

    /// Metadata lookup.
    pub fn lstat(&self, path: &str) -> Result<crate::ops::Stat, i32> {
        if path == "/" {
            return Ok(crate::ops::Stat {
                size: 0,
                is_dir: true,
                mtime: 0,
            });
        }
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::File { data, mtime }) => Ok(crate::ops::Stat {
                size: data.lock().len() as u64,
                is_dir: false,
                mtime: *mtime.lock(),
            }),
            Some(Node::Dir { .. }) => Ok(crate::ops::Stat {
                size: 0,
                is_dir: true,
                mtime: 0,
            }),
            None => Err(ENOENT),
        })
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, path: &str, offset: u64, len: u32) -> Result<Vec<u8>, i32> {
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::File { data, .. }) => {
                let data = data.lock();
                let start = (offset as usize).min(data.len());
                let end = (start + len as usize).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Some(Node::Dir { .. }) => Err(EISDIR),
            None => Err(ENOENT),
        })
    }

    /// Writes `data` at `offset`, zero-filling any gap, and bumps the
    /// file's mtime deterministically (mtime = max(mtime+1, offset-derived
    /// counter) is avoided; we simply increment, which is deterministic
    /// across replicas because same-path writes are serialized).
    pub fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<u32, i32> {
        let root = self.root.read();
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::File { data: file, mtime }) => {
                let mut file = file.lock();
                let end = offset as usize + data.len();
                if file.len() < end {
                    file.resize(end, 0);
                }
                file[offset as usize..end].copy_from_slice(data);
                *mtime.lock() += 1;
                Ok(data.len() as u32)
            }
            Some(Node::Dir { .. }) => Err(EISDIR),
            None => Err(ENOENT),
        })
    }

    /// Serializes the complete file system — tree *and* fd table — into
    /// the deterministic checkpoint encoding: a pre-order walk with
    /// children visited in sorted name order, then the open descriptors in
    /// ascending fd order. Replicas at the same consistent cut produce
    /// byte-identical output.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        fn walk(node: &Node, path: &str, out: &mut Vec<(String, u8, u64, Vec<u8>)>) {
            if let Node::Dir { children } = node {
                let mut names: Vec<&String> = children.keys().collect();
                names.sort_unstable();
                for name in names {
                    let child_path = format!("{}/{name}", if path == "/" { "" } else { path });
                    match &children[name] {
                        Node::File { data, mtime } => {
                            out.push((child_path, 1, *mtime.lock(), data.lock().clone()));
                        }
                        dir @ Node::Dir { .. } => {
                            out.push((child_path.clone(), 0, 0, Vec::new()));
                            walk(dir, &child_path, out);
                        }
                    }
                }
            }
        }
        let root = self.root.read();
        let mut entries = Vec::new();
        walk(&root, "/", &mut entries);
        let mut out = Vec::new();
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (path, kind, mtime, data) in entries {
            out.push(kind);
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            if kind == 1 {
                out.extend_from_slice(&mtime.to_le_bytes());
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                out.extend_from_slice(&data);
            }
        }
        let fds = self.fds.lock();
        out.extend_from_slice(&fds.next.to_le_bytes());
        out.extend_from_slice(&(fds.open.len() as u64).to_le_bytes());
        let mut open: Vec<(&u64, &Handle)> = fds.open.iter().collect();
        open.sort_unstable_by_key(|(fd, _)| **fd);
        for (fd, handle) in open {
            out.extend_from_slice(&fd.to_le_bytes());
            let (kind, path) = match handle {
                Handle::Dir(path) => (0u8, path),
                Handle::File(path) => (1u8, path),
            };
            out.push(kind);
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
        }
        out
    }

    /// Replaces the file system's entire state with a snapshot produced by
    /// [`MemFs::snapshot_bytes`]. Only called on a quiesced replica.
    ///
    /// # Errors
    ///
    /// Returns [`psmr_recovery::RestoreError`] if the bytes do not decode.
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<(), psmr_recovery::RestoreError> {
        let mut cursor = Cursor { bytes, at: 0 };
        let mut root = Node::new_dir();
        let entries = cursor.u64("entry count")?;
        for _ in 0..entries {
            let kind = cursor.u8("entry kind")?;
            let path = cursor.string("entry path")?;
            let node = match kind {
                0 => Node::new_dir(),
                1 => {
                    let mtime = cursor.u64("file mtime")?;
                    let len = cursor.u64("file size")? as usize;
                    let data = cursor.take(len, "file data")?.to_vec();
                    Node::File {
                        data: Mutex::new(data),
                        mtime: Mutex::new(mtime),
                    }
                }
                other => {
                    return Err(psmr_recovery::RestoreError::new(format!(
                        "entry kind {other}"
                    )))
                }
            };
            // Pre-order encoding: the parent directory always precedes its
            // children, so insertion into the rebuilt tree cannot miss.
            Self::with_parent_mut(&mut root, &path, |children, name| {
                children.insert(name.to_string(), node);
                Ok(())
            })
            .map_err(|_| psmr_recovery::RestoreError::new(format!("orphan path {path}")))?;
        }
        let mut fds = FdTable {
            next: cursor.u64("fd counter")?,
            open: HashMap::new(),
        };
        let open = cursor.u64("fd count")?;
        for _ in 0..open {
            let fd = cursor.u64("fd")?;
            let kind = cursor.u8("fd kind")?;
            let path = cursor.string("fd path")?;
            let handle = match kind {
                0 => Handle::Dir(path),
                1 => Handle::File(path),
                other => return Err(psmr_recovery::RestoreError::new(format!("fd kind {other}"))),
            };
            fds.open.insert(fd, handle);
        }
        if cursor.at != bytes.len() {
            return Err(psmr_recovery::RestoreError::new("trailing bytes"));
        }
        *self.root.write() = root;
        *self.fds.lock() = fds;
        Ok(())
    }

    /// Lists a directory's entries, sorted (determinism across replicas).
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, i32> {
        let root = self.root.read();
        let list = |children: &HashMap<String, Node>| {
            let mut names: Vec<String> = children.keys().cloned().collect();
            names.sort_unstable();
            names
        };
        if path == "/" {
            return match &*root {
                Node::Dir { children } => Ok(list(children)),
                Node::File { .. } => Err(ENOTDIR),
            };
        }
        Self::with_parent(&root, path, |children, name| match children.get(name) {
            Some(Node::Dir { children: grand }) => Ok(list(grand)),
            Some(Node::File { .. }) => Err(ENOTDIR),
            None => Err(ENOENT),
        })
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

/// Bounds-checked reader over a snapshot byte stream; every accessor names
/// the structure it was decoding so malformed snapshots fail descriptively.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], psmr_recovery::RestoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or_else(|| psmr_recovery::RestoreError::new(what))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, psmr_recovery::RestoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, psmr_recovery::RestoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, what: &str) -> Result<String, psmr_recovery::RestoreError> {
        let len = u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")) as usize;
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|_| psmr_recovery::RestoreError::new(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_create_write_read_cycle() {
        let fs = MemFs::new();
        fs.mkdir("/docs").unwrap();
        fs.create("/docs/a.txt").unwrap();
        assert_eq!(fs.write("/docs/a.txt", 0, b"hello world"), Ok(11));
        assert_eq!(fs.read("/docs/a.txt", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.read("/docs/a.txt", 6, 100).unwrap(), b"world");
        let stat = fs.lstat("/docs/a.txt").unwrap();
        assert_eq!(stat.size, 11);
        assert!(!stat.is_dir);
    }

    #[test]
    fn write_beyond_eof_zero_fills() {
        let fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.write("/f", 4, b"x").unwrap();
        assert_eq!(fs.read("/f", 0, 10).unwrap(), b"\0\0\0\0x");
    }

    #[test]
    fn missing_paths_return_enoent() {
        let fs = MemFs::new();
        assert_eq!(fs.read("/nope", 0, 1), Err(ENOENT));
        assert_eq!(fs.unlink("/nope"), Err(ENOENT));
        assert_eq!(fs.access("/nope"), Err(ENOENT));
        assert_eq!(fs.write("/a/b", 0, b"x"), Err(ENOENT));
        assert_eq!(fs.lstat("/nope").unwrap_err(), ENOENT);
    }

    #[test]
    fn type_confusion_errors() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/f").unwrap();
        assert_eq!(fs.read("/d", 0, 1), Err(EISDIR));
        assert_eq!(fs.unlink("/d"), Err(EISDIR));
        assert_eq!(fs.rmdir("/f"), Err(ENOTDIR));
        assert_eq!(fs.readdir("/f"), Err(ENOTDIR));
        assert_eq!(fs.mkdir("/d"), Err(EEXIST));
        assert_eq!(fs.create("/f"), Err(EEXIST));
        // A file used as an intermediate directory component.
        assert_eq!(fs.create("/f/x"), Err(ENOTDIR));
    }

    #[test]
    fn rmdir_requires_empty() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert_eq!(fs.rmdir("/d"), Err(ENOTEMPTY));
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.access("/d"), Err(ENOENT));
    }

    #[test]
    fn fd_table_tracks_open_handles() {
        let fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.mkdir("/d").unwrap();
        let fd = fs.open("/f").unwrap();
        let dd = fs.opendir("/d").unwrap();
        assert_ne!(fd, dd);
        assert_eq!(fs.open_fds(), 2);
        // Kind mismatches fail.
        assert_eq!(fs.release(dd), Err(EBADF));
        assert_eq!(fs.releasedir(fd), Err(EBADF));
        // Proper closes succeed once.
        fs.release(fd).unwrap();
        fs.releasedir(dd).unwrap();
        assert_eq!(fs.release(fd), Err(EBADF));
        assert_eq!(fs.open_fds(), 0);
    }

    #[test]
    fn readdir_is_sorted() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        for name in ["zeta", "alpha", "mid"] {
            fs.create(&format!("/d/{name}")).unwrap();
        }
        assert_eq!(fs.readdir("/d").unwrap(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(fs.readdir("/").unwrap(), vec!["d"]);
    }

    #[test]
    fn utimens_and_mtime_updates() {
        let fs = MemFs::new();
        fs.create("/f").unwrap();
        fs.utimens("/f", 1000).unwrap();
        assert_eq!(fs.lstat("/f").unwrap().mtime, 1000);
        fs.write("/f", 0, b"x").unwrap();
        assert_eq!(fs.lstat("/f").unwrap().mtime, 1001);
        assert_eq!(fs.utimens("/d", 0), Err(ENOENT));
    }

    #[test]
    fn concurrent_rw_on_distinct_files() {
        let fs = std::sync::Arc::new(MemFs::new());
        for i in 0..8 {
            fs.create(&format!("/f{i}")).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8usize {
            let fs = std::sync::Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let path = format!("/f{t}");
                for i in 0..500u64 {
                    fs.write(&path, 0, &i.to_le_bytes()).unwrap();
                    let back = fs.read(&path, 0, 8).unwrap();
                    assert_eq!(back, i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
