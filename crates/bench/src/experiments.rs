//! One function per table/figure of the paper's evaluation.
//!
//! Every function builds the deployments of its experiment, drives them,
//! prints the rows/series the paper plots, and saves the report under
//! `target/experiments/`. Thread counts follow §VII: e.g. Figure 3 uses 8
//! workers for P-SMR, 2 for sP-SMR and no-rep, 1 for SMR and 6 for BDB.

use crate::args::BenchArgs;
use crate::driver::{drive_kv, drive_netfs, DriveOpts, NetFsWorkload};
use crate::engines::{build_kv, Technique};
use crate::report::Report;
use psmr_common::metrics::RunSummary;
use psmr_common::SystemConfig;
use psmr_core::engines::{Engine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_netfs::{dependency_spec as netfs_spec, NetFsService};
use psmr_workload::{KeyDist, KvMix};

fn opts(args: &BenchArgs) -> DriveOpts {
    DriveOpts {
        clients: args.clients,
        window: 50,
        warmup: args.warmup_duration(),
        duration: args.duration(),
    }
}

/// Table I: degrees of parallelism in state-machine replication.
pub fn table1() -> Report {
    let mut report = Report::new("table1");
    report.line("Command...   SMR        sP-SMR     P-SMR");
    report.line("...delivery  sequential sequential parallel");
    report.line("...execution sequential parallel   parallel");
    report.line("");
    report.line("(architectural property; see psmr_core::engines for the");
    report.line(" implementations: SmrEngine delivers and executes on one");
    report.line(" thread; SpSmrEngine delivers on one scheduler thread and");
    report.line(" executes on k workers; PsmrEngine delivers and executes");
    report.line(" on k worker threads, each merging g_i with g_all.)");
    report.save();
    report
}

/// Figure 3: performance of independent commands (read-only key-value
/// store, uniform keys).
pub fn fig3(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig3");
    report.line(&format!(
        "independent commands (100% reads, uniform keys, {} keys)",
        args.keys
    ));
    // Thread counts at each technique's peak. The paper's peaks were
    // no-rep 2 / sP-SMR 2 / P-SMR 8 / BDB 6 (§VII-C); on this substrate the
    // scheduler saturates later, so no-rep and sP-SMR peak at more workers
    // (see fig5 for the full sweep). We report each technique at its own
    // peak, as the paper does.
    let deployments = [
        (Technique::NoRep, 4),
        (Technique::Smr, 1),
        (Technique::SpSmr, 6),
        (Technique::Psmr, 8),
        (Technique::Bdb, 6),
    ];
    let dist = KeyDist::uniform(args.keys);
    let mix = KvMix::read_only();
    let mut rows = Vec::new();
    for (technique, workers) in deployments {
        let engine = build_kv(technique, workers, args.keys);
        rows.push(drive_kv(&engine, &mix, &dist, &opts(args)));
        engine.shutdown();
    }
    for row in &rows {
        report.metric(&format!("{}_kcps", row.technique), row.kcps);
        report.metric(&format!("{}_p50_ms", row.technique), row.p50_latency_ms);
        report.metric(&format!("{}_p99_ms", row.technique), row.p99_latency_ms);
    }
    report.summary_table(&rows, "SMR");
    report.cdf_section(&rows, 12);

    // Bench sanity: command-lifecycle tracing at its default 1-in-N
    // sampling rate must be effectively free on the hot path — the knob
    // exists to be left on. Best-of-two per side: single points carry
    // scheduler noise on a shared host.
    let psmr_kcps_at = |trace_sample: u64| -> f64 {
        use psmr_core::engines::PsmrEngine;
        use psmr_kvstore::{fine_dependency_spec, KvService};
        let keys = args.keys;
        let mut cfg = SystemConfig::new(8);
        cfg.replicas(2).trace_sample(trace_sample);
        let engine = PsmrEngine::spawn(&cfg, fine_dependency_spec().into_map(), move || {
            KvService::with_keys_and_work(keys, crate::engines::EXEC_WORK)
        });
        let row = drive_kv(&engine, &mix, &dist, &opts(args));
        engine.shutdown();
        row.kcps
    };
    let default_sample = SystemConfig::new(1).trace_sample;
    let traced = (0..2)
        .map(|_| psmr_kcps_at(default_sample))
        .fold(0.0, f64::max);
    let untraced = (0..2).map(|_| psmr_kcps_at(0)).fold(0.0, f64::max);
    let ratio = traced / untraced.max(f64::MIN_POSITIVE);
    report.line(&format!(
        "trace overhead @1-in-{default_sample}: {traced:.1} Kcps traced vs {untraced:.1} Kcps \
         untraced ({:.1}% of untraced)",
        ratio * 100.0
    ));
    report.metric("psmr_traced_kcps", traced);
    report.metric("psmr_untraced_kcps", untraced);
    report.metric("trace_overhead_ratio", ratio);
    report.save();
    assert!(
        ratio >= 0.95,
        "perf sanity: default trace sampling ({traced:.1} Kcps) must stay within 5% of \
         tracing disabled ({untraced:.1} Kcps)"
    );
    report
}

/// Figure 4: performance of dependent commands (insert/delete only).
pub fn fig4(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig4");
    report.line(&format!(
        "dependent commands (50% inserts / 50% deletes, {} keys)",
        args.keys
    ));
    // §VII-D: peak with 1 thread for every technique except BDB (4).
    let deployments = [
        (Technique::NoRep, 1),
        (Technique::Smr, 1),
        (Technique::SpSmr, 1),
        (Technique::Psmr, 1),
        (Technique::Bdb, 4),
    ];
    let dist = KeyDist::uniform(args.keys);
    let mix = KvMix::insert_delete();
    let mut rows = Vec::new();
    for (technique, workers) in deployments {
        let engine = build_kv(technique, workers, args.keys);
        rows.push(drive_kv(&engine, &mix, &dist, &opts(args)));
        engine.shutdown();
    }
    for row in &rows {
        report.metric(&format!("{}_kcps", row.technique), row.kcps);
        report.metric(&format!("{}_p50_ms", row.technique), row.p50_latency_ms);
        report.metric(&format!("{}_p99_ms", row.technique), row.p99_latency_ms);
    }
    report.summary_table(&rows, "SMR");
    report.cdf_section(&rows, 12);
    report.save();
    report
}

/// Figure 5: throughput and per-thread normalized throughput as worker
/// threads grow, for independent and for dependent commands.
pub fn fig5(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig5");
    let threads: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 6, 8]
    };
    let techniques = [
        Technique::NoRep,
        Technique::SpSmr,
        Technique::Psmr,
        Technique::Bdb,
    ];
    for (label, mix) in [
        ("independent (reads)", KvMix::read_only()),
        ("dependent (insert/delete)", KvMix::insert_delete()),
    ] {
        report.line(&format!("--- {label} ---"));
        let dist = KeyDist::uniform(args.keys);
        for technique in techniques {
            let mut series = Vec::new();
            for &t in threads {
                let engine = build_kv(technique, t, args.keys);
                let row = drive_kv(&engine, &mix, &dist, &opts(args));
                engine.shutdown();
                series.push((t as f64, row.kcps));
            }
            report.series(&format!("{} Kcps", technique.label()), &series);
            let base = series[0].1.max(f64::MIN_POSITIVE);
            let normalized: Vec<(f64, f64)> =
                series.iter().map(|&(t, k)| (t, (k / t) / base)).collect();
            report.series(&format!("{} per-thread", technique.label()), &normalized);
        }
    }
    report.save();
    report
}

/// Figure 6: mixed workloads — P-SMR (8 workers) vs SMR as the percentage
/// of dependent commands grows; finds the breakeven point.
pub fn fig6(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig6");
    let percents: &[f64] = if args.quick {
        &[0.01, 1.0, 10.0]
    } else {
        &[0.001, 0.01, 0.1, 1.0, 10.0]
    };
    let dist = KeyDist::uniform(args.keys);
    let mut psmr_thr = Vec::new();
    let mut psmr_lat = Vec::new();
    let mut smr_thr = Vec::new();
    let mut smr_lat = Vec::new();
    for &pct in percents {
        let mix = KvMix::mixed(pct);
        let engine = build_kv(Technique::Psmr, 8, args.keys);
        let row = drive_kv(&engine, &mix, &dist, &opts(args));
        engine.shutdown();
        psmr_thr.push((pct, row.kcps));
        psmr_lat.push((pct, row.avg_latency_ms));
        let engine = build_kv(Technique::Smr, 1, args.keys);
        let row = drive_kv(&engine, &mix, &dist, &opts(args));
        engine.shutdown();
        smr_thr.push((pct, row.kcps));
        smr_lat.push((pct, row.avg_latency_ms));
    }
    report.line("x = % dependent commands (log scale in the paper)");
    report.series("P-SMR Kcps", &psmr_thr);
    report.series("SMR   Kcps", &smr_thr);
    report.series("P-SMR lat(ms)", &psmr_lat);
    report.series("SMR   lat(ms)", &smr_lat);
    // Breakeven: the largest x where P-SMR still beats SMR.
    let breakeven = psmr_thr
        .iter()
        .zip(&smr_thr)
        .filter(|((_, p), (_, s))| p >= s)
        .map(|((x, _), _)| *x)
        .fold(f64::NAN, f64::max);
    report.line(&format!(
        "breakeven (largest %dep where P-SMR >= SMR): {breakeven}"
    ));
    report.save();
    report
}

/// Figure 7: skewed workloads — 50% updates / 50% reads under uniform and
/// Zipf(1) key choice, P-SMR vs sP-SMR, threads 1..8.
pub fn fig7(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig7");
    let threads: &[usize] = if args.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 6, 8]
    };
    let mix = KvMix::update_read();
    for technique in [Technique::Psmr, Technique::SpSmr] {
        for (dist_label, dist) in [
            ("uniform", KeyDist::uniform(args.keys)),
            ("Zipfian", KeyDist::zipf(args.keys, 1.0)),
        ] {
            let mut series = Vec::new();
            for &t in threads {
                let engine = build_kv(technique, t, args.keys);
                let row = drive_kv(&engine, &mix, &dist, &opts(args));
                engine.shutdown();
                series.push((t as f64, row.kcps));
            }
            report.series(&format!("{} {dist_label} Kcps", technique.label()), &series);
            let base = series[0].1.max(f64::MIN_POSITIVE);
            let normalized: Vec<(f64, f64)> =
                series.iter().map(|&(t, k)| (t, (k / t) / base)).collect();
            report.series(
                &format!("{} {dist_label} per-thread", technique.label()),
                &normalized,
            );
        }
    }
    report.save();
    report
}

/// Extension (§IV-D future work): online C-G reconfiguration under an
/// adversarial skew. The workload's hot keys all collide on worker group 0
/// (`stride = MPL` under the `key mod k` rule); after a measurement the
/// experiment installs a remap table spreading the hottest keys across
/// groups **online** and measures again.
pub fn remap(args: &BenchArgs) -> Report {
    use psmr_core::engines::{Engine, PsmrEngine};
    use psmr_core::remap::{RemapTable, RemappableMap, REMAP};
    use psmr_kvstore::{fine_dependency_spec, KvService};

    let mut report = Report::new("remap");
    let mpl = 8usize;
    let ranks = args.keys / mpl as u64;
    // All sampled keys are multiples of mpl: every hot key lands on g_0.
    let dist = KeyDist::strided(KeyDist::zipf(ranks, 1.0), mpl as u64);
    let mix = KvMix::update_read();

    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2);
    let rmap = RemappableMap::new(fine_dependency_spec().into_map());
    let keys = args.keys;
    let engine = PsmrEngine::spawn_remappable(&cfg, rmap, move || {
        KvService::with_keys_and_work(keys, crate::engines::EXEC_WORK)
    });

    // Moderate load: at full saturation the 24-core host is oversubscribed
    // by the 70+ threads of an MPL-8 deployment and scheduler noise hides
    // the routing effect this experiment isolates.
    let mut run_opts = opts(args);
    run_opts.clients = run_opts.clients.min(8);

    let before = drive_kv(&engine, &mix, &dist, &run_opts);
    report.line(&format!(
        "before remap (hot keys collide on g0): {:.1} Kcps, {:.3} ms avg",
        before.kcps, before.avg_latency_ms
    ));

    // Spread the 64 hottest keys round-robin across all groups, through
    // the replicated REMAP command (installs at a deterministic point of
    // the serialized stream on every replica).
    let mut table = RemapTable {
        epoch: 1,
        ..Default::default()
    };
    for rank in 0..64u64 {
        table.pins.insert(
            rank * mpl as u64,
            psmr_common::ids::GroupId::new((rank % mpl as u64) as usize),
        );
    }
    let mut admin = engine.client();
    let resp = admin.execute(REMAP, table.encode());
    report.line(&format!("remap installed: {}", resp[0] == 1));
    drop(admin);

    let after = drive_kv(&engine, &mix, &dist, &run_opts);
    report.line(&format!(
        "after remap (hot keys spread):       {:.1} Kcps, {:.3} ms avg",
        after.kcps, after.avg_latency_ms
    ));
    report.line(&format!(
        "online reconfiguration recovered {:.2}x throughput",
        after.kcps / before.kcps.max(f64::MIN_POSITIVE)
    ));
    report.metric("before_remap_kcps", before.kcps);
    report.metric("after_remap_kcps", after.kcps);
    engine.shutdown();
    report.save();
    report
}

/// Extension: checkpoint-under-load — what the recovery subsystem costs
/// while the store is saturated, and how long a crash→restart→converge
/// cycle takes end to end.
///
/// Three measurements on a recoverable P-SMR deployment:
///
/// 1. **Baseline** — no checkpoints, the engine as the paper runs it.
/// 2. **Checkpointing under load** — periodic coordinated checkpoints
///    with durable (on-disk) snapshots; the throughput dip against the
///    baseline is the price of the §V machinery.
/// 3. **Recovery time** — crash a replica mid-load, restart it
///    (disk-first, peer-transfer fallback), and measure both the restart
///    call (fetch + restore + re-subscribe) and the log replay until the
///    replicas' snapshots are byte-identical.
pub fn ckpt_load(args: &BenchArgs) -> Report {
    use psmr_common::ids::ReplicaId;
    use psmr_common::metrics::{counters, global};
    use psmr_core::engines::PsmrEngine;
    use psmr_kvstore::{fine_dependency_spec, KvService};
    use psmr_recovery::Snapshot;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut report = Report::new("ckpt_load");
    let mpl = 4usize;
    let keys = args.keys;
    let interval = if args.quick {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(100)
    };
    let map = fine_dependency_spec().into_map();
    let factory = move || KvService::with_keys_and_work(keys, crate::engines::EXEC_WORK);
    let dist = KeyDist::uniform(keys);
    let mix = KvMix::update_read();
    let mut run_opts = opts(args);
    run_opts.clients = run_opts.clients.min(8);

    // 1. Baseline: recoverable deployment, checkpointing off.
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2);
    let engine = PsmrEngine::spawn_recoverable(&cfg, map.clone(), factory);
    let base = drive_kv(&engine, &mix, &dist, &run_opts);
    engine.shutdown();
    report.line(&format!(
        "baseline (no checkpoints):      {:.1} Kcps, {:.3} ms avg",
        base.kcps, base.avg_latency_ms
    ));

    // 2. Checkpointing under load: periodic CHECKPOINTs + durable disk.
    let snap_dir = std::env::temp_dir().join(format!("psmr-ckpt-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    cfg.checkpoint_interval(Some(interval))
        .snapshot_dir(Some(snap_dir.clone()));
    let mut engine = PsmrEngine::spawn_recoverable(&cfg, map, factory);
    let taken_before = global().value(counters::CHECKPOINTS_TAKEN);
    let under = drive_kv(&engine, &mix, &dist, &run_opts);
    let taken = global().value(counters::CHECKPOINTS_TAKEN) - taken_before;
    let dip = (1.0 - under.kcps / base.kcps.max(f64::MIN_POSITIVE)) * 100.0;
    report.line(&format!(
        "checkpointing every {:?} + disk: {:.1} Kcps, {:.3} ms avg (dip {:.1}%, {} checkpoints installed)",
        interval, under.kcps, under.avg_latency_ms, dip, taken
    ));

    // 3. Recovery time: crash replica 1 under load, let the survivors
    // checkpoint past it, restart it and time restart + convergence.
    let stop = Arc::new(AtomicBool::new(false));
    let load: Vec<_> = (0..4u64)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let mut client = engine.client();
            std::thread::spawn(move || {
                use psmr_kvstore::{KvOp, KvResult};
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let op = KvOp::Update {
                        key: (c * 31 + i) % keys.max(1),
                        value: i,
                    };
                    let resp = client.execute(op.command(), op.encode());
                    assert_eq!(KvResult::decode(&resp), KvResult::Ok);
                    i += 1;
                }
            })
        })
        .collect();
    engine
        .crash_replica(ReplicaId::new(1))
        .expect("crash replica 1");
    std::thread::sleep(interval * 2); // survivors checkpoint past the crash
    let restart_started = Instant::now();
    let recovery = engine
        .restart_replica(ReplicaId::new(1))
        .expect("restart replica 1");
    let restart_ms = restart_started.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Relaxed);
    for h in load {
        h.join().expect("load client");
    }
    let converge_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s0 = engine
            .replica_service(ReplicaId::new(0))
            .map(|s| s.snapshot());
        let s1 = engine
            .replica_service(ReplicaId::new(1))
            .map(|s| s.snapshot());
        if s0.is_some() && s0 == s1 {
            break;
        }
        assert!(
            Instant::now() < converge_deadline,
            "restarted replica did not converge"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovered_ms = restart_started.elapsed().as_secs_f64() * 1e3;
    report.line(&format!(
        "crash→restart: {restart_ms:.1} ms (snapshot fetch + restore + re-subscribe), \
         converged after {recovered_ms:.1} ms total; recovered via {:?}, {} peer fallback(s)",
        recovery.source, recovery.transfer_fallbacks
    ));
    report.metric("baseline_kcps", base.kcps);
    report.metric("checkpointing_kcps", under.kcps);
    report.metric("checkpoint_dip_pct", dip);
    report.metric("restart_ms", restart_ms);
    report.metric("converge_ms", recovered_ms);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);
    report.save();
    report
}

/// One WAL-configuration data point on a recoverable P-SMR deployment,
/// shared by [`wal_overhead`] and [`pipeline`].
///
/// `wal` is `None` for the no-WAL baseline, or
/// `Some((wal_batch, pipelined))` — `wal_batch` only matters with
/// `pipelined == false` (the pipelined sync thread group-commits
/// adaptively).
fn run_wal_point(
    args: &BenchArgs,
    tag: &str,
    batch_bytes: Option<usize>,
    wal: Option<(usize, bool)>,
) -> RunSummary {
    use psmr_core::engines::PsmrEngine;
    use psmr_kvstore::{fine_dependency_spec, KvService};

    let mpl = 4usize;
    let keys = args.keys;
    let map = fine_dependency_spec().into_map();
    let factory = move || KvService::with_keys_and_work(keys, crate::engines::EXEC_WORK);
    let dist = KeyDist::uniform(keys);
    let mix = KvMix::update_read();
    let mut run_opts = opts(args);
    run_opts.clients = run_opts.clients.min(8);

    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2);
    if let Some(bytes) = batch_bytes {
        cfg.batch_bytes(bytes);
    }
    let dir = wal.map(|(batch, pipelined)| {
        let dir = std::env::temp_dir().join(format!("psmr-walpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cfg.wal_dir(Some(dir.clone()))
            .wal_batch(batch)
            .wal_pipeline(pipelined);
        dir
    });
    let engine = PsmrEngine::spawn_recoverable(&cfg, map, factory);
    let row = drive_kv(&engine, &mix, &dist, &run_opts);
    engine.shutdown();
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    row
}

/// Extension: what durably logging the ordered path costs. Four P-SMR
/// deployments under the same update/read load:
///
/// 1. **Baseline** — no WAL: the ordered logs live in memory only (the
///    pre-`psmr-wal` deployment; a whole-cluster crash is fatal).
/// 2. **WAL, group commit** — every decided batch is appended and one
///    `fsync` is amortized over `wal_batch` appends, inline before
///    fan-out. The throughput dip against the baseline is the price of
///    whole-deployment recoverability.
/// 3. **WAL, fsync-per-append** — `wal_batch = 1`, the unamortized
///    worst case; the gap between 2 and 3 is what group commit buys.
/// 4. **WAL, pipelined** — `wal_pipeline = true`: fan-out overlaps the
///    fsync and responses gate on the durability watermark. The gap
///    between 2 and 4 is what the pipelined hot path recovers — at a
///    *stronger* power-failure guarantee (acknowledged ⇒ fsynced,
///    which inline group commit does not promise).
pub fn wal_overhead(args: &BenchArgs) -> Report {
    let mut report = Report::new("wal_overhead");
    let default_batch = SystemConfig::new(1).wal_batch;
    let mut point = |label: &str, metric: &str, tag: &str, wal: Option<(usize, bool)>| -> f64 {
        let row = run_wal_point(args, tag, None, wal);
        report.line(&format!(
            "{label}: {:.1} Kcps, {:.3} ms avg, {:.3} ms p99",
            row.kcps, row.avg_latency_ms, row.p99_latency_ms
        ));
        report.metric(metric, row.kcps);
        row.kcps
    };

    let base = point(
        "baseline (no WAL)            ",
        "baseline_kcps",
        "none",
        None,
    );
    let group = point(
        "WAL, group commit (default)   ",
        "wal_group_commit_kcps",
        "group",
        Some((default_batch, false)),
    );
    let every = point(
        "WAL, fsync every append       ",
        "wal_fsync_each_kcps",
        "each",
        Some((1, false)),
    );
    let pipelined = point(
        "WAL, pipelined group commit   ",
        "wal_pipeline_kcps",
        "pipe",
        Some((default_batch, true)),
    );

    let dip = (1.0 - group / base.max(f64::MIN_POSITIVE)) * 100.0;
    let dip_unamortized = (1.0 - every / base.max(f64::MIN_POSITIVE)) * 100.0;
    let dip_pipelined = (1.0 - pipelined / base.max(f64::MIN_POSITIVE)) * 100.0;
    // How much of each inline-fsync configuration's dip the pipelined
    // mode recovers (100% = no dip left, negative = pipelining lost
    // ground — expect that against *group commit*, whose responses never
    // wait for durability, on single-core hosts where there is no spare
    // core to overlap onto).
    let recovered = |inline_dip: f64| -> f64 {
        if inline_dip > 0.0 {
            ((inline_dip - dip_pipelined) / inline_dip * 100.0).clamp(-1000.0, 100.0)
        } else {
            100.0
        }
    };
    let recovered_pct = recovered(dip);
    let recovered_each_pct = recovered(dip_unamortized);
    report.line(&format!(
        "group-commit dip vs baseline: {dip:.1}% (fsync-per-append: {dip_unamortized:.1}%, \
         pipelined: {dip_pipelined:.1}%)"
    ));
    report.line(&format!(
        "pipelining recovered {recovered_each_pct:.0}% of the fsync-per-append dip \
         ({recovered_pct:.0}% of the group-commit dip)"
    ));
    report.metric("group_commit_dip_pct", dip);
    report.metric("fsync_each_dip_pct", dip_unamortized);
    report.metric("pipeline_dip_pct", dip_pipelined);
    report.metric("pipeline_recovered_pct", recovered_pct);
    report.metric("pipeline_recovered_vs_fsync_each_pct", recovered_each_pct);
    report.save();
    report
}

/// Extension: the pipelined hot path, swept across consensus batch
/// sizes × pipeline on/off. For each batch-size cap the experiment
/// prices the same WAL-backed P-SMR deployment with inline group commit
/// versus pipelined group commit (WAL/execution overlap + Arc-shared
/// zero-copy fan-out + bounded delivery rings feed both), reporting
/// throughput, p50/p99 tail latency, and the backpressure/holdback
/// pressure observed. Emits `BENCH_pipeline.json` — the perf-trajectory
/// artifact for the delivery path.
///
/// When `assert_sanity` is set (the CI smoke), the run asserts that
/// pipelined group commit beats inline **fsync-per-append** — the
/// configuration it makes obsolete: both promise acknowledged ⇒
/// durable, only one stalls ordering behind every fsync.
pub fn pipeline(args: &BenchArgs, assert_sanity: bool) -> Report {
    let mut report = Report::new("pipeline");
    let batch_sizes: &[usize] = if args.quick {
        &[8 * 1024]
    } else {
        &[2 * 1024, 8 * 1024, 32 * 1024]
    };
    let default_batch = SystemConfig::new(1).wal_batch;
    let mut inline_rows = Vec::new();
    let mut piped_rows = Vec::new();
    for &bytes in batch_sizes {
        use psmr_common::metrics::{counters, global};
        let fsyncs_before = global().value(counters::WAL_FSYNCS);
        let inline = run_wal_point(
            args,
            &format!("in{bytes}"),
            Some(bytes),
            Some((default_batch, false)),
        );
        let inline_fsyncs = global().value(counters::WAL_FSYNCS) - fsyncs_before;
        let piped = run_wal_point(args, &format!("pl{bytes}"), Some(bytes), Some((1, true)));
        let piped_fsyncs = global().value(counters::WAL_FSYNCS) - fsyncs_before - inline_fsyncs;
        report.line(&format!(
            "batch {bytes:>6} B | inline: {:>7.1} Kcps ({:.3}/{:.3} ms p50/p99, {:.0}% cpu, {} fsyncs) | \
             pipelined: {:>7.1} Kcps ({:.3}/{:.3} ms p50/p99, {:.0}% cpu, {} fsyncs) | {} held, {} delivery stalls",
            inline.kcps,
            inline.p50_latency_ms,
            inline.p99_latency_ms,
            inline.cpu_pct,
            inline_fsyncs,
            piped.kcps,
            piped.p50_latency_ms,
            piped.p99_latency_ms,
            piped.cpu_pct,
            piped_fsyncs,
            piped.pipeline.responses_held,
            piped.pipeline.delivery_backpressure_stalls,
        ));
        report.metric(&format!("inline_b{bytes}_kcps"), inline.kcps);
        report.metric(&format!("pipeline_b{bytes}_kcps"), piped.kcps);
        report.metric(&format!("inline_b{bytes}_p50_ms"), inline.p50_latency_ms);
        report.metric(&format!("pipeline_b{bytes}_p50_ms"), piped.p50_latency_ms);
        report.metric(&format!("inline_b{bytes}_p99_ms"), inline.p99_latency_ms);
        report.metric(&format!("pipeline_b{bytes}_p99_ms"), piped.p99_latency_ms);
        inline_rows.push(inline);
        piped_rows.push(piped);
    }
    // The sanity pair: pipelined (gated, overlapped) vs the inline
    // fsync-per-append configuration that offers the same acknowledged ⇒
    // durable guarantee. Best-of-two per side: a single --quick point on
    // a loaded CI box carries ~10% scheduler noise.
    let best = |tag: &str, wal: (usize, bool)| -> f64 {
        (0..2)
            .map(|i| run_wal_point(args, &format!("{tag}{i}"), Some(8 * 1024), Some(wal)).kcps)
            .fold(0.0, f64::max)
    };
    let strict = best("strict", (1, false));
    let piped_default = best("pldef", (1, true));
    report.line(&format!(
        "same-guarantee pair @8KB: fsync-per-append {strict:.1} Kcps vs pipelined \
         {piped_default:.1} Kcps ({:.2}x)",
        piped_default / strict.max(f64::MIN_POSITIVE)
    ));
    report.metric("fsync_each_kcps", strict);
    report.metric("pipeline_kcps", piped_default);
    report.metric(
        "pipeline_vs_fsync_each_x",
        piped_default / strict.max(f64::MIN_POSITIVE),
    );
    report.save();
    if assert_sanity {
        // 5% epsilon: the guarantee-equivalent inline mode must never
        // meaningfully beat the pipelined path; anything within the
        // noise floor is a pass, a real regression is not.
        assert!(
            piped_default >= strict * 0.95,
            "perf sanity: pipelined group commit ({piped_default:.1} Kcps) must not lose \
             to inline fsync-per-append ({strict:.1} Kcps)"
        );
    }
    report
}

/// Extension (observability): where inside the pipeline a command's
/// latency goes. Three WAL configurations of the same recoverable P-SMR
/// deployment run under the update/read load with sampled
/// command-lifecycle tracing: per-stage mean/p50/p99 of the submit →
/// ordered → appended → delivered → executed → released chain, plus the
/// fsync-durability lag where the mode has one. The chain means
/// telescope — their sum is the traced end-to-end mean — and each
/// mode's `*_attributed_pct` metric reports how much of the
/// client-measured mean latency the chain accounts for.
///
/// The pipelined mode additionally exercises the exposition path: a
/// periodic JSONL snapshotter runs during the measurement and the final
/// labeled registry dump is saved alongside the report.
///
/// When `assert_attribution` is set (the CI smoke), the run asserts the
/// chain attributes at least 90% of the measured end-to-end mean in
/// every mode — the "no invisible stage" guarantee.
pub fn stage_breakdown(args: &BenchArgs, assert_attribution: bool) -> Report {
    use psmr_common::export::{expose_text, JsonlSnapshotter};
    use psmr_common::metrics::global;
    use psmr_common::trace;
    use psmr_core::engines::PsmrEngine;
    use psmr_kvstore::{fine_dependency_spec, KvService};
    use std::time::Duration;

    let mut report = Report::new("stage_breakdown");
    let default_batch = SystemConfig::new(1).wal_batch;
    // Sample densely: this experiment wants per-stage statistics, not
    // minimal overhead (fig3 prices the default knob).
    let sample = 4u64;
    let mpl = 4usize;
    let keys = args.keys;
    let dist = KeyDist::uniform(keys);
    let mix = KvMix::update_read();
    let mut run_opts = opts(args);
    // Attribution compares means, which need a stable measurement: few
    // client threads (less wakeup queueing outside the traced chain) and
    // a floor on the measured window even in --quick runs.
    run_opts.clients = run_opts.clients.min(4);
    run_opts.duration = run_opts.duration.max(Duration::from_secs(2));

    let modes: [(&str, &str, usize, bool); 3] = [
        ("inline", "inline fsync-per-append", 1, false),
        ("group", "inline group commit", default_batch, false),
        ("pipelined", "pipelined group commit", default_batch, true),
    ];
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut attributed = Vec::new();
    for (mode, label, wal_batch, pipelined) in modes {
        let map = fine_dependency_spec().into_map();
        let factory = move || KvService::with_keys_and_work(keys, crate::engines::EXEC_WORK);
        let mut cfg = SystemConfig::new(mpl);
        cfg.replicas(2).trace_sample(sample);
        let dir = std::env::temp_dir().join(format!("psmr-stagebd-{}-{mode}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cfg.wal_dir(Some(dir.clone()))
            .wal_batch(wal_batch)
            .wal_pipeline(pipelined);
        // Fresh slate per mode: the report must aggregate only this
        // configuration's lifecycles.
        trace::global().reset();
        let snapshotter = pipelined.then(|| {
            let out = std::path::PathBuf::from("target/experiments");
            let _ = std::fs::create_dir_all(&out);
            let path = out.join("stage_breakdown_metrics.jsonl");
            let _ = std::fs::remove_file(&path);
            JsonlSnapshotter::spawn(global(), path, Duration::from_millis(100)).ok()
        });
        let engine = PsmrEngine::spawn_recoverable(&cfg, map, factory);
        let row = drive_kv(&engine, &mix, &dist, &run_opts);
        engine.shutdown();
        if let Some(Some(snapshotter)) = snapshotter {
            let jsonl = snapshotter.stop();
            let lines = std::fs::read_to_string(&jsonl)
                .map(|s| s.lines().count())
                .unwrap_or(0);
            report.line(&format!(
                "metrics time series: {} JSONL snapshots in {}",
                lines,
                jsonl.display()
            ));
            let dump = expose_text(global());
            let txt = jsonl.with_extension("txt");
            if std::fs::write(&txt, &dump).is_ok() {
                report.line(&format!(
                    "final labeled registry dump ({} instruments) in {}",
                    dump.lines().count(),
                    txt.display()
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);

        let tr = trace::global().report();
        let measured = Duration::from_secs_f64(row.avg_latency_ms / 1e3);
        let pct = tr.attributed_pct(measured);
        report.line(&format!(
            "--- {label}: {:.1} Kcps, {:.3} ms measured mean, {} traced ({} dropped), \
             chain accounts for {pct:.1}% ---",
            row.kcps, row.avg_latency_ms, tr.traced, tr.dropped
        ));
        for stat in &tr.intervals {
            if stat.count == 0 {
                continue; // e.g. no fsync-durability stage outside pipelined mode
            }
            report.line(&format!(
                "{mode:>9} {:<22} mean {:>8.3} ms  p50 {:>8.3} ms  p99 {:>8.3} ms  (n={})",
                stat.name,
                ms(stat.mean),
                ms(stat.p50),
                ms(stat.p99),
                stat.count
            ));
            report.metric(&format!("{mode}_{}_mean_ms", stat.name), ms(stat.mean));
            report.metric(&format!("{mode}_{}_p50_ms", stat.name), ms(stat.p50));
            report.metric(&format!("{mode}_{}_p99_ms", stat.name), ms(stat.p99));
        }
        report.metric(&format!("{mode}_kcps"), row.kcps);
        report.metric(&format!("{mode}_measured_mean_ms"), row.avg_latency_ms);
        report.metric(&format!("{mode}_attributed_pct"), pct);
        attributed.push((label, pct));
    }
    report.save();
    if assert_attribution {
        for (label, pct) in attributed {
            assert!(
                pct >= 90.0,
                "observability sanity: the traced stage chain of the {label} mode accounts \
                 for only {pct:.1}% of the measured end-to-end mean (floor: 90%)"
            );
        }
    }
    report
}

/// Figure 8: NetFS — read-only and write-only 1024-byte workloads over
/// SMR, sP-SMR and P-SMR (8 path ranges → 9 multicast groups).
pub fn fig8(args: &BenchArgs) -> Report {
    let mut report = Report::new("fig8");
    let dirs = 8u64;
    let files = if args.quick { 64 } else { 256 };
    let paths = NetFsService::tree_paths(dirs, files);
    for workload in [NetFsWorkload::Reads, NetFsWorkload::Writes] {
        let label = match workload {
            NetFsWorkload::Reads => "Reads",
            NetFsWorkload::Writes => "Writes",
        };
        report.line(&format!("--- {label} (1024 bytes per request) ---"));
        let mut rows: Vec<RunSummary> = Vec::new();
        for technique in ["SMR", "sP-SMR", "P-SMR"] {
            let mut cfg = SystemConfig::new(8);
            cfg.replicas(2);
            let factory = move || NetFsService::with_tree(dirs, files, 1024);
            let row = match technique {
                "SMR" => {
                    let engine = SmrEngine::spawn(&cfg, factory);
                    let row = drive_netfs(&engine, workload, &paths, &opts(args));
                    engine.shutdown();
                    row
                }
                "sP-SMR" => {
                    let engine = SpSmrEngine::spawn(&cfg, netfs_spec().into_map(), factory);
                    let row = drive_netfs(&engine, workload, &paths, &opts(args));
                    engine.shutdown();
                    row
                }
                _ => {
                    let engine = PsmrEngine::spawn(&cfg, netfs_spec().into_map(), factory);
                    let row = drive_netfs(&engine, workload, &paths, &opts(args));
                    engine.shutdown();
                    row
                }
            };
            rows.push(row);
        }
        report.summary_table(&rows, "SMR");
    }
    report.save();
    report
}
