//! Minimal command-line parsing shared by the figure binaries.

use std::time::Duration;

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Shrink durations and key counts for CI smoke runs.
    pub quick: bool,
    /// Initial keys in the store (the paper uses 10 million).
    pub keys: u64,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Measured seconds per data point.
    pub secs: f64,
    /// Warmup seconds per data point.
    pub warmup: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            quick: false,
            keys: 200_000,
            clients: 16,
            secs: 3.0,
            warmup: 1.0,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`-style flags: `--quick`, `--keys N`,
    /// `--clients N`, `--secs F`, `--warmup F`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Self {
        let mut args = Self::default();
        let mut it = argv.into_iter();
        let _ = it.next(); // program name
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{flag} needs a {what}"))
            };
            match flag.as_str() {
                "--quick" => {
                    args.quick = true;
                }
                "--keys" => args.keys = value("count").parse().expect("key count"),
                "--clients" => args.clients = value("count").parse().expect("client count"),
                "--secs" => args.secs = value("duration").parse().expect("seconds"),
                "--warmup" => args.warmup = value("duration").parse().expect("seconds"),
                other => panic!(
                    "unknown flag {other}; known: --quick --keys N --clients N --secs F --warmup F"
                ),
            }
        }
        if args.quick {
            args.keys = args.keys.min(50_000);
            args.secs = args.secs.min(0.6);
            args.warmup = args.warmup.min(0.2);
            args.clients = args.clients.min(8);
        }
        args
    }

    /// Parses the real process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args())
    }

    /// Measured duration per data point.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.secs)
    }

    /// Warmup duration per data point.
    pub fn warmup_duration(&self) -> Duration {
        Duration::from_secs_f64(self.warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        let mut argv = vec!["prog".to_string()];
        argv.extend(args.iter().map(|s| s.to_string()));
        BenchArgs::parse(argv)
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.keys, 200_000);
    }

    #[test]
    fn quick_caps_everything() {
        let a = parse(&["--quick", "--keys", "9999999"]);
        assert!(a.quick);
        assert!(a.keys <= 50_000);
        assert!(a.secs <= 0.6);
    }

    #[test]
    fn explicit_values_parse() {
        let a = parse(&[
            "--keys",
            "1000",
            "--clients",
            "3",
            "--secs",
            "1.5",
            "--warmup",
            "0.5",
        ]);
        assert_eq!(a.keys, 1000);
        assert_eq!(a.clients, 3);
        assert_eq!(a.secs, 1.5);
        assert_eq!(a.warmup, 0.5);
        assert_eq!(a.duration(), Duration::from_secs_f64(1.5));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flags_panic() {
        parse(&["--frobnicate"]);
    }
}
