//! Uniform construction of every technique's deployment.

use psmr_common::SystemConfig;
use psmr_core::client::ClientProxy;
use psmr_core::engines::{Engine, NoRepEngine, PsmrEngine, SmrEngine, SpSmrEngine};
use psmr_kvstore::{fine_dependency_spec, KvService, LockedKvEngine};

/// The five techniques of the key-value store evaluation (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Classical state-machine replication.
    Smr,
    /// Semi-parallel SMR (scheduler + workers over a total order).
    SpSmr,
    /// Parallel SMR (this paper).
    Psmr,
    /// Non-replicated scheduler/worker server.
    NoRep,
    /// Lock-based multithreaded server (Berkeley DB stand-in).
    Bdb,
}

impl Technique {
    /// All five, in the paper's bar order.
    pub const ALL: [Technique; 5] = [
        Technique::NoRep,
        Technique::Smr,
        Technique::SpSmr,
        Technique::Psmr,
        Technique::Bdb,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Smr => "SMR",
            Technique::SpSmr => "sP-SMR",
            Technique::Psmr => "P-SMR",
            Technique::NoRep => "no-rep",
            Technique::Bdb => "BDB",
        }
    }
}

/// A deployment of any technique, so drivers can treat them uniformly.
pub enum KvDeployment {
    /// See [`PsmrEngine`].
    Psmr(PsmrEngine),
    /// See [`SmrEngine`].
    Smr(SmrEngine),
    /// See [`SpSmrEngine`].
    SpSmr(SpSmrEngine),
    /// See [`NoRepEngine`].
    NoRep(NoRepEngine),
    /// See [`LockedKvEngine`].
    Bdb(LockedKvEngine),
}

impl Engine for KvDeployment {
    fn client(&self) -> ClientProxy {
        match self {
            KvDeployment::Psmr(e) => e.client(),
            KvDeployment::Smr(e) => e.client(),
            KvDeployment::SpSmr(e) => e.client(),
            KvDeployment::NoRep(e) => e.client(),
            KvDeployment::Bdb(e) => e.client(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            KvDeployment::Psmr(e) => e.label(),
            KvDeployment::Smr(e) => e.label(),
            KvDeployment::SpSmr(e) => e.label(),
            KvDeployment::NoRep(e) => e.label(),
            KvDeployment::Bdb(e) => e.label(),
        }
    }

    fn shutdown(self) {
        match self {
            KvDeployment::Psmr(e) => e.shutdown(),
            KvDeployment::Smr(e) => e.shutdown(),
            KvDeployment::SpSmr(e) => e.shutdown(),
            KvDeployment::NoRep(e) => e.shutdown(),
            KvDeployment::Bdb(e) => e.shutdown(),
        }
    }
}

/// The calibrated per-command execution cost the harness applies so the
/// evaluation runs in the paper's execution-bound regime (see
/// [`KvService::with_keys_and_work`] and `EXPERIMENTS.md`).
pub const EXEC_WORK: std::time::Duration = std::time::Duration::from_micros(10);

/// Builds a key-value deployment: `workers` worker threads (server threads
/// for BDB; ignored by SMR) over a store of `keys` keys, every command
/// costing [`EXEC_WORK`]. Replicated techniques use two replicas, as in
/// the paper.
pub fn build_kv(technique: Technique, workers: usize, keys: u64) -> KvDeployment {
    let mut cfg = SystemConfig::new(workers.max(1));
    cfg.replicas(2);
    let map = fine_dependency_spec().into_map();
    let factory = move || KvService::with_keys_and_work(keys, EXEC_WORK);
    match technique {
        Technique::Psmr => KvDeployment::Psmr(PsmrEngine::spawn(&cfg, map, factory)),
        Technique::Smr => KvDeployment::Smr(SmrEngine::spawn(&cfg, factory)),
        Technique::SpSmr => KvDeployment::SpSmr(SpSmrEngine::spawn(&cfg, map, factory)),
        Technique::NoRep => KvDeployment::NoRep(NoRepEngine::spawn(&cfg, map, factory)),
        Technique::Bdb => KvDeployment::Bdb(LockedKvEngine::spawn_with_work(
            workers.max(1),
            keys,
            EXEC_WORK,
        )),
    }
}
