//! Schema validation of the `BENCH_*.json` perf-trajectory artifacts.
//!
//! `bench_schema.txt` (checked in next to this crate, baked into the
//! binary) lists the metric keys every artifact must carry. CI runs the
//! `validate_bench` binary after the bench smokes: a new artifact
//! without a schema section, a missing required key, or a metric that
//! rendered as `null` (non-finite) all fail the build — headline-metric
//! drift has to be an explicit schema change, never an accident.
//!
//! The binary's `--metrics <dir>` mode parse-checks the
//! `*_metrics.jsonl` flight-recorder files node processes write (see
//! `psmr_common::export::JsonlSnapshotter`): every line must be a
//! self-contained snapshot object carrying the
//! `ts_ms`/`counters`/`gauges`/`histograms` sections, so the uploaded
//! artifacts stay machine-readable.

use std::collections::BTreeMap;
use std::path::Path;

/// The checked-in schema source.
pub const SCHEMA: &str = include_str!("../bench_schema.txt");

/// Parses the `[section]` / key-per-line schema format. Lines starting
/// with `#` and blank lines are ignored.
pub fn parse_schema(src: &str) -> BTreeMap<String, Vec<String>> {
    let mut sections: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut current: Option<String> = None;
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = Some(name.to_string());
            sections.entry(name.to_string()).or_default();
        } else if let Some(section) = &current {
            sections
                .get_mut(section)
                .expect("section registered on entry")
                .push(line.to_string());
        }
    }
    sections
}

/// One parsed metric: its key and `Some(value)`, or `None` for `null`.
pub type ParsedMetric = (String, Option<f64>);

/// Parses one `BENCH_<name>.json` artifact (the flat hand-written
/// format of [`crate::Report::metrics_json`]): the experiment name plus
/// each metric key with `Some(value)` or `None` for `null`.
pub fn parse_bench_json(body: &str) -> Option<(String, Vec<ParsedMetric>)> {
    let name = body
        .split("\"name\": \"")
        .nth(1)?
        .split('"')
        .next()?
        .to_string();
    let metrics_src = body.split("\"metrics\": {").nth(1)?;
    // Values are plain numbers or null, so the first closing brace ends
    // the metrics object.
    let metrics_src = &metrics_src[..metrics_src.find('}')?];
    let mut metrics = Vec::new();
    for entry in metrics_src.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.rsplit_once(':')?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        let value = if value == "null" {
            None
        } else {
            Some(value.parse::<f64>().ok()?)
        };
        metrics.push((key, value));
    }
    Some((name, metrics))
}

/// Validates one artifact body against the schema. Returns the problems
/// found (empty = valid).
pub fn validate_artifact(
    schema: &BTreeMap<String, Vec<String>>,
    file: &str,
    body: &str,
) -> Vec<String> {
    let Some((name, metrics)) = parse_bench_json(body) else {
        return vec![format!("{file}: unparseable BENCH artifact")];
    };
    let mut problems = Vec::new();
    let Some(required) = schema.get(&name) else {
        return vec![format!(
            "{file}: experiment \"{name}\" has no section in bench_schema.txt — \
             new artifacts must be added to the schema"
        )];
    };
    for key in required {
        match metrics.iter().find(|(k, _)| k == key) {
            None => problems.push(format!(
                "{file}: required metric \"{key}\" is missing — schema drift"
            )),
            Some((_, None)) => problems.push(format!(
                "{file}: required metric \"{key}\" is null (non-finite)"
            )),
            Some((_, Some(_))) => {}
        }
    }
    for (key, value) in &metrics {
        if value.is_none() && !required.contains(key) {
            problems.push(format!(
                "{file}: extra metric \"{key}\" is null (non-finite)"
            ));
        }
    }
    problems
}

/// Validates every `BENCH_*.json` under `dir` against the checked-in
/// schema.
///
/// # Errors
///
/// Returns every problem found; an unreadable or empty directory is
/// itself a problem (CI must not "pass" by validating nothing).
pub fn validate_dir(dir: &Path) -> Result<Vec<String>, Vec<String>> {
    let schema = parse_schema(SCHEMA);
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => return Err(vec![format!("cannot read {}: {e}", dir.display())]),
    };
    let mut validated = Vec::new();
    let mut problems = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(file) = path.file_name().and_then(|f| f.to_str()) else {
            continue;
        };
        if !file.starts_with("BENCH_") || !file.ends_with(".json") {
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(body) => {
                problems.extend(validate_artifact(&schema, file, &body));
                validated.push(file.to_string());
            }
            Err(e) => problems.push(format!("{file}: unreadable: {e}")),
        }
    }
    if validated.is_empty() {
        problems.push(format!(
            "no BENCH_*.json artifacts under {} — run the bench smokes first",
            dir.display()
        ));
    }
    if problems.is_empty() {
        Ok(validated)
    } else {
        Err(problems)
    }
}

/// Parse-checks one metrics flight-recorder body (a `*_metrics.jsonl`
/// file): every line must be a self-contained JSON snapshot object with
/// the four sections the snapshotter writes. Returns the problems found
/// (empty = valid); an empty file is a problem — a node that never
/// snapshotted recorded nothing.
pub fn validate_metrics_jsonl(file: &str, body: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut lines = 0usize;
    for (no, line) in body.lines().enumerate() {
        lines += 1;
        let shaped = line.starts_with('{') && line.ends_with('}');
        if !shaped
            || !line.contains("\"ts_ms\":")
            || !line.contains("\"counters\":{")
            || !line.contains("\"gauges\":{")
            || !line.contains("\"histograms\":{")
        {
            problems.push(format!(
                "{file}:{}: malformed metrics snapshot line",
                no + 1
            ));
        }
    }
    if lines == 0 {
        problems.push(format!("{file}: empty metrics JSONL"));
    }
    problems
}

/// Recursively parse-checks every `*_metrics.jsonl` under `dir` (node
/// data directories nest one level per node).
///
/// # Errors
///
/// Every problem found; an unreadable tree or one containing no metrics
/// JSONL at all is itself a problem — CI must not "pass" by validating
/// nothing.
pub fn validate_metrics_dir(dir: &Path) -> Result<Vec<String>, Vec<String>> {
    let mut stack = vec![dir.to_path_buf()];
    let mut validated = Vec::new();
    let mut problems = Vec::new();
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(entries) => entries,
            Err(e) => {
                problems.push(format!("cannot read {}: {e}", d.display()));
                continue;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let Some(file) = path.file_name().and_then(|f| f.to_str()) else {
                continue;
            };
            if !file.ends_with("_metrics.jsonl") {
                continue;
            }
            let shown = path.display().to_string();
            match std::fs::read_to_string(&path) {
                Ok(body) => {
                    problems.extend(validate_metrics_jsonl(&shown, &body));
                    validated.push(shown);
                }
                Err(e) => problems.push(format!("{shown}: unreadable: {e}")),
            }
        }
    }
    if validated.is_empty() {
        problems.push(format!(
            "no *_metrics.jsonl under {} — did the nodes run?",
            dir.display()
        ));
    }
    if problems.is_empty() {
        Ok(validated)
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;

    #[test]
    fn checked_in_schema_parses_and_covers_every_emitting_experiment() {
        let schema = parse_schema(SCHEMA);
        for name in [
            "fig3",
            "fig4",
            "remap",
            "ckpt_load",
            "wal_overhead",
            "pipeline",
            "stage_breakdown",
        ] {
            let keys = schema
                .get(name)
                .unwrap_or_else(|| panic!("[{name}] section"));
            assert!(!keys.is_empty(), "[{name}] lists required keys");
        }
    }

    #[test]
    fn report_artifacts_round_trip_through_the_parser() {
        let mut report = Report::new("walx");
        report.metric("baseline_kcps", 124.5);
        report.metric("dip_pct", f64::NAN);
        let (name, metrics) = parse_bench_json(&report.metrics_json()).expect("parses");
        assert_eq!(name, "walx");
        assert_eq!(metrics[0], ("baseline_kcps".into(), Some(124.5)));
        assert_eq!(metrics[1], ("dip_pct".into(), None));
    }

    #[test]
    fn drift_and_null_metrics_fail_validation() {
        let mut schema = BTreeMap::new();
        schema.insert("exp".to_string(), vec!["a_kcps".to_string()]);

        let ok = "{\n  \"name\": \"exp\",\n  \"metrics\": {\n    \"a_kcps\": 10\n  }\n}\n";
        assert!(validate_artifact(&schema, "f", ok).is_empty());

        let missing = "{\n  \"name\": \"exp\",\n  \"metrics\": {\n    \"b_kcps\": 10\n  }\n}\n";
        let problems = validate_artifact(&schema, "f", missing);
        assert!(
            problems.iter().any(|p| p.contains("missing")),
            "{problems:?}"
        );

        let null = "{\n  \"name\": \"exp\",\n  \"metrics\": {\n    \"a_kcps\": null\n  }\n}\n";
        let problems = validate_artifact(&schema, "f", null);
        assert!(problems.iter().any(|p| p.contains("null")), "{problems:?}");

        let unknown = "{\n  \"name\": \"new\",\n  \"metrics\": {\n    \"a_kcps\": 1\n  }\n}\n";
        let problems = validate_artifact(&schema, "f", unknown);
        assert!(
            problems.iter().any(|p| p.contains("no section")),
            "{problems:?}"
        );
    }

    #[test]
    fn metrics_jsonl_lines_are_parse_checked() {
        let good = concat!(
            "{\"ts_ms\":1,\"counters\":{\"a\":1},\"gauges\":{},\"histograms\":{}}\n",
            "{\"ts_ms\":2,\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
        );
        assert!(validate_metrics_jsonl("f", good).is_empty());

        let truncated = "{\"ts_ms\":1,\"counters\":{\"a\":1},\"gaug";
        let problems = validate_metrics_jsonl("f", truncated);
        assert!(
            problems.iter().any(|p| p.contains("f:1: malformed")),
            "{problems:?}"
        );

        let problems = validate_metrics_jsonl("f", "");
        assert!(problems.iter().any(|p| p.contains("empty")), "{problems:?}");
    }

    #[test]
    fn metrics_dir_walk_finds_nested_recorders() {
        let root = std::env::temp_dir().join(format!("psmr-validate-{}", std::process::id()));
        let nested = root.join("data-n1");
        std::fs::create_dir_all(&nested).expect("mkdir");
        std::fs::write(
            nested.join("node1_metrics.jsonl"),
            "{\"ts_ms\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        )
        .expect("write");
        std::fs::write(nested.join("flight.jsonl"), "not checked here\n").expect("write");
        let validated = validate_metrics_dir(&root).expect("valid tree");
        assert_eq!(validated.len(), 1, "{validated:?}");

        std::fs::write(nested.join("node2_metrics.jsonl"), "garbage\n").expect("write");
        let problems = validate_metrics_dir(&root).expect_err("malformed file fails");
        assert!(
            problems.iter().any(|p| p.contains("malformed")),
            "{problems:?}"
        );

        let empty = root.join("no-nodes");
        std::fs::create_dir_all(&empty).expect("mkdir");
        assert!(validate_metrics_dir(&empty).is_err(), "empty tree fails");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn extra_finite_metrics_are_allowed() {
        let mut schema = BTreeMap::new();
        schema.insert("exp".to_string(), vec!["a_kcps".to_string()]);
        let body =
            "{\n  \"name\": \"exp\",\n  \"metrics\": {\n    \"a_kcps\": 10,\n    \"extra\": 1.5\n  }\n}\n";
        assert!(validate_artifact(&schema, "f", body).is_empty());
    }
}
