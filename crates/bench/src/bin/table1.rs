//! Regenerates Table I of the paper. See `psmr_bench::experiments`.

fn main() {
    let _ = psmr_bench::experiments::table1();
}
