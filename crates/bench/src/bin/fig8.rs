//! Regenerates Figure 8 of the paper. See `psmr_bench::experiments`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::fig8(&args);
}
