//! Validates every `target/experiments/BENCH_*.json` artifact against
//! the checked-in `bench_schema.txt`: missing required metrics, `null`
//! (non-finite) values, and artifacts with no schema section all fail.
//! See `psmr_bench::validate`.

use std::path::Path;

fn main() {
    match psmr_bench::validate::validate_dir(Path::new("target/experiments")) {
        Ok(validated) => {
            for file in &validated {
                println!("ok: {file}");
            }
            println!("{} artifact(s) match bench_schema.txt", validated.len());
        }
        Err(problems) => {
            for p in &problems {
                eprintln!("FAIL: {p}");
            }
            std::process::exit(1);
        }
    }
}
