//! Validates perf and observability artifacts in CI.
//!
//! ```text
//! validate_bench                      # BENCH_*.json vs bench_schema.txt
//! validate_bench --metrics <dir>...   # parse-check *_metrics.jsonl trees
//! ```
//!
//! Without flags: every `target/experiments/BENCH_*.json` artifact is
//! checked against the checked-in `bench_schema.txt` — missing required
//! metrics, `null` (non-finite) values, and artifacts with no schema
//! section all fail. With `--metrics <dir>` (repeatable): instead,
//! every `*_metrics.jsonl` flight-recorder file under each directory is
//! parse-checked line by line. See `psmr_bench::validate`.

use std::path::Path;

fn main() {
    let mut metrics_dirs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--metrics" => match args.next() {
                Some(dir) => metrics_dirs.push(dir),
                None => {
                    eprintln!("usage: validate_bench [--metrics <dir>]...");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: validate_bench [--metrics <dir>]...");
                std::process::exit(2);
            }
        }
    }

    let results = if metrics_dirs.is_empty() {
        vec![psmr_bench::validate::validate_dir(Path::new(
            "target/experiments",
        ))]
    } else {
        metrics_dirs
            .iter()
            .map(|dir| psmr_bench::validate::validate_metrics_dir(Path::new(dir)))
            .collect()
    };

    let mut failed = false;
    for result in results {
        match result {
            Ok(validated) => {
                for file in &validated {
                    println!("ok: {file}");
                }
                println!("{} artifact(s) valid", validated.len());
            }
            Err(problems) => {
                for p in &problems {
                    eprintln!("FAIL: {p}");
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
