//! Extension experiment: command-lifecycle stage breakdown — per-stage
//! latency of the submit → ordered → appended → delivered → executed →
//! released chain across the three WAL modes, with the assertion that
//! the traced chain accounts for at least 90% of the measured
//! end-to-end mean. See `psmr_bench::experiments::stage_breakdown`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::stage_breakdown(&args, true);
}
