//! Regenerates Figure 6 of the paper. See `psmr_bench::experiments`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::fig6(&args);
}
