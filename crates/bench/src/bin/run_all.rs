//! Runs every table/figure experiment in sequence, writing all reports
//! to `target/experiments/` — human-readable `<name>.txt` plus the
//! machine-readable `BENCH_<name>.json` perf-trajectory artifacts. Use
//! `--quick` for a CI-sized pass.

use psmr_bench::experiments;

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = experiments::table1();
    let _ = experiments::fig3(&args);
    let _ = experiments::fig4(&args);
    let _ = experiments::fig5(&args);
    let _ = experiments::fig6(&args);
    let _ = experiments::fig7(&args);
    let _ = experiments::fig8(&args);
    let _ = experiments::remap(&args);
    let _ = experiments::ckpt_load(&args);
    let _ = experiments::wal_overhead(&args);
    let _ = experiments::pipeline(&args, false);
    let _ = experiments::stage_breakdown(&args, false);
    println!("all experiments written to target/experiments/ (BENCH_*.json for machines)");
}
