//! Extension experiment: throughput cost of the durable ordered log
//! (write-ahead logging on the ordered path, group commit vs
//! fsync-per-append). See `psmr_bench::experiments::wal_overhead`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::wal_overhead(&args);
}
