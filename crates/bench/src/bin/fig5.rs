//! Regenerates Figure 5 of the paper. See `psmr_bench::experiments`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::fig5(&args);
}
