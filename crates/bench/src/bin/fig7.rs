//! Regenerates Figure 7 of the paper. See `psmr_bench::experiments`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::fig7(&args);
}
