//! Extension experiment: online C-G reconfiguration under adversarial
//! skew. See `psmr_bench::experiments::remap`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::remap(&args);
}
