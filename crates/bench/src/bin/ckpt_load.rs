//! Extension experiment: checkpoint-under-load and recovery time.
//! See `psmr_bench::experiments::ckpt_load`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::ckpt_load(&args);
}
