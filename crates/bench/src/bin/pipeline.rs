//! Extension experiment: the pipelined zero-copy delivery path —
//! consensus batch size × pipelined vs inline group commit, with the
//! perf-sanity assertion that pipelining beats inline fsync-per-append
//! (the configuration offering the same acknowledged ⇒ durable
//! guarantee). See `psmr_bench::experiments::pipeline`.

fn main() {
    let args = psmr_bench::BenchArgs::from_env();
    let _ = psmr_bench::experiments::pipeline(&args, true);
}
