//! Closed-loop workload drivers.
//!
//! The paper's clients "maintain a window of outstanding requests that can
//! contain up to 50 commands" (§VI-B). Each driver spawns client threads
//! that keep their window full, records per-command latency, and reports
//! throughput over the measured interval (excluding warmup).

use psmr_common::cpu::CpuSampler;
use psmr_common::ids::RequestId;
use psmr_common::metrics::{global, Histogram, PipelineStats, RunSummary, ThroughputMeter};
use psmr_core::engines::Engine;
use psmr_netfs::{NetFsOp, NetFsResult};
use psmr_workload::{KeyDist, KvMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Run-length and concurrency knobs for one data point.
#[derive(Debug, Clone)]
pub struct DriveOpts {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Outstanding commands per client (50 in the paper).
    pub window: usize,
    /// Warmup excluded from the measurement.
    pub warmup: Duration,
    /// Measured interval.
    pub duration: Duration,
}

impl Default for DriveOpts {
    fn default() -> Self {
        Self {
            clients: 8,
            window: 50,
            warmup: Duration::from_millis(500),
            duration: Duration::from_secs(2),
        }
    }
}

/// Drives the key-value store on `engine` with the given mix and key
/// distribution, returning the technique's row for the figure.
pub fn drive_kv<E: Engine + Sync>(
    engine: &E,
    mix: &KvMix,
    dist: &KeyDist,
    opts: &DriveOpts,
) -> RunSummary {
    let hist = Histogram::new();
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut measured: Option<(ThroughputMeter, CpuSampler)> = None;
    // Baseline the registry (resetting gauge high-water marks) so the
    // summary reports this run's deltas and peaks, not the process's.
    let baseline = global().baseline();

    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let hist = &hist;
            let measuring = &measuring;
            let stop = &stop;
            let mut client = engine.client();
            let mix = *mix;
            let dist = dist.clone();
            let window = opts.window;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + c as u64);
                let mut submitted: HashMap<RequestId, Instant> = HashMap::new();
                let mut counted = 0u64;
                loop {
                    while client.outstanding() < window {
                        let op = mix.sample(&dist, &mut rng);
                        let id = client.submit(op.command(), op.encode());
                        submitted.insert(id, Instant::now());
                    }
                    let (id, _resp) = client.recv_response();
                    let started = submitted.remove(&id).expect("tracked request");
                    if measuring.load(Ordering::Relaxed) {
                        hist.record(started.elapsed());
                        counted += 1;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return counted;
                    }
                }
            });
        }
        // Control thread (this scope's main flow).
        std::thread::sleep(opts.warmup);
        let meter = ThroughputMeter::start();
        let cpu = CpuSampler::start();
        measuring.store(true, Ordering::Relaxed);
        std::thread::sleep(opts.duration);
        measuring.store(false, Ordering::Relaxed);
        meter.add(hist.count());
        measured = Some((meter, cpu));
        stop.store(true, Ordering::Relaxed);
        // Scope waits for client threads; each returns after its next
        // response, which arrives because requests stay outstanding.
    });

    let (meter, cpu) = measured.expect("control flow ran");
    let cpu_pct = cpu.sample_pct().unwrap_or(0.0);
    let mut summary = RunSummary::from_parts(engine.label(), &hist, &meter, cpu_pct);
    summary.pipeline = PipelineStats::from_snapshot(&global().snapshot_deltas(&baseline));
    summary
}

/// Which NetFS experiment to run (§VII-H): read-only or write-only, 1024
/// bytes per request, uniformly chosen files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFsWorkload {
    /// `read(path, offset, 1024)`.
    Reads,
    /// `write(path, offset, 1024 bytes)`.
    Writes,
}

/// Drives NetFS on `engine` over the fixture paths.
pub fn drive_netfs<E: Engine + Sync>(
    engine: &E,
    workload: NetFsWorkload,
    paths: &[String],
    opts: &DriveOpts,
) -> RunSummary {
    let hist = Histogram::new();
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut measured: Option<(ThroughputMeter, CpuSampler)> = None;

    // 1 KiB of lz-compressible but non-trivial data, as in the paper's
    // request pipeline.
    let block: Vec<u8> = (0..1024u32).map(|i| ((i / 7) % 251) as u8).collect();

    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let hist = &hist;
            let measuring = &measuring;
            let stop = &stop;
            let block = &block;
            let mut client = psmr_netfs::NetFsClient::new(engine.client());
            let window = opts.window;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xF00D + c as u64);
                let mut submitted: HashMap<RequestId, Instant> = HashMap::new();
                loop {
                    while client.outstanding() < window {
                        let path = &paths[rng.gen_range(0..paths.len())];
                        let op = match workload {
                            NetFsWorkload::Reads => NetFsOp::Read {
                                path: path.clone(),
                                offset: 0,
                                len: 1024,
                            },
                            NetFsWorkload::Writes => NetFsOp::Write {
                                path: path.clone(),
                                offset: 0,
                                data: block.clone(),
                            },
                        };
                        let id = client.submit(&op);
                        submitted.insert(id, Instant::now());
                    }
                    let (id, resp) = client.recv();
                    debug_assert!(
                        !matches!(resp, NetFsResult::Err(_)),
                        "workload op failed: {resp:?}"
                    );
                    let started = submitted.remove(&id).expect("tracked request");
                    if measuring.load(Ordering::Relaxed) {
                        hist.record(started.elapsed());
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            });
        }
        std::thread::sleep(opts.warmup);
        let meter = ThroughputMeter::start();
        let cpu = CpuSampler::start();
        measuring.store(true, Ordering::Relaxed);
        std::thread::sleep(opts.duration);
        measuring.store(false, Ordering::Relaxed);
        meter.add(hist.count());
        measured = Some((meter, cpu));
        stop.store(true, Ordering::Relaxed);
    });

    let (meter, cpu) = measured.expect("control flow ran");
    let cpu_pct = cpu.sample_pct().unwrap_or(0.0);
    RunSummary::from_parts(engine.label(), &hist, &meter, cpu_pct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmr_common::SystemConfig;
    use psmr_core::engines::PsmrEngine;
    use psmr_kvstore::{fine_dependency_spec, KvService};

    fn tiny_opts() -> DriveOpts {
        DriveOpts {
            clients: 2,
            window: 10,
            warmup: Duration::from_millis(50),
            // Generous enough that even a test host saturated by the
            // rest of the parallel suite measures some completions.
            duration: Duration::from_millis(500),
        }
    }

    #[test]
    fn kv_driver_produces_a_summary() {
        let mut cfg = SystemConfig::new(2);
        cfg.replicas(1);
        let engine = PsmrEngine::spawn(&cfg, fine_dependency_spec().into_map(), || {
            KvService::with_keys(1000)
        });
        let summary = drive_kv(
            &engine,
            &KvMix::read_only(),
            &KeyDist::uniform(1000),
            &tiny_opts(),
        );
        assert_eq!(summary.technique, "P-SMR");
        assert!(summary.kcps > 0.0, "made progress: {summary:?}");
        assert!(summary.avg_latency_ms > 0.0);
        assert!(!summary.cdf.is_empty());
        engine.shutdown();
    }

    /// Back-to-back runs must report independent pipeline deltas: the
    /// baseline taken at the start of each run snapshots the counters
    /// and resets every gauge's high-water mark (to its current level),
    /// so a busy first run cannot leak its peaks or stall counts into a
    /// quiet second run's summary.
    #[test]
    fn back_to_back_runs_capture_independent_pipeline_deltas() {
        use psmr_common::metrics::{counters, gauges, MetricsRegistry};
        let registry = MetricsRegistry::new();

        // Run 1: heavy pressure.
        let base = registry.baseline();
        registry.counter(counters::RESPONSES_HELD).add(7);
        registry
            .counter(counters::DELIVERY_BACKPRESSURE_STALLS)
            .add(3);
        registry.gauge(gauges::WAL_INFLIGHT).set(40);
        let run1 = PipelineStats::from_snapshot(&registry.snapshot_deltas(&base));
        assert_eq!(run1.responses_held, 7);
        assert_eq!(run1.delivery_backpressure_stalls, 3);
        assert_eq!(run1.wal_inflight_max, 40);

        // Pressure subsides between runs (the engine drained).
        registry.gauge(gauges::WAL_INFLIGHT).set(1);

        // Run 2: quiet. Counters delta from the new baseline and the
        // high-water mark restarts from the current level, not run 1's
        // peak.
        let base = registry.baseline();
        registry.counter(counters::RESPONSES_HELD).add(2);
        registry.gauge(gauges::WAL_INFLIGHT).set(5);
        let run2 = PipelineStats::from_snapshot(&registry.snapshot_deltas(&base));
        assert_eq!(run2.responses_held, 2);
        assert_eq!(run2.delivery_backpressure_stalls, 0);
        assert_eq!(run2.wal_inflight_max, 5, "run 1's peak must not leak");
    }

    #[test]
    fn netfs_driver_produces_a_summary() {
        use psmr_netfs::{dependency_spec, NetFsService};
        let mut cfg = SystemConfig::new(2);
        cfg.replicas(1);
        let engine = PsmrEngine::spawn(&cfg, dependency_spec().into_map(), || {
            NetFsService::with_tree(2, 8, 1024)
        });
        let paths = NetFsService::tree_paths(2, 8);
        let summary = drive_netfs(&engine, NetFsWorkload::Reads, &paths, &tiny_opts());
        assert!(summary.kcps > 0.0, "made progress: {summary:?}");
        engine.shutdown();
    }
}
