//! Experiment output formatting.
//!
//! Prints the rows/series the paper plots and mirrors them to
//! `target/experiments/<name>.txt` so `EXPERIMENTS.md` can reference
//! them. Headline numbers recorded through [`Report::metric`] are
//! additionally written as machine-readable
//! `target/experiments/BENCH_<name>.json`, the perf-trajectory artifact
//! CI and tooling consume.

use psmr_common::metrics::RunSummary;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Collects one experiment's text output.
#[derive(Debug)]
pub struct Report {
    name: String,
    body: String,
    metrics: Vec<(String, f64)>,
}

impl Report {
    /// Starts a report for `name` (e.g. `fig3`).
    pub fn new(name: &str) -> Self {
        let mut report = Self {
            name: name.to_string(),
            body: String::new(),
            metrics: Vec::new(),
        };
        report.line(&format!("=== {name} ==="));
        report
    }

    /// Records one headline number for the machine-readable
    /// `BENCH_<name>.json` (insertion order is preserved; re-recording a
    /// key overwrites it).
    pub fn metric(&mut self, key: &str, value: f64) {
        match self.metrics.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => self.metrics.push((key.to_string(), value)),
        }
    }

    /// Appends a line, echoing it to stdout.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// Appends a throughput/latency/CPU table for a set of technique rows,
    /// annotated with the factor relative to `baseline` (the paper prints
    /// e.g. "3.15 X" over the bars).
    pub fn summary_table(&mut self, rows: &[RunSummary], baseline: &str) {
        let base = rows
            .iter()
            .find(|r| r.technique == baseline)
            .map(|r| r.kcps)
            .filter(|k| *k > 0.0);
        self.line(&format!(
            "{:<10} {:>12} {:>8} {:>12} {:>12} {:>12} {:>8}",
            "technique", "Kcps", "vs base", "avg lat(ms)", "p50 lat(ms)", "p99 lat(ms)", "CPU%"
        ));
        for row in rows {
            let factor = match base {
                Some(b) => format!("{:.2} X", row.kcps / b),
                None => "-".to_string(),
            };
            self.line(&format!(
                "{:<10} {:>12.1} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>8.0}",
                row.technique,
                row.kcps,
                factor,
                row.avg_latency_ms,
                row.p50_latency_ms,
                row.p99_latency_ms,
                row.cpu_pct
            ));
        }
    }

    /// Appends the latency CDF points of each row (the bottom-right plots
    /// of Figures 3 and 4), down-sampled to at most `max_points`.
    pub fn cdf_section(&mut self, rows: &[RunSummary], max_points: usize) {
        self.line("--- latency CDF (ms, cumulative fraction) ---");
        for row in rows {
            let step = (row.cdf.len() / max_points.max(1)).max(1);
            let mut line = format!("{:<10}", row.technique);
            for (ms, frac) in row.cdf.iter().step_by(step) {
                let _ = write!(line, " ({ms:.2},{frac:.2})");
            }
            self.line(&line);
        }
    }

    /// Appends an `(x, y)` series (the line plots of Figures 5–7).
    pub fn series(&mut self, label: &str, points: &[(f64, f64)]) {
        let mut line = format!("{label:<24}");
        for (x, y) in points {
            let _ = write!(line, " ({x}, {y:.1})");
        }
        self.line(&line);
    }

    /// Writes the report to `target/experiments/<name>.txt`, plus —
    /// when [`Report::metric`] recorded anything — the machine-readable
    /// `target/experiments/BENCH_<name>.json`.
    ///
    /// Returns the text path written. Failures to create the directory
    /// or files are reported but not fatal (the report already went to
    /// stdout).
    pub fn save(&self) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return None;
        }
        if !self.metrics.is_empty() {
            let json_path = dir.join(format!("BENCH_{}.json", self.name));
            if let Err(e) = fs::write(&json_path, self.metrics_json()) {
                eprintln!("cannot write {}: {e}", json_path.display());
            }
        }
        let path = dir.join(format!("{}.txt", self.name));
        match fs::write(&path, &self.body) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// The accumulated text.
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Renders the recorded metrics as a JSON object (hand-formatted:
    /// the workspace has no JSON dependency). Non-finite values become
    /// `null` so the artifact always parses.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"name\": \"{}\",\n  \"metrics\": {{", self.name);
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let key: String = key
                .chars()
                .map(|c| if c == '"' || c == '\\' { '_' } else { c })
                .collect();
            if value.is_finite() {
                let _ = write!(out, "{sep}\n    \"{key}\": {value}");
            } else {
                let _ = write!(out, "{sep}\n    \"{key}\": null");
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(technique: &str, kcps: f64) -> RunSummary {
        RunSummary {
            technique: technique.into(),
            kcps,
            avg_latency_ms: 1.0,
            p50_latency_ms: 0.8,
            p99_latency_ms: 2.0,
            cpu_pct: 100.0,
            cdf: vec![(0.5, 0.5), (1.0, 1.0)],
            pipeline: Default::default(),
        }
    }

    #[test]
    fn table_shows_relative_factors() {
        let mut report = Report::new("test");
        report.summary_table(&[row("SMR", 100.0), row("P-SMR", 315.0)], "SMR");
        assert!(report.body().contains("3.15 X"));
        assert!(report.body().contains("1.00 X"));
    }

    #[test]
    fn missing_baseline_prints_dashes() {
        let mut report = Report::new("test");
        report.summary_table(&[row("P-SMR", 315.0)], "SMR");
        assert!(report.body().contains(" -"));
    }

    #[test]
    fn cdf_and_series_render() {
        let mut report = Report::new("test");
        report.cdf_section(&[row("SMR", 1.0)], 10);
        report.series("P-SMR uniform", &[(1.0, 100.0), (2.0, 200.0)]);
        assert!(report.body().contains("(0.50,0.50)"));
        assert!(report.body().contains("(1, 100.0)"));
    }

    #[test]
    fn metrics_render_as_json() {
        let mut report = Report::new("walx");
        report.metric("baseline_kcps", 123.5);
        report.metric("dip_pct", f64::NAN);
        report.metric("baseline_kcps", 124.0); // overwrite, keep order
        let json = report.metrics_json();
        assert!(json.contains("\"name\": \"walx\""));
        assert!(json.contains("\"baseline_kcps\": 124"));
        assert!(
            json.contains("\"dip_pct\": null"),
            "NaN must not break JSON"
        );
        assert!(json.find("baseline_kcps").unwrap() < json.find("dip_pct").unwrap());
    }
}
