//! Experiment output formatting.
//!
//! Prints the rows/series the paper plots and mirrors them to
//! `target/experiments/<name>.txt` so `EXPERIMENTS.md` can reference them.

use psmr_common::metrics::RunSummary;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Collects one experiment's text output.
#[derive(Debug)]
pub struct Report {
    name: String,
    body: String,
}

impl Report {
    /// Starts a report for `name` (e.g. `fig3`).
    pub fn new(name: &str) -> Self {
        let mut report = Self {
            name: name.to_string(),
            body: String::new(),
        };
        report.line(&format!("=== {name} ==="));
        report
    }

    /// Appends a line, echoing it to stdout.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// Appends a throughput/latency/CPU table for a set of technique rows,
    /// annotated with the factor relative to `baseline` (the paper prints
    /// e.g. "3.15 X" over the bars).
    pub fn summary_table(&mut self, rows: &[RunSummary], baseline: &str) {
        let base = rows
            .iter()
            .find(|r| r.technique == baseline)
            .map(|r| r.kcps)
            .filter(|k| *k > 0.0);
        self.line(&format!(
            "{:<10} {:>12} {:>8} {:>12} {:>12} {:>8}",
            "technique", "Kcps", "vs base", "avg lat(ms)", "p99 lat(ms)", "CPU%"
        ));
        for row in rows {
            let factor = match base {
                Some(b) => format!("{:.2} X", row.kcps / b),
                None => "-".to_string(),
            };
            self.line(&format!(
                "{:<10} {:>12.1} {:>8} {:>12.3} {:>12.3} {:>8.0}",
                row.technique,
                row.kcps,
                factor,
                row.avg_latency_ms,
                row.p99_latency_ms,
                row.cpu_pct
            ));
        }
    }

    /// Appends the latency CDF points of each row (the bottom-right plots
    /// of Figures 3 and 4), down-sampled to at most `max_points`.
    pub fn cdf_section(&mut self, rows: &[RunSummary], max_points: usize) {
        self.line("--- latency CDF (ms, cumulative fraction) ---");
        for row in rows {
            let step = (row.cdf.len() / max_points.max(1)).max(1);
            let mut line = format!("{:<10}", row.technique);
            for (ms, frac) in row.cdf.iter().step_by(step) {
                let _ = write!(line, " ({ms:.2},{frac:.2})");
            }
            self.line(&line);
        }
    }

    /// Appends an `(x, y)` series (the line plots of Figures 5–7).
    pub fn series(&mut self, label: &str, points: &[(f64, f64)]) {
        let mut line = format!("{label:<24}");
        for (x, y) in points {
            let _ = write!(line, " ({x}, {y:.1})");
        }
        self.line(&line);
    }

    /// Writes the report to `target/experiments/<name>.txt`.
    ///
    /// Returns the path written. Failures to create the directory or file
    /// are reported but not fatal (the report already went to stdout).
    pub fn save(&self) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{}.txt", self.name));
        match fs::write(&path, &self.body) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// The accumulated text.
    pub fn body(&self) -> &str {
        &self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(technique: &str, kcps: f64) -> RunSummary {
        RunSummary {
            technique: technique.into(),
            kcps,
            avg_latency_ms: 1.0,
            p99_latency_ms: 2.0,
            cpu_pct: 100.0,
            cdf: vec![(0.5, 0.5), (1.0, 1.0)],
        }
    }

    #[test]
    fn table_shows_relative_factors() {
        let mut report = Report::new("test");
        report.summary_table(&[row("SMR", 100.0), row("P-SMR", 315.0)], "SMR");
        assert!(report.body().contains("3.15 X"));
        assert!(report.body().contains("1.00 X"));
    }

    #[test]
    fn missing_baseline_prints_dashes() {
        let mut report = Report::new("test");
        report.summary_table(&[row("P-SMR", 315.0)], "SMR");
        assert!(report.body().contains(" -"));
    }

    #[test]
    fn cdf_and_series_render() {
        let mut report = Report::new("test");
        report.cdf_section(&[row("SMR", 1.0)], 10);
        report.series("P-SMR uniform", &[(1.0, 100.0), (2.0, 200.0)]);
        assert!(report.body().contains("(0.50,0.50)"));
        assert!(report.body().contains("(1, 100.0)"));
    }
}
