//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*` binary (see `src/bin/`) builds the deployments of one
//! evaluation experiment (§VII), drives them with the paper's workload,
//! and prints the same rows/series the paper plots — throughput in Kcps,
//! CPU %, average latency and latency CDFs — plus the relative factors the
//! paper annotates (e.g. "3.15 X"). Output is also written to
//! `target/experiments/`.
//!
//! | Binary | Paper result |
//! |--------|--------------|
//! | `table1` | Table I — degrees of parallelism |
//! | `fig3` | independent commands (read-only KV) |
//! | `fig4` | dependent commands (insert/delete KV) |
//! | `fig5` | scalability vs worker threads |
//! | `fig6` | mixed workloads (breakeven point) |
//! | `fig7` | skewed workloads (uniform vs Zipf) |
//! | `fig8` | NetFS reads and writes |
//! | `remap` | extension: online C-G reconfiguration under skew |
//! | `ckpt_load` | extension: checkpoint-under-load dip + recovery time |
//! | `wal_overhead` | extension: durable-log cost (inline vs pipelined group commit) |
//! | `pipeline` | extension: pipelined delivery path, batch size × pipeline on/off |
//! | `stage_breakdown` | extension: per-stage lifecycle latency across the WAL modes |
//! | `run_all` | everything above, writing `EXPERIMENTS.md` data |
//! | `validate_bench` | checks every `BENCH_*.json` against `bench_schema.txt` |
//!
//! All binaries accept `--quick` (shorter runs for CI), `--keys N`,
//! `--clients N` and `--secs F`. Absolute numbers depend on the host; the
//! *shape* — who wins, by what factor, where crossovers sit — is what
//! reproduces the paper (see `EXPERIMENTS.md`).

pub mod args;
pub mod driver;
pub mod engines;
pub mod experiments;
pub mod report;
pub mod validate;

pub use args::BenchArgs;
pub use driver::{drive_kv, drive_netfs, DriveOpts, NetFsWorkload};
pub use engines::{build_kv, KvDeployment, Technique};
pub use report::Report;
