//! Engine round-trip latency: one command through the full stack of each
//! technique (client proxy → ordering → execution → response).

use criterion::{criterion_group, criterion_main, Criterion};
use psmr_bench::engines::{build_kv, Technique};
use psmr_core::engines::Engine;
use psmr_kvstore::KvOp;
use std::time::Duration;

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round_trip");
    for technique in Technique::ALL {
        let workers = match technique {
            Technique::Psmr => 4,
            Technique::Bdb => 4,
            Technique::Smr => 1,
            _ => 2,
        };
        group.bench_function(technique.label(), |b| {
            let engine = build_kv(technique, workers, 10_000);
            let mut client = engine.client();
            let mut key = 0u64;
            b.iter(|| {
                key = (key + 1) % 10_000;
                let op = KvOp::Read { key };
                std::hint::black_box(client.execute(op.command(), op.encode()));
            });
            drop(client);
            engine.shutdown();
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500)).sample_size(30);
    targets = bench_round_trip
}
criterion_main!(benches);
