//! Component micro-benchmarks: the substrates the system is built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use psmr_btree::{BPlusTree, ConcurrentBPlusTree};
use psmr_workload::KeyDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("serial_get_100k", |b| {
        let tree: BPlusTree<u64> = (0..100_000u64).map(|k| (k, k)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let k = rng.gen_range(0..100_000);
            std::hint::black_box(tree.get(&k));
        });
    });
    group.bench_function("serial_insert_churn", |b| {
        let mut tree: BPlusTree<u64> = (0..100_000u64).map(|k| (k, k)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut next = 100_000u64;
        b.iter(|| {
            tree.insert(next, next);
            let victim = rng.gen_range(0..next);
            tree.remove(&victim);
            next += 1;
        });
    });
    group.bench_function("concurrent_get_100k", |b| {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in 0..100_000u64 {
            tree.insert(k, k);
        }
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let k = rng.gen_range(0..100_000);
            std::hint::black_box(tree.get(&k));
        });
    });
    // The per-node latching overhead of the lock-based (BDB-like) tree vs
    // the plain tree is the ablation behind Figure 3's BDB bar.
    group.finish();
}

fn bench_lz(c: &mut Criterion) {
    let mut group = c.benchmark_group("lz");
    let block: Vec<u8> = (0..1024u32).map(|i| ((i / 7) % 251) as u8).collect();
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("compress_1k", |b| {
        b.iter(|| std::hint::black_box(psmr_lz::compress(&block)));
    });
    let compressed = psmr_lz::compress(&block);
    group.bench_function("decompress_1k", |b| {
        b.iter(|| std::hint::black_box(psmr_lz::decompress(&compressed).unwrap()));
    });
    // Compression slower than decompression explains the reads-vs-writes
    // latency gap of Figure 8 (§VII-H).
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    let uniform = KeyDist::uniform(10_000_000);
    let zipf = KeyDist::zipf(10_000_000, 1.0);
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("uniform_sample", |b| {
        b.iter(|| std::hint::black_box(uniform.sample(&mut rng)))
    });
    group.bench_function("zipf_sample", |b| {
        b.iter(|| std::hint::black_box(zipf.sample(&mut rng)))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.bench_function("histogram_record", |b| {
        let hist = psmr_common::metrics::Histogram::new();
        let mut ns = 100u64;
        b.iter(|| {
            hist.record(std::time::Duration::from_nanos(ns));
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000_000;
        });
    });
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    use psmr_common::envelope::Request;
    use psmr_common::ids::{ClientId, CommandId, RequestId};
    let mut group = c.benchmark_group("envelope");
    let req = Request::new(
        ClientId::new(1),
        RequestId::new(2),
        CommandId::new(3),
        vec![7u8; 16],
    );
    group.bench_function("encode_decode", |b| {
        b.iter_batched(
            || req.clone(),
            |req| {
                let bytes = req.encode();
                std::hint::black_box(Request::decode(&bytes).unwrap())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_lz,
    bench_workload,
    bench_metrics,
    bench_envelope
);
criterion_main!(benches);
