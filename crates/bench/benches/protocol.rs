//! Protocol-level benchmarks and ablations of the design choices called
//! out in `DESIGN.md`: batch size, C-Dep granularity, the scheduler
//! dispatch path vs direct per-worker delivery, and the synchronous-mode
//! signal barrier.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psmr_common::ids::{GroupId, WorkerId};
use psmr_common::SystemConfig;
use psmr_core::conflict::CommandMap;
use psmr_core::engines::sync::{SignalBoard, SignalKind};
use psmr_kvstore::{coarse_dependency_spec, fine_dependency_spec, KvOp};
use psmr_multicast::{Destinations, MulticastSystem};
use std::time::Duration;

fn quick_cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.batch_delay(Duration::from_micros(50))
        .skip_interval(Duration::from_micros(200));
    cfg
}

/// Ordered delivery through one Paxos-backed group, end to end.
fn bench_multicast_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast");
    group.bench_function("ordered_delivery", |b| {
        let system = MulticastSystem::spawn(&quick_cfg(1));
        let handle = system.handle();
        let mut stream = system.worker_stream(WorkerId::new(0));
        system.start();
        let payload = Bytes::from_static(&[0u8; 32]);
        b.iter(|| {
            handle.multicast(&Destinations::one(GroupId::new(0)), payload.clone());
            std::hint::black_box(stream.next().expect("delivered"));
        });
        system.shutdown();
    });
    group.finish();
}

/// Ablation: batch size cap (the paper uses 8 KB).
fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast_batching");
    for batch_bytes in [1usize << 10, 8 << 10, 64 << 10] {
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KB", batch_bytes >> 10)),
            &batch_bytes,
            |b, &batch_bytes| {
                let mut cfg = quick_cfg(1);
                cfg.batch_bytes(batch_bytes);
                let system = MulticastSystem::spawn(&cfg);
                let handle = system.handle();
                let mut stream = system.worker_stream(WorkerId::new(0));
                system.start();
                let payload = Bytes::from_static(&[0u8; 32]);
                b.iter(|| {
                    for _ in 0..1000 {
                        handle.multicast(&Destinations::one(GroupId::new(0)), payload.clone());
                    }
                    for _ in 0..1000 {
                        std::hint::black_box(stream.next().expect("delivered"));
                    }
                });
                system.shutdown();
            },
        );
    }
    group.finish();
}

/// Ablation: C-Dep granularity — computing destinations with the fine
/// (keyed) vs coarse (free/global) C-G function.
fn bench_cdep_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdep_granularity");
    let fine: CommandMap = fine_dependency_spec().into_map();
    let coarse: CommandMap = coarse_dependency_spec().into_map();
    let read = KvOp::Read { key: 123456 }.encode();
    group.bench_function("fine_read_destinations", |b| {
        b.iter(|| std::hint::black_box(fine.destinations(psmr_kvstore::READ, &read, 8)));
    });
    group.bench_function("coarse_read_destinations", |b| {
        b.iter(|| std::hint::black_box(coarse.destinations(psmr_kvstore::READ, &read, 8)));
    });
    let update = KvOp::Update {
        key: 123456,
        value: 1,
    }
    .encode();
    group.bench_function("fine_update_destinations", |b| {
        b.iter(|| std::hint::black_box(fine.destinations(psmr_kvstore::UPDATE, &update, 8)));
    });
    group.finish();
}

/// Ablation: the synchronous-mode signal barrier (Algorithm 1 lines
/// 14–26) for 2, 4 and 8 participants.
fn bench_sync_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_mode");
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            // Executor is worker 0; workers 1..k loop signalling Ready and
            // waiting for Resume, driven by the benched executor iteration.
            let (board, mut endpoints) = SignalBoard::new(k);
            let mut executor_ep = endpoints.remove(0);
            let others: Vec<WorkerId> = (1..k).map(WorkerId::new).collect();
            let mut helpers = Vec::new();
            for (i, mut ep) in endpoints.into_iter().enumerate() {
                let board = board.clone();
                let me = WorkerId::new(i + 1);
                helpers.push(std::thread::spawn(move || loop {
                    board.signal(me, WorkerId::new(0), SignalKind::Ready);
                    if !ep.wait_for(WorkerId::new(0), SignalKind::Resume) {
                        return;
                    }
                }));
            }
            b.iter(|| {
                assert!(executor_ep.wait_ready_from_all(&others));
                for &o in &others {
                    board.signal(WorkerId::new(0), o, SignalKind::Resume);
                }
            });
            board.shutdown();
            for h in helpers {
                let _ = h.join();
            }
        });
    }
    group.finish();
}

/// Delivery-path ablation: commands fanned through a scheduler-style
/// single stream vs merged per-worker streams (the architectural
/// difference between sP-SMR and P-SMR).
fn bench_delivery_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_path");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("single_stream_1000", |b| {
        let system = MulticastSystem::spawn_single(&quick_cfg(4));
        let handle = system.handle();
        let mut stream = system.single_stream();
        system.start();
        let payload = Bytes::from_static(&[0u8; 32]);
        b.iter(|| {
            for _ in 0..1000 {
                handle.multicast(&Destinations::one(GroupId::new(0)), payload.clone());
            }
            for _ in 0..1000 {
                std::hint::black_box(stream.next().expect("delivered"));
            }
        });
        system.shutdown();
    });
    group.bench_function("four_worker_streams_1000", |b| {
        let system = MulticastSystem::spawn(&quick_cfg(4));
        let handle = system.handle();
        let mut streams: Vec<_> = (0..4)
            .map(|i| system.worker_stream(WorkerId::new(i)))
            .collect();
        system.start();
        let payload = Bytes::from_static(&[0u8; 32]);
        b.iter(|| {
            for i in 0..1000usize {
                handle.multicast(&Destinations::one(GroupId::new(i % 4)), payload.clone());
            }
            for (i, stream) in streams.iter_mut().enumerate() {
                for _ in 0..(1000 / 4) {
                    std::hint::black_box(stream.next().expect("delivered"));
                }
                let _ = i;
            }
        });
        system.shutdown();
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500)).sample_size(20);
    targets = bench_multicast_round_trip, bench_batching, bench_cdep_granularity, bench_sync_mode, bench_delivery_path
}
criterion_main!(benches);
