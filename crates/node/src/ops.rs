//! `psmr-ops`: scrape every node's admin endpoint and merge the answers
//! into one cluster table.
//!
//! For each node in a [`ClusterConfig`] the scraper issues `status` and
//! `metrics.json` against the node's `admin_addr` and derives:
//!
//! * the node's role and stream watermarks (`executed_seq`,
//!   `durable_seq`);
//! * **durability lag** = the cluster's highest executed sequence minus
//!   the node's own durable watermark — how much ordered work the node
//!   would lose (and re-fetch) if it died right now;
//! * mesh health: peers connected / total, the deepest resend buffer,
//!   and the node's reconnect count;
//! * throughput so far: the `commands_executed` counter.
//!
//! Nodes without an `admin_addr`, or unreachable ones, render as an
//! `unreachable` row instead of failing the whole scrape — the table is
//! an operator's view of a possibly-degraded cluster.

use crate::admin;
use psmr_net::ClusterConfig;
use std::fmt::Write as _;
use std::time::Duration;

/// One node's scraped state (or the reason it could not be scraped).
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Node id (position in the cluster config).
    pub node: usize,
    /// `orderer` / `follower` from `status`.
    pub role: String,
    /// `ok` / `degraded` from `status` — a follower is degraded when
    /// its orderer link has been silent past the node's staleness bound.
    pub health: String,
    /// Highest stream sequence the node has executed.
    pub executed_seq: u64,
    /// The node's durability watermark (WAL on the orderer, newest
    /// installed checkpoint on followers).
    pub durable_seq: u64,
    /// Peers with a live outbound link.
    pub peers_up: usize,
    /// Outbound peers total.
    pub peers_total: usize,
    /// Deepest per-peer resend buffer.
    pub max_resend_depth: usize,
    /// `commands_executed` counter (rollup).
    pub commands_executed: u64,
    /// `net_reconnects` counter (rollup).
    pub reconnects: u64,
    /// Why the node could not be scraped, if it could not.
    pub error: Option<String>,
}

/// First integer following `key` in `text` (fields render as `key=N` or
/// `key N`).
fn int_after(text: &str, key: &str) -> Option<u64> {
    let at = text.find(key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The rollup counter `name` out of a `metrics.json` line. Labeled
/// variants carry `{...}` before the closing quote, so matching
/// `"name":` hits exactly the plain rollup.
fn json_counter(json: &str, name: &str) -> u64 {
    int_after(json, &format!("\"{name}\":")).unwrap_or(0)
}

/// Scrapes one node's admin endpoint into a report.
fn scrape_node(node: usize, admin_addr: &str, timeout: Duration) -> NodeReport {
    let mut report = NodeReport {
        node,
        ..NodeReport::default()
    };
    if admin_addr.is_empty() {
        report.error = Some("no admin_addr configured".to_string());
        return report;
    }
    let status = match admin::query(admin_addr, "status", timeout) {
        Ok(s) => s,
        Err(e) => {
            report.error = Some(format!("unreachable: {e}"));
            return report;
        }
    };
    report.role = status
        .lines()
        .find_map(|l| l.strip_prefix("role "))
        .unwrap_or("?")
        .to_string();
    report.health = status
        .lines()
        .find_map(|l| l.strip_prefix("health "))
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or("?")
        .to_string();
    report.executed_seq = int_after(&status, "executed_seq=").unwrap_or(0);
    report.durable_seq = int_after(&status, "durable_seq=").unwrap_or(0);
    for line in status.lines().filter(|l| l.starts_with("peer ")) {
        report.peers_total += 1;
        if line.contains("connected=true") {
            report.peers_up += 1;
        }
        let depth = int_after(line, "resend_depth=").unwrap_or(0) as usize;
        report.max_resend_depth = report.max_resend_depth.max(depth);
    }
    match admin::query(admin_addr, "metrics.json", timeout) {
        Ok(json) => {
            report.commands_executed = json_counter(&json, "commands_executed");
            report.reconnects = json_counter(&json, "net_reconnects");
        }
        Err(e) => report.error = Some(format!("metrics unreachable: {e}")),
    }
    report
}

/// Scrapes every node of the deployment.
pub fn scrape(cluster: &ClusterConfig, timeout: Duration) -> Vec<NodeReport> {
    cluster
        .nodes
        .iter()
        .enumerate()
        .map(|(node, spec)| scrape_node(node, &spec.admin_addr, timeout))
        .collect()
}

/// Renders the merged cluster table. Lag = the cluster's highest
/// executed sequence minus each node's durable watermark.
pub fn render_table(reports: &[NodeReport]) -> String {
    let cluster_max = reports.iter().map(|r| r.executed_seq).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<5} {:<9} {:<9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "node",
        "role",
        "health",
        "executed",
        "durable",
        "lag",
        "peers",
        "resend",
        "cmds",
        "reconnects"
    );
    for r in reports {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{:<5} {err}", r.node);
            continue;
        }
        let _ = writeln!(
            out,
            "{:<5} {:<9} {:<9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>10} {:>10}",
            r.node,
            r.role,
            r.health,
            r.executed_seq,
            r.durable_seq,
            cluster_max.saturating_sub(r.durable_seq),
            format!("{}/{}", r.peers_up, r.peers_total),
            r.max_resend_depth,
            r.commands_executed,
            r.reconnects
        );
    }
    out
}

/// Scrapes the cluster and returns the rendered table — the `psmr-ops`
/// subcommand's whole job.
///
/// # Errors
///
/// Only when *no* node answered: a degraded-but-alive cluster renders
/// with `unreachable` rows instead.
pub fn run_ops(cluster: &ClusterConfig, timeout: Duration) -> Result<String, String> {
    let reports = scrape(cluster, timeout);
    if reports.iter().all(|r| r.error.is_some()) {
        return Err("no node admin endpoint reachable".to_string());
    }
    Ok(render_table(&reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_parsing_handles_both_shapes() {
        assert_eq!(int_after("executed_seq=42 x", "executed_seq="), Some(42));
        assert_eq!(int_after("traced 7\n", "traced "), Some(7));
        assert_eq!(int_after("nope", "executed_seq="), None);
        let json = r#"{"counters":{"net_reconnects{peer=1}":9,"net_reconnects":12}}"#;
        assert_eq!(json_counter(json, "net_reconnects"), 12);
        assert_eq!(json_counter(json, "commands_executed"), 0);
    }

    #[test]
    fn table_reports_lag_against_the_cluster_maximum() {
        let reports = vec![
            NodeReport {
                node: 0,
                role: "orderer".into(),
                health: "ok".into(),
                executed_seq: 100,
                durable_seq: 100,
                peers_up: 2,
                peers_total: 2,
                commands_executed: 400,
                ..NodeReport::default()
            },
            NodeReport {
                node: 1,
                role: "follower".into(),
                health: "degraded".into(),
                executed_seq: 90,
                durable_seq: 60,
                peers_up: 2,
                peers_total: 2,
                ..NodeReport::default()
            },
            NodeReport {
                node: 2,
                error: Some("unreachable: timed out".into()),
                ..NodeReport::default()
            },
        ];
        let table = render_table(&reports);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[0].contains("health"), "{table}");
        assert!(lines[1].contains("orderer"), "{table}");
        assert!(lines[1].contains("ok"), "{table}");
        // Node 1's lag: cluster max 100 − its durable 60.
        assert!(lines[2].contains("40"), "{table}");
        assert!(lines[2].contains("degraded"), "{table}");
        assert!(lines[3].contains("unreachable"), "{table}");
    }
}
