//! # psmr-node — multi-process deployment of the replicated kvstore
//!
//! Everything else in this workspace runs a whole deployment inside one
//! OS process (the in-process [`psmr_netsim::LiveNet`] substrate). This
//! crate turns the same building blocks into **N communicating OS
//! processes** over the real TCP substrate of `psmr-net`:
//!
//! * the `psmr-node` binary hosts one node: its share of the paxos
//!   group (the coordinator + WAL on node 0, a remote acceptor
//!   elsewhere), a kvstore replica executing the decided stream, the
//!   checkpoint/durable stores, a state-transfer server, and a client
//!   listener — see [`process::run_node`];
//! * the `psmr-client` binary is a minimal interactive client, plus the
//!   `ops` subcommand that scrapes every node's [`admin`] endpoint into
//!   one merged cluster table (see [`ops`]);
//! * [`wire`] defines the deployment-owned wire formats (the decided-
//!   batch relay plane and the client protocol) and the blocking,
//!   **self-healing** [`wire::NodeClient`] — it reconnects with
//!   jittered backoff and retransmits the in-flight request under the
//!   same `(client, request)` id, which the node-side dedup table turns
//!   into exactly-once execution;
//! * [`admin`] serves the per-node line-oriented diagnostic protocol
//!   (`metrics`, `metrics.json`, `trace`, `status`, and the
//!   `chaos get|set|clear` fault-injection verbs) on a node's
//!   `admin_addr`;
//! * [`logger`] is the leveled structured logger teeing every event
//!   into the node's `flight.jsonl` flight recorder.
//!
//! A deployment is described by a `psmr_net::ClusterConfig` TOML file;
//! node 0 is the orderer. Followers receive the decided stream over the
//! relay plane and fall back to TCP state transfer when the orderer has
//! trimmed past their position — the rejoin path a SIGKILLed node with
//! a wiped data directory takes.

pub mod admin;
pub mod logger;
pub mod ops;
pub mod process;
pub mod wire;

pub use process::{
    connect_with_retry, force_checkpoint, run_node, wipe_data_dir, NodeOptions, RunningNode,
};
pub use wire::{NodeClient, RelayMsg, STALE_READ};
