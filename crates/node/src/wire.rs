//! Wire formats owned by the deployment layer: the decided-batch
//! relay/submit plane (mesh channel 2) and the client ↔ node protocol.
//!
//! Both planes reuse the `psmr-net` frame envelope
//! ([`psmr_net::frame`]); this module only defines what goes *inside*
//! the frames. Everything is little-endian fixed-width integers with
//! `u32` length prefixes, like [`psmr_net::codec`].

use bytes::Bytes;
use psmr_common::envelope::Request;
use psmr_common::ids::{ClientId, CommandId, RequestId};
use psmr_common::metrics::{counters, global};
use psmr_common::trace::ChainPrefix;
use psmr_net::chaos::Rng;
use psmr_net::frame::{encode_frame, FrameDecoder};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The command id reserved for stale reads: the node answers from its
/// **local** store without ordering the command, tagging the response
/// with how stale the replica might be. The payload wraps the real
/// (read-only) command — see [`encode_stale_read`].
pub const STALE_READ: CommandId = CommandId::new(u32::MAX - 2);

/// The relay/submit plane: how a non-orderer node receives the decided
/// stream and forwards client submissions to the orderer (node 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayMsg {
    /// Follower → orderer: stream me decided batches from `from_seq`.
    /// Idempotent; re-sent on gaps and after silence.
    Subscribe {
        /// First sequence number the follower still needs.
        from_seq: u64,
    },
    /// Orderer → follower: one decided batch of ordered commands.
    Batch {
        /// Stream sequence number (contiguous from 1).
        seq: u64,
        /// The orderer's trace-chain prefix for this batch (ages of its
        /// `Submitted`/`Ordered`/`WalAppended` stamps), present when the
        /// sequence is sampled and the prefix is complete. The follower
        /// re-anchors it with `TraceRecorder::adopt_prefix` so its own
        /// report spans the full cross-process chain.
        trace: Option<ChainPrefix>,
        /// The batch's commands (encoded [`Request`]s).
        commands: Vec<Bytes>,
    },
    /// Orderer → follower: the retained log no longer reaches back to
    /// the requested seq — state-transfer first, then re-subscribe.
    Trimmed {
        /// Oldest sequence number still retained.
        first_retained: u64,
    },
    /// Orderer → follower: the requested seq has not been decided yet.
    Future {
        /// Sequence number the next decided batch will carry.
        next_seq: u64,
    },
    /// Follower → orderer: order this client command (encoded
    /// [`Request`] bytes, submitted verbatim).
    Submit {
        /// The marshalled request.
        command: Vec<u8>,
    },
}

impl RelayMsg {
    /// Encodes the message as a channel-2 frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RelayMsg::Subscribe { from_seq } => {
                out.push(0);
                out.extend_from_slice(&from_seq.to_le_bytes());
            }
            RelayMsg::Batch {
                seq,
                trace,
                commands,
            } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
                match trace {
                    Some(prefix) => {
                        out.push(1);
                        out.extend_from_slice(&prefix.submitted_age_ns.to_le_bytes());
                        out.extend_from_slice(&prefix.submit_to_ordered_ns.to_le_bytes());
                        out.extend_from_slice(&prefix.ordered_to_appended_ns.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&(commands.len() as u32).to_le_bytes());
                for command in commands {
                    out.extend_from_slice(&(command.len() as u32).to_le_bytes());
                    out.extend_from_slice(command);
                }
            }
            RelayMsg::Trimmed { first_retained } => {
                out.push(2);
                out.extend_from_slice(&first_retained.to_le_bytes());
            }
            RelayMsg::Future { next_seq } => {
                out.push(3);
                out.extend_from_slice(&next_seq.to_le_bytes());
            }
            RelayMsg::Submit { command } => {
                out.push(4);
                out.extend_from_slice(&(command.len() as u32).to_le_bytes());
                out.extend_from_slice(command);
            }
        }
        out
    }

    /// Decodes a channel-2 frame body; `None` on anything malformed.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let tag = *bytes.first()?;
        let rest = &bytes[1..];
        let u64_at = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?))
        };
        let msg = match tag {
            0 => RelayMsg::Subscribe {
                from_seq: u64_at(0)?,
            },
            1 => {
                let seq = u64_at(0)?;
                let trace = match *rest.get(8)? {
                    0 => None,
                    1 => Some(ChainPrefix {
                        submitted_age_ns: u64_at(9)?,
                        submit_to_ordered_ns: u64_at(17)?,
                        ordered_to_appended_ns: u64_at(25)?,
                    }),
                    _ => return None,
                };
                let mut at = if trace.is_some() { 33 } else { 9 };
                let count = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let mut commands = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let len = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                    at += 4;
                    commands.push(Bytes::copy_from_slice(rest.get(at..at + len)?));
                    at += len;
                }
                if at != rest.len() {
                    return None;
                }
                return Some(RelayMsg::Batch {
                    seq,
                    trace,
                    commands,
                });
            }
            2 => RelayMsg::Trimmed {
                first_retained: u64_at(0)?,
            },
            3 => RelayMsg::Future {
                next_seq: u64_at(0)?,
            },
            4 => {
                let len = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?) as usize;
                let command = rest.get(4..4 + len)?.to_vec();
                if 4 + len != rest.len() {
                    return None;
                }
                return Some(RelayMsg::Submit { command });
            }
            _ => return None,
        };
        // Fixed-width variants must consume the body exactly.
        if rest.len() != 8 {
            return None;
        }
        Some(msg)
    }
}

/// Encodes one client-plane response frame body: `request u64 | payload`.
pub fn encode_response(request: RequestId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&request.as_raw().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a client-plane response frame body.
pub fn decode_response(bytes: &[u8]) -> Option<(RequestId, Vec<u8>)> {
    let request = u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?);
    Some((RequestId::new(request), bytes[8..].to_vec()))
}

/// Encodes a [`STALE_READ`] request payload: the wrapped read-only
/// command (`command u32 | payload`).
pub fn encode_stale_read(command: CommandId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&command.as_raw().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a [`STALE_READ`] request payload.
pub fn decode_stale_read(bytes: &[u8]) -> Option<(CommandId, &[u8])> {
    let command = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?);
    Some((CommandId::new(command), &bytes[4..]))
}

/// Encodes a [`STALE_READ`] response payload: tag `0` + the staleness
/// bound in milliseconds + the local result, or tag `1` + a reason when
/// the node refused (non-read command, no local view).
pub fn encode_stale_response(outcome: &Result<(u64, Vec<u8>), String>) -> Vec<u8> {
    match outcome {
        Ok((stale_ms, result)) => {
            let mut out = Vec::with_capacity(9 + result.len());
            out.push(0);
            out.extend_from_slice(&stale_ms.to_le_bytes());
            out.extend_from_slice(result);
            out
        }
        Err(reason) => {
            let mut out = Vec::with_capacity(1 + reason.len());
            out.push(1);
            out.extend_from_slice(reason.as_bytes());
            out
        }
    }
}

/// Decodes a [`STALE_READ`] response payload; `None` on malformed bytes.
pub fn decode_stale_response(bytes: &[u8]) -> Option<Result<(u64, Vec<u8>), String>> {
    match *bytes.first()? {
        0 => {
            let stale_ms = u64::from_le_bytes(bytes.get(1..9)?.try_into().ok()?);
            Some(Ok((stale_ms, bytes[9..].to_vec())))
        }
        1 => Some(Err(String::from_utf8_lossy(&bytes[1..]).into_owned())),
        _ => None,
    }
}

/// How long the first send waits for its response before
/// retransmitting; the window doubles per retransmission (capped by
/// [`TRY_TIMEOUT_MAX`]) so a slow-but-alive deployment sees a bounded
/// number of duplicates instead of a fixed-cadence retransmit storm
/// that adds load exactly when the system has none to spare.
const DEFAULT_TRY_TIMEOUT: Duration = Duration::from_millis(500);
/// Per-try windows stop doubling here.
const TRY_TIMEOUT_MAX: Duration = Duration::from_secs(4);
/// First re-dial delay after a failed connect; doubles (jittered) to
/// [`DIAL_BACKOFF_MAX`].
const DIAL_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Re-dial delays stop doubling here.
const DIAL_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// A self-healing blocking client of the deployment's client listeners.
///
/// Requests travel as framed [`Request`] envelopes; a node responds
/// with a framed `request id | result` body once the command has been
/// ordered and executed locally. One outstanding request at a time (the
/// closed-loop shape every test client uses).
///
/// **Self-healing:** on a socket error, a poisoned response stream, or
/// a per-try deadline expiry, [`execute`](Self::execute) reconnects
/// (with jittered backoff, rotating through every configured address)
/// and **retransmits the in-flight request under the same
/// `(client, request)` id** — the nodes' server-side dedup answers
/// duplicates from its response cache, so a command is never executed
/// twice no matter how many copies the retries pushed into the ordered
/// stream. Request ids are seeded from the wall clock and only ever
/// increase, so a restarted client process reusing its client id cannot
/// collide with its own pre-crash ids. `execute` fails only when the
/// overall `deadline` passes with no node reachable and responsive.
#[derive(Debug)]
pub struct NodeClient {
    /// Failover set, in preference order; `current` indexes it.
    addrs: Vec<String>,
    current: usize,
    conn: Option<(TcpStream, FrameDecoder)>,
    ever_connected: bool,
    client: ClientId,
    next_request: u64,
    try_timeout: Duration,
    rng: Rng,
}

/// Wall-clock microseconds: the monotonic base new request ids start
/// from, so a client incarnation never reuses a predecessor's ids.
fn request_base() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(1, |d| d.as_micros() as u64)
}

impl NodeClient {
    /// Connects to a node's `client_addr`. `client` must be unique
    /// across every live client of the deployment.
    ///
    /// # Errors
    ///
    /// Any socket error from the initial connect (later errors heal
    /// inside [`execute`](Self::execute) instead).
    pub fn connect(addr: &str, client: u64) -> std::io::Result<Self> {
        let mut this = Self::connect_multi(vec![addr.to_string()], client);
        this.conn = Some(Self::dial(addr)?);
        this.ever_connected = true;
        Ok(this)
    }

    /// A client over a failover set: addresses are tried in order,
    /// rotating on connect failure, starting at `addrs[0]`. No
    /// connection is attempted until the first request needs one.
    ///
    /// # Panics
    ///
    /// When `addrs` is empty.
    pub fn connect_multi(addrs: Vec<String>, client: u64) -> Self {
        assert!(!addrs.is_empty(), "a client needs at least one address");
        let base = request_base();
        Self {
            addrs,
            current: 0,
            conn: None,
            ever_connected: false,
            client: ClientId::new(client),
            next_request: base,
            rng: Rng::seeded(base ^ client),
            try_timeout: DEFAULT_TRY_TIMEOUT,
        }
    }

    /// Reconfigures how long the *first* transmission waits for its
    /// response before the client retransmits (default 500ms); each
    /// further retransmission doubles the window. The overall `deadline`
    /// of [`execute`](Self::execute) still bounds the whole call.
    pub fn set_try_timeout(&mut self, try_timeout: Duration) {
        self.try_timeout = try_timeout.max(Duration::from_millis(1));
    }

    /// The failover set this client rotates through.
    pub fn addresses(&self) -> &[String] {
        &self.addrs
    }

    fn dial(addr: &str) -> std::io::Result<(TcpStream, FrameDecoder)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok((stream, FrameDecoder::new()))
    }

    /// Executes one command and blocks for its result, reconnecting and
    /// retransmitting as needed until `deadline`.
    ///
    /// # Errors
    ///
    /// `TimedOut` when the deadline passes without a response — the
    /// message names every address attempted.
    pub fn execute(
        &mut self,
        command: CommandId,
        payload: Vec<u8>,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        let req = Request::new(self.client, request, command, payload);
        self.transact(request, &encode_frame(&req.encode()), deadline)
    }

    /// Executes a read-only command against the target node's **local**
    /// store via [`STALE_READ`] — no ordering round-trip, served even
    /// by a degraded node. Returns the node's staleness bound (how long
    /// ago it last heard from the orderer) alongside the result.
    ///
    /// # Errors
    ///
    /// `TimedOut` past `deadline`, or `InvalidData` when the node
    /// refused (e.g. the wrapped command is not read-only).
    pub fn execute_stale(
        &mut self,
        command: CommandId,
        payload: &[u8],
        deadline: Duration,
    ) -> std::io::Result<(Duration, Vec<u8>)> {
        let body = self.execute(STALE_READ, encode_stale_read(command, payload), deadline)?;
        match decode_stale_response(&body) {
            Some(Ok((stale_ms, result))) => Ok((Duration::from_millis(stale_ms), result)),
            Some(Err(reason)) => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("stale read refused: {reason}"),
            )),
            None => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "malformed stale-read response",
            )),
        }
    }

    /// The send → await → (reconnect, retransmit) loop shared by every
    /// request shape.
    fn transact(
        &mut self,
        request: RequestId,
        frame: &[u8],
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        let give_up = Instant::now() + deadline;
        let mut sends = 0u64;
        let mut backoff = DIAL_BACKOFF_MIN;
        let mut try_window = self.try_timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if Instant::now() >= give_up {
                return Err(self.deadline_error(deadline));
            }
            // Establish (or re-establish) a connection, rotating through
            // the failover set on refusal.
            if self.conn.is_none() {
                match Self::dial(&self.addrs[self.current]) {
                    Ok(conn) => {
                        self.conn = Some(conn);
                        if self.ever_connected {
                            global().counter(counters::CLIENT_RECONNECTS).inc();
                        }
                        self.ever_connected = true;
                        backoff = DIAL_BACKOFF_MIN;
                    }
                    Err(_) => {
                        if self.addrs.len() > 1 {
                            self.current = (self.current + 1) % self.addrs.len();
                            global().counter(counters::CLIENT_FAILOVERS).inc();
                        }
                        let remaining = give_up.saturating_duration_since(Instant::now());
                        std::thread::sleep(self.rng.jittered(backoff).min(remaining));
                        backoff = (backoff * 2).min(DIAL_BACKOFF_MAX);
                        continue;
                    }
                }
            }
            let (stream, decoder) = self.conn.as_mut().expect("connection established above");
            // (Re)transmit under the unchanged request id: server-side
            // dedup keeps duplicate copies from executing twice.
            if stream.write_all(frame).is_err() {
                self.conn = None;
                continue;
            }
            if sends > 0 {
                global().counter(counters::REQUESTS_RETRANSMITTED).inc();
            }
            sends += 1;
            // Await the response until the per-try deadline; then fall
            // through to retransmit (same connection if it held) with a
            // doubled window, so retries decongest instead of piling on.
            let try_up = (Instant::now() + try_window).min(give_up);
            try_window = (try_window * 2).min(TRY_TIMEOUT_MAX);
            let mut broken = false;
            'read: while !broken {
                loop {
                    match decoder.next() {
                        Ok(Some(body)) => {
                            if let Some((for_request, result)) = decode_response(&body) {
                                if for_request == request {
                                    return Ok(result);
                                }
                                // A response to an older (timed-out)
                                // request: ignore and keep reading.
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            broken = true;
                            continue 'read;
                        }
                    }
                }
                if Instant::now() >= try_up {
                    break;
                }
                match stream.read(&mut buf) {
                    Ok(0) => broken = true,
                    Ok(n) => decoder.push(&buf[..n]),
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::TimedOut
                            || e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => broken = true,
                }
            }
            if broken {
                self.conn = None;
            }
        }
    }

    fn deadline_error(&self, deadline: Duration) -> std::io::Error {
        std::io::Error::new(
            ErrorKind::TimedOut,
            format!(
                "no response within {:?} (tried {})",
                deadline,
                self.addrs.join(", ")
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_messages_round_trip() {
        let cases = vec![
            RelayMsg::Subscribe { from_seq: 17 },
            RelayMsg::Batch {
                seq: 3,
                trace: None,
                commands: vec![Bytes::from_static(b"abc"), Bytes::new()],
            },
            RelayMsg::Batch {
                seq: 9,
                trace: None,
                commands: Vec::new(),
            },
            RelayMsg::Trimmed { first_retained: 44 },
            RelayMsg::Future { next_seq: 45 },
            RelayMsg::Submit {
                command: vec![1, 2, 3],
            },
        ];
        for msg in cases {
            assert_eq!(
                RelayMsg::decode(&msg.encode()),
                Some(msg.clone()),
                "{msg:?}"
            );
        }
    }

    #[test]
    fn malformed_relay_bodies_decode_to_none() {
        assert_eq!(RelayMsg::decode(&[]), None);
        assert_eq!(RelayMsg::decode(&[9]), None);
        let mut truncated = RelayMsg::Subscribe { from_seq: 1 }.encode();
        truncated.pop();
        assert_eq!(RelayMsg::decode(&truncated), None);
        let mut padded = RelayMsg::Trimmed { first_retained: 2 }.encode();
        padded.push(0);
        assert_eq!(RelayMsg::decode(&padded), None);
        let mut torn_batch = RelayMsg::Batch {
            seq: 1,
            trace: None,
            commands: vec![Bytes::from_static(b"xy")],
        }
        .encode();
        torn_batch.truncate(torn_batch.len() - 1);
        assert_eq!(RelayMsg::decode(&torn_batch), None);
        // An unknown traced-flag byte is malformed, not an empty batch.
        let mut bad_flag = RelayMsg::Batch {
            seq: 1,
            trace: None,
            commands: Vec::new(),
        }
        .encode();
        bad_flag[9] = 7;
        assert_eq!(RelayMsg::decode(&bad_flag), None);
    }

    #[test]
    fn batch_envelope_carries_and_restores_the_origin_stamp() {
        // The cross-process trace propagation rides in the relay batch:
        // the orderer's prefix ages must survive the wire byte-exact.
        let prefix = ChainPrefix {
            submitted_age_ns: 1_234_567,
            submit_to_ordered_ns: 42_000,
            ordered_to_appended_ns: 9_999,
        };
        let msg = RelayMsg::Batch {
            seq: 88,
            trace: Some(prefix),
            commands: vec![Bytes::from_static(b"cmd"), Bytes::from_static(b"")],
        };
        let decoded = RelayMsg::decode(&msg.encode()).expect("decode");
        let RelayMsg::Batch {
            seq,
            trace,
            commands,
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert_eq!(seq, 88);
        assert_eq!(trace, Some(prefix));
        assert_eq!(commands.len(), 2);
        // A truncated stamp is malformed, not silently un-traced.
        let mut torn = msg.encode();
        torn.truncate(1 + 8 + 1 + 16); // tag | seq | flag | 2 of 3 ages
        assert_eq!(RelayMsg::decode(&torn), None);
    }

    #[test]
    fn stale_read_payloads_round_trip() {
        let body = encode_stale_read(CommandId::new(0), b"key");
        assert_eq!(
            decode_stale_read(&body),
            Some((CommandId::new(0), b"key".as_slice()))
        );
        assert_eq!(decode_stale_read(&[1, 2]), None);

        let ok: Result<(u64, Vec<u8>), String> = Ok((250, b"value".to_vec()));
        assert_eq!(decode_stale_response(&encode_stale_response(&ok)), Some(ok));
        let err: Result<(u64, Vec<u8>), String> = Err("not a read".into());
        assert_eq!(
            decode_stale_response(&encode_stale_response(&err)),
            Some(err)
        );
        assert_eq!(decode_stale_response(&[7]), None);
        assert_eq!(decode_stale_response(&[0, 1]), None);
    }

    #[test]
    fn request_ids_are_monotonic_across_client_incarnations() {
        // Two clients born in sequence with the same client id must not
        // overlap id ranges: ids seed from the wall clock and only grow.
        let a = NodeClient::connect_multi(vec!["127.0.0.1:1".into()], 7);
        std::thread::sleep(Duration::from_millis(2));
        let b = NodeClient::connect_multi(vec!["127.0.0.1:1".into()], 7);
        assert!(b.next_request > a.next_request);
        assert_eq!(a.addresses(), ["127.0.0.1:1".to_string()]);
    }

    #[test]
    fn unreachable_target_times_out_with_attempted_addresses() {
        let mut client =
            NodeClient::connect_multi(vec!["127.0.0.1:9".into(), "127.0.0.1:10".into()], 3);
        client.set_try_timeout(Duration::from_millis(20));
        let err = client
            .execute(CommandId::new(0), Vec::new(), Duration::from_millis(120))
            .expect_err("nothing listens on discard ports");
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(
            msg.contains("127.0.0.1:9") && msg.contains("127.0.0.1:10"),
            "error must list every attempted address: {msg}"
        );
    }

    #[test]
    fn responses_round_trip() {
        let body = encode_response(RequestId::new(7), b"result");
        assert_eq!(
            decode_response(&body),
            Some((RequestId::new(7), b"result".to_vec()))
        );
        assert_eq!(decode_response(&[1, 2]), None);
    }
}
