//! Wire formats owned by the deployment layer: the decided-batch
//! relay/submit plane (mesh channel 2) and the client ↔ node protocol.
//!
//! Both planes reuse the `psmr-net` frame envelope
//! ([`psmr_net::frame`]); this module only defines what goes *inside*
//! the frames. Everything is little-endian fixed-width integers with
//! `u32` length prefixes, like [`psmr_net::codec`].

use bytes::Bytes;
use psmr_common::envelope::Request;
use psmr_common::ids::{ClientId, CommandId, RequestId};
use psmr_common::trace::ChainPrefix;
use psmr_net::frame::{encode_frame, FrameDecoder};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The relay/submit plane: how a non-orderer node receives the decided
/// stream and forwards client submissions to the orderer (node 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayMsg {
    /// Follower → orderer: stream me decided batches from `from_seq`.
    /// Idempotent; re-sent on gaps and after silence.
    Subscribe {
        /// First sequence number the follower still needs.
        from_seq: u64,
    },
    /// Orderer → follower: one decided batch of ordered commands.
    Batch {
        /// Stream sequence number (contiguous from 1).
        seq: u64,
        /// The orderer's trace-chain prefix for this batch (ages of its
        /// `Submitted`/`Ordered`/`WalAppended` stamps), present when the
        /// sequence is sampled and the prefix is complete. The follower
        /// re-anchors it with `TraceRecorder::adopt_prefix` so its own
        /// report spans the full cross-process chain.
        trace: Option<ChainPrefix>,
        /// The batch's commands (encoded [`Request`]s).
        commands: Vec<Bytes>,
    },
    /// Orderer → follower: the retained log no longer reaches back to
    /// the requested seq — state-transfer first, then re-subscribe.
    Trimmed {
        /// Oldest sequence number still retained.
        first_retained: u64,
    },
    /// Orderer → follower: the requested seq has not been decided yet.
    Future {
        /// Sequence number the next decided batch will carry.
        next_seq: u64,
    },
    /// Follower → orderer: order this client command (encoded
    /// [`Request`] bytes, submitted verbatim).
    Submit {
        /// The marshalled request.
        command: Vec<u8>,
    },
}

impl RelayMsg {
    /// Encodes the message as a channel-2 frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RelayMsg::Subscribe { from_seq } => {
                out.push(0);
                out.extend_from_slice(&from_seq.to_le_bytes());
            }
            RelayMsg::Batch {
                seq,
                trace,
                commands,
            } => {
                out.push(1);
                out.extend_from_slice(&seq.to_le_bytes());
                match trace {
                    Some(prefix) => {
                        out.push(1);
                        out.extend_from_slice(&prefix.submitted_age_ns.to_le_bytes());
                        out.extend_from_slice(&prefix.submit_to_ordered_ns.to_le_bytes());
                        out.extend_from_slice(&prefix.ordered_to_appended_ns.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&(commands.len() as u32).to_le_bytes());
                for command in commands {
                    out.extend_from_slice(&(command.len() as u32).to_le_bytes());
                    out.extend_from_slice(command);
                }
            }
            RelayMsg::Trimmed { first_retained } => {
                out.push(2);
                out.extend_from_slice(&first_retained.to_le_bytes());
            }
            RelayMsg::Future { next_seq } => {
                out.push(3);
                out.extend_from_slice(&next_seq.to_le_bytes());
            }
            RelayMsg::Submit { command } => {
                out.push(4);
                out.extend_from_slice(&(command.len() as u32).to_le_bytes());
                out.extend_from_slice(command);
            }
        }
        out
    }

    /// Decodes a channel-2 frame body; `None` on anything malformed.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let tag = *bytes.first()?;
        let rest = &bytes[1..];
        let u64_at = |at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?))
        };
        let msg = match tag {
            0 => RelayMsg::Subscribe {
                from_seq: u64_at(0)?,
            },
            1 => {
                let seq = u64_at(0)?;
                let trace = match *rest.get(8)? {
                    0 => None,
                    1 => Some(ChainPrefix {
                        submitted_age_ns: u64_at(9)?,
                        submit_to_ordered_ns: u64_at(17)?,
                        ordered_to_appended_ns: u64_at(25)?,
                    }),
                    _ => return None,
                };
                let mut at = if trace.is_some() { 33 } else { 9 };
                let count = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let mut commands = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let len = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                    at += 4;
                    commands.push(Bytes::copy_from_slice(rest.get(at..at + len)?));
                    at += len;
                }
                if at != rest.len() {
                    return None;
                }
                return Some(RelayMsg::Batch {
                    seq,
                    trace,
                    commands,
                });
            }
            2 => RelayMsg::Trimmed {
                first_retained: u64_at(0)?,
            },
            3 => RelayMsg::Future {
                next_seq: u64_at(0)?,
            },
            4 => {
                let len = u32::from_le_bytes(rest.get(0..4)?.try_into().ok()?) as usize;
                let command = rest.get(4..4 + len)?.to_vec();
                if 4 + len != rest.len() {
                    return None;
                }
                return Some(RelayMsg::Submit { command });
            }
            _ => return None,
        };
        // Fixed-width variants must consume the body exactly.
        if rest.len() != 8 {
            return None;
        }
        Some(msg)
    }
}

/// Encodes one client-plane response frame body: `request u64 | payload`.
pub fn encode_response(request: RequestId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&request.as_raw().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a client-plane response frame body.
pub fn decode_response(bytes: &[u8]) -> Option<(RequestId, Vec<u8>)> {
    let request = u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?);
    Some((RequestId::new(request), bytes[8..].to_vec()))
}

/// A blocking client of one node's client listener.
///
/// Requests travel as framed [`Request`] envelopes; the node responds
/// with a framed `request id | result` body once the command has been
/// ordered and executed locally. One outstanding request at a time (the
/// closed-loop shape every test client uses).
#[derive(Debug)]
pub struct NodeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    client: ClientId,
    next_request: u64,
}

impl NodeClient {
    /// Connects to a node's `client_addr`. `client` must be unique
    /// across every live client of the deployment.
    ///
    /// # Errors
    ///
    /// Any socket error from the connect.
    pub fn connect(addr: &str, client: u64) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            client: ClientId::new(client),
            next_request: 1,
        })
    }

    /// Executes one command and blocks for its result.
    ///
    /// # Errors
    ///
    /// Socket errors, a poisoned frame stream, or `TimedOut` when no
    /// response arrives within `deadline`.
    pub fn execute(
        &mut self,
        command: CommandId,
        payload: Vec<u8>,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        let request = RequestId::new(self.next_request);
        self.next_request += 1;
        let req = Request::new(self.client, request, command, payload);
        self.stream.write_all(&encode_frame(&req.encode()))?;
        let give_up = Instant::now() + deadline;
        let mut buf = [0u8; 16 * 1024];
        loop {
            // Drain every complete frame already buffered.
            loop {
                match self.decoder.next() {
                    Ok(Some(body)) => {
                        if let Some((for_request, result)) = decode_response(&body) {
                            if for_request == request {
                                return Ok(result);
                            }
                            // A response to an older (timed-out) request:
                            // ignore and keep reading.
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(std::io::Error::new(
                            ErrorKind::InvalidData,
                            format!("response stream poisoned: {e}"),
                        ))
                    }
                }
            }
            if Instant::now() >= give_up {
                return Err(ErrorKind::TimedOut.into());
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_messages_round_trip() {
        let cases = vec![
            RelayMsg::Subscribe { from_seq: 17 },
            RelayMsg::Batch {
                seq: 3,
                trace: None,
                commands: vec![Bytes::from_static(b"abc"), Bytes::new()],
            },
            RelayMsg::Batch {
                seq: 9,
                trace: None,
                commands: Vec::new(),
            },
            RelayMsg::Trimmed { first_retained: 44 },
            RelayMsg::Future { next_seq: 45 },
            RelayMsg::Submit {
                command: vec![1, 2, 3],
            },
        ];
        for msg in cases {
            assert_eq!(
                RelayMsg::decode(&msg.encode()),
                Some(msg.clone()),
                "{msg:?}"
            );
        }
    }

    #[test]
    fn malformed_relay_bodies_decode_to_none() {
        assert_eq!(RelayMsg::decode(&[]), None);
        assert_eq!(RelayMsg::decode(&[9]), None);
        let mut truncated = RelayMsg::Subscribe { from_seq: 1 }.encode();
        truncated.pop();
        assert_eq!(RelayMsg::decode(&truncated), None);
        let mut padded = RelayMsg::Trimmed { first_retained: 2 }.encode();
        padded.push(0);
        assert_eq!(RelayMsg::decode(&padded), None);
        let mut torn_batch = RelayMsg::Batch {
            seq: 1,
            trace: None,
            commands: vec![Bytes::from_static(b"xy")],
        }
        .encode();
        torn_batch.truncate(torn_batch.len() - 1);
        assert_eq!(RelayMsg::decode(&torn_batch), None);
        // An unknown traced-flag byte is malformed, not an empty batch.
        let mut bad_flag = RelayMsg::Batch {
            seq: 1,
            trace: None,
            commands: Vec::new(),
        }
        .encode();
        bad_flag[9] = 7;
        assert_eq!(RelayMsg::decode(&bad_flag), None);
    }

    #[test]
    fn batch_envelope_carries_and_restores_the_origin_stamp() {
        // The cross-process trace propagation rides in the relay batch:
        // the orderer's prefix ages must survive the wire byte-exact.
        let prefix = ChainPrefix {
            submitted_age_ns: 1_234_567,
            submit_to_ordered_ns: 42_000,
            ordered_to_appended_ns: 9_999,
        };
        let msg = RelayMsg::Batch {
            seq: 88,
            trace: Some(prefix),
            commands: vec![Bytes::from_static(b"cmd"), Bytes::from_static(b"")],
        };
        let decoded = RelayMsg::decode(&msg.encode()).expect("decode");
        let RelayMsg::Batch {
            seq,
            trace,
            commands,
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert_eq!(seq, 88);
        assert_eq!(trace, Some(prefix));
        assert_eq!(commands.len(), 2);
        // A truncated stamp is malformed, not silently un-traced.
        let mut torn = msg.encode();
        torn.truncate(1 + 8 + 1 + 16); // tag | seq | flag | 2 of 3 ages
        assert_eq!(RelayMsg::decode(&torn), None);
    }

    #[test]
    fn responses_round_trip() {
        let body = encode_response(RequestId::new(7), b"result");
        assert_eq!(
            decode_response(&body),
            Some((RequestId::new(7), b"result".to_vec()))
        );
        assert_eq!(decode_response(&[1, 2]), None);
    }
}
