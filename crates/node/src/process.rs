//! One OS process of a multi-process deployment.
//!
//! [`run_node`] assembles everything a `psmr-node` process hosts, from
//! the cluster config and this process's id:
//!
//! * the [`TcpMesh`] endpoint plus two [`Bridge`]s — channel 0 carries
//!   paxos traffic, channel 1 the state-transfer protocol — so the
//!   consensus and recovery code run unmodified over real sockets;
//! * on node 0 (the orderer): the paxos group — coordinator, WAL, and
//!   acceptor 0 — spawned with [`PaxosGroup::spawn_hosted`], the
//!   decided-batch **relay server** (mesh channel 2), and the periodic
//!   checkpoint driver;
//! * on every other node: a [`RemoteAcceptor`] (acceptor `me` of the
//!   group) and the relay **follower** that streams decided batches
//!   from node 0, re-subscribing on gaps and falling back to TCP state
//!   transfer when the orderer has trimmed past its position;
//! * on every node: the kvstore replica executing the decided stream,
//!   its checkpoint/durable stores, a [`StateTransferServer`] serving
//!   peers, and the client listener.
//!
//! Every replica executes the same single ordered stream, so all nodes
//! converge on the same store state; a node answers exactly the clients
//! connected to *it* (command provenance rides in the ordered
//! [`Request`] envelope).

use crate::admin::{self, AdminHub};
use crate::logger;
use crate::wire::{
    decode_stale_read, encode_response, encode_stale_response, NodeClient, RelayMsg, STALE_READ,
};
use bytes::Bytes;
use parking_lot::Mutex;
use psmr_common::envelope::Request;
use psmr_common::export::JsonlSnapshotter;
use psmr_common::ids::{ClientId, CommandId, GroupId, RequestId};
use psmr_common::metrics::{counters, global as metrics_global};
use psmr_common::trace::{global as trace_global, ChainPrefix, Stage};
use psmr_common::SystemConfig;
use psmr_core::service::Service;
use psmr_kvstore::KvService;
use psmr_net::codec::{decode_paxos, decode_transfer, encode_paxos, encode_transfer};
use psmr_net::frame::encode_frame;
use psmr_net::{Bridge, ClusterConfig, TcpMesh};
use psmr_netsim::{LiveNet, NodeId};
use psmr_paxos::runtime::{
    coordinator_node, GroupHandle, Pacing, PaxosGroup, RemoteAcceptor, SubscribeError, WalMode,
};
use psmr_paxos::NetMsg;
use psmr_recovery::{
    fetch_latest, AutoCheckpointer, Checkpoint, CheckpointStore, DurableStore, Snapshot,
    StateTransferServer, StreamCut, TransferMsg, TransferSource, CHECKPOINT,
};
use psmr_wal::{Wal, WalOptions};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client id the orderer's periodic checkpoint driver stamps on the
/// CHECKPOINT commands it submits (never registered by a connection, so
/// driver checkpoints produce no response traffic).
const DRIVER_CLIENT: u64 = u64::MAX;

/// Transfer-plane node id a fetching node registers under (servers sit
/// at `NodeId(proc)`, fetchers at `NodeId(FETCHER_BASE + proc)`).
const FETCHER_BASE: u64 = 100;

/// Durable snapshots each node keeps on disk.
const DISK_RETAIN: usize = 2;

/// How often the metrics flight recorder appends a snapshot.
const METRICS_SNAPSHOT_PERIOD: Duration = Duration::from_millis(250);

/// Sequences the orderer keeps exported trace prefixes around for (the
/// relay forwarders of lagging followers may ask for old batches).
const PREFIX_RETAIN: u64 = 2048;

/// Exported trace prefixes, keyed by stream sequence: the node-0
/// executor deposits each sampled batch's [`ChainPrefix`] (with its
/// export instant) *before* releasing the trace slot, so the relay
/// forwarders can attach it to the wire envelope even after the local
/// lifecycle folded. Forwarders re-age `submitted_age_ns` by the time
/// the prefix sat in the cache.
type PrefixCache = Arc<Mutex<HashMap<u64, (ChainPrefix, Instant)>>>;

/// Tunables of one node process (CLI flags of `psmr-node`).
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Keys `0..keys` pre-loaded into every replica (value = key), the
    /// `KvService::with_keys` initial state all nodes must share.
    pub keys: u64,
    /// Interval of node 0's periodic CHECKPOINT submissions (`None` =
    /// checkpoints only when a client submits one explicitly).
    pub checkpoint_interval: Option<Duration>,
    /// Lifecycle-trace sampling: every `trace_sample`-th stream sequence
    /// is stamped (0 disables tracing).
    pub trace_sample: u64,
    /// How long a follower may go without hearing from the orderer
    /// before its admin `status` reports `degraded`. Must comfortably
    /// exceed `checkpoint_interval` — on an otherwise idle cluster the
    /// periodic CHECKPOINT batches are the heartbeat this bound
    /// measures against.
    pub degraded_after: Duration,
}

impl Default for NodeOptions {
    fn default() -> Self {
        Self {
            keys: 8,
            checkpoint_interval: Some(Duration::from_millis(200)),
            trace_sample: 32,
            degraded_after: Duration::from_secs(3),
        }
    }
}

/// Everything a running node process must keep alive. Dropping it tears
/// the node down (the binaries never do; deployments stop nodes with
/// signals).
pub struct RunningNode {
    mesh: TcpMesh,
    _paxos_bridge: Bridge,
    _xfer_bridge: Bridge,
    _xfer_server: StateTransferServer,
    _group: Option<PaxosGroup>,
    _racceptor: Option<RemoteAcceptor>,
    _driver: Option<AutoCheckpointer>,
    _metrics_recorder: JsonlSnapshotter,
}

impl RunningNode {
    /// Parks the calling thread forever — the binary's tail.
    pub fn park(&self) -> ! {
        loop {
            std::thread::park();
        }
    }

    /// The node's mesh endpoint (tests shut it down explicitly).
    pub fn mesh(&self) -> &TcpMesh {
        &self.mesh
    }
}

/// Per-client retransmission state: the newest executed request id and
/// its cached response. Built purely from the ordered stream, so every
/// replica holds the identical table.
type DedupTable = HashMap<u64, (u64, Vec<u8>)>;

/// The replica state one executor thread owns.
struct Core {
    me: usize,
    service: Arc<KvService>,
    store: Arc<CheckpointStore>,
    durable: DurableStore,
    clients: Clients,
    /// Present on node 0 only; used to trim the stream at checkpoints.
    handle: Option<GroupHandle>,
    /// Position of the checkpoint this incarnation restored from:
    /// commands at or before it are already reflected in the restored
    /// snapshot and must be skipped on replay.
    resume: Option<StreamCut>,
    /// Highest stream sequence this replica has applied — the admin
    /// `status` endpoint's `executed_seq` watermark.
    executed: Arc<AtomicU64>,
    /// Server-side exactly-once: a retransmitted request (same
    /// `(client, request)` id pushed into the stream again by a
    /// reconnecting [`NodeClient`]) is answered from the cached
    /// response instead of executing twice. Rides inside checkpoints
    /// (see [`encode_node_snapshot`]) so restored replicas keep
    /// recognizing duplicates of pre-cut originals.
    dedup: DedupTable,
}

type Clients = Arc<Mutex<HashMap<u64, Arc<Mutex<TcpStream>>>>>;

impl Core {
    fn execute_batch(&mut self, seq: u64, commands: &[Bytes]) {
        // Lifecycle stamps land only where a slot is live: on node 0 the
        // embedded group claimed it at Submitted; on followers the
        // ingest loop claimed it by adopting the wire-carried prefix.
        let rec = trace_global();
        rec.stamp(0, seq, Stage::Delivered);
        rec.stamp(0, seq, Stage::ExecStart);
        let mut applied = 0u64;
        for (offset, raw) in commands.iter().enumerate() {
            if let Some(cut) = self.resume {
                if seq < cut.seq || (seq == cut.seq && offset <= cut.offset) {
                    continue;
                }
                self.resume = None;
            }
            let Ok(req) = Request::decode(raw) else {
                continue; // foreign bytes in the stream: skip, deterministically
            };
            if req.command == CHECKPOINT {
                self.take_checkpoint(seq, offset, &req);
            } else {
                let client_raw = req.client.as_raw();
                let request_raw = req.request.as_raw();
                if client_raw != DRIVER_CLIENT {
                    match self.dedup.get(&client_raw) {
                        Some(&(last, ref cached)) if request_raw == last => {
                            // A retransmitted copy of the newest command
                            // from this client: re-answer from the cache,
                            // never re-execute.
                            metrics_global().counter(counters::REQUESTS_DEDUPED).inc();
                            let cached = cached.clone();
                            self.respond(req.client, req.request, &cached);
                            continue;
                        }
                        Some(&(last, _)) if request_raw < last => {
                            // An even older straggler (its client has
                            // already moved on): drop, deterministically.
                            metrics_global().counter(counters::REQUESTS_DEDUPED).inc();
                            continue;
                        }
                        _ => {}
                    }
                }
                let result = self.service.execute(req.command, &req.payload);
                if client_raw != DRIVER_CLIENT {
                    self.dedup.insert(client_raw, (request_raw, result.clone()));
                }
                self.respond(req.client, req.request, &result);
            }
            applied += 1;
        }
        rec.stamp(0, seq, Stage::Executed);
        rec.stamp(0, seq, Stage::Released);
        if applied > 0 {
            metrics_global()
                .counter(counters::COMMANDS_EXECUTED)
                .add(applied);
        }
        self.executed.store(seq, Ordering::Relaxed);
    }

    /// Snapshots the replica at `(seq, offset)` — every node executes
    /// this at the same stream position, so the installed checkpoints
    /// are byte-identical deployment-wide. Node 0 additionally trims the
    /// ordered stream (and WAL) it no longer needs for catch-up.
    fn take_checkpoint(&mut self, seq: u64, offset: usize, req: &Request) {
        let cut = StreamCut {
            group: GroupId::new(0),
            seq,
            offset,
        };
        let snapshot = encode_node_snapshot(&self.dedup, &self.service.snapshot());
        let id = self.store.latest_id() + 1;
        self.store.install(cut, id, snapshot.clone());
        let checkpoint = Checkpoint { id, cut, snapshot };
        if self.durable.persist(&checkpoint, 0, &[]).is_ok() {
            let _ = self.durable.retain_newest(DISK_RETAIN);
        }
        if let Some(handle) = &self.handle {
            handle.trim_below(seq);
        }
        // Ack client-submitted checkpoints once the trim is done (the
        // driver's sentinel client has no connection; nothing is sent).
        self.respond(req.client, req.request, &id.to_le_bytes());
    }

    fn respond(&self, client: ClientId, request: RequestId, result: &[u8]) {
        let conn = self.clients.lock().get(&client.as_raw()).cloned();
        if let Some(conn) = conn {
            let frame = encode_frame(&encode_response(request, result));
            if conn.lock().write_all(&frame).is_err() {
                self.clients.lock().remove(&client.as_raw());
            }
        }
    }
}

/// Wraps the service snapshot into the node-layer checkpoint image:
/// `count u32 | (client u64, request u64, len u32, response)* | service
/// bytes`. The dedup table must travel with the snapshot — a replica
/// restored at cut C skips every pre-cut command, and without the table
/// a retransmitted duplicate of a pre-cut original would execute again
/// (diverging from replicas that saw the original). Entries are sorted
/// so the image stays byte-identical deployment-wide.
fn encode_node_snapshot(dedup: &DedupTable, service: &[u8]) -> Vec<u8> {
    let mut entries: Vec<(&u64, &(u64, Vec<u8>))> = dedup.iter().collect();
    entries.sort_unstable_by_key(|(client, _)| **client);
    let mut out = Vec::with_capacity(4 + service.len());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (client, (request, response)) in entries {
        out.extend_from_slice(&client.to_le_bytes());
        out.extend_from_slice(&request.to_le_bytes());
        out.extend_from_slice(&(response.len() as u32).to_le_bytes());
        out.extend_from_slice(response);
    }
    out.extend_from_slice(service);
    out
}

/// Splits a node-layer checkpoint image back into the dedup table and
/// the service snapshot bytes; `None` on malformed bytes.
fn decode_node_snapshot(bytes: &[u8]) -> Option<(DedupTable, &[u8])> {
    let count = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
    let mut at = 4;
    let mut dedup = DedupTable::with_capacity(count.min(4096));
    for _ in 0..count {
        let client = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
        let request = u64::from_le_bytes(bytes.get(at + 8..at + 16)?.try_into().ok()?);
        let len = u32::from_le_bytes(bytes.get(at + 16..at + 20)?.try_into().ok()?) as usize;
        at += 20;
        let response = bytes.get(at..at + len)?.to_vec();
        at += len;
        dedup.insert(client, (request, response));
    }
    Some((dedup, bytes.get(at..)?))
}

/// Wall-clock milliseconds — the freshness timestamps behind the
/// degraded-mode bound and the stale-read tag.
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Assembles and starts one node process. Returns once every component
/// is running; the caller keeps the [`RunningNode`] alive (binaries
/// [`RunningNode::park`]).
///
/// # Errors
///
/// A human-readable reason when a socket cannot bind, a data directory
/// cannot be created, or local recovery state cannot be read.
pub fn run_node(
    cluster: &ClusterConfig,
    me: usize,
    opts: &NodeOptions,
) -> Result<RunningNode, String> {
    let n = cluster.len();
    if me >= n {
        return Err(format!("node id {me} out of range: cluster has {n} nodes"));
    }
    let spec = cluster.nodes[me].clone();
    std::fs::create_dir_all(&spec.data_dir)
        .map_err(|e| format!("create {}: {e}", spec.data_dir.display()))?;
    logger::init(me, &spec.data_dir).map_err(|e| format!("open flight recorder: {e}"))?;
    trace_global().set_sample(opts.trace_sample);
    let metrics_recorder = JsonlSnapshotter::spawn(
        metrics_global(),
        spec.data_dir.join(format!("node{me}_metrics.jsonl")),
        METRICS_SNAPSHOT_PERIOD,
    )
    .map_err(|e| format!("open metrics recorder: {e}"))?;

    let mesh = TcpMesh::spawn(me, cluster).map_err(|e| format!("bind mesh {}: {e}", spec.addr))?;

    // Paxos plane (mesh channel 0). Node layout: coordinator of group 0
    // on node 0, acceptor i on node i.
    let paxos_net: LiveNet<NetMsg> = LiveNet::new();
    let paxos_bridge = Bridge::splice(
        &paxos_net,
        &mesh,
        0,
        Arc::new(move |node: NodeId| {
            let raw = node.as_raw();
            if node == coordinator_node(0) {
                Some(0)
            } else if (1..=n as u64).contains(&raw) {
                Some((raw - 1) as usize)
            } else {
                None
            }
        }),
        Arc::new(|msg: &NetMsg| encode_paxos(msg)),
        Arc::new(|bytes: &[u8]| decode_paxos(bytes)),
    );

    // Transfer plane (mesh channel 1). Servers at NodeId(proc),
    // fetchers at NodeId(FETCHER_BASE + proc).
    let xfer_net: LiveNet<TransferMsg> = LiveNet::new();
    let xfer_bridge = Bridge::splice(
        &xfer_net,
        &mesh,
        1,
        Arc::new(move |node: NodeId| {
            let raw = node.as_raw();
            if raw < n as u64 {
                Some(raw as usize)
            } else if (FETCHER_BASE..FETCHER_BASE + n as u64).contains(&raw) {
                Some((raw - FETCHER_BASE) as usize)
            } else {
                None
            }
        }),
        Arc::new(|msg: &TransferMsg| encode_transfer(msg)),
        Arc::new(|bytes: &[u8]| decode_transfer(bytes)),
    );

    // Local replica state: restore the newest durable snapshot if one
    // survived, otherwise start from the shared pre-loaded image.
    let service = Arc::new(KvService::with_keys(opts.keys));
    let store = Arc::new(CheckpointStore::new());
    let durable = DurableStore::open(spec.data_dir.join("snap"))
        .map_err(|e| format!("open snapshot dir: {e}"))?;
    let mut resume = None;
    let mut restored_dedup = DedupTable::new();
    if let Some(d) = durable.load_latest() {
        let (dedup, service_bytes) = decode_node_snapshot(&d.checkpoint.snapshot)
            .ok_or_else(|| "malformed node snapshot image".to_string())?;
        service
            .restore(service_bytes)
            .map_err(|e| format!("restore durable snapshot: {e}"))?;
        restored_dedup = dedup;
        store.install(
            d.checkpoint.cut,
            d.checkpoint.id,
            d.checkpoint.snapshot.clone(),
        );
        resume = Some(d.checkpoint.cut);
        logger::info(
            me,
            &format!(
                "restored durable checkpoint {} at seq {}",
                d.checkpoint.id, d.checkpoint.cut.seq
            ),
        );
    }

    let xfer_server = StateTransferServer::spawn(
        xfer_net.clone(),
        NodeId::new(me as u64),
        Arc::new(StoreSource(Arc::clone(&store))),
        4096,
    );

    let clients: Clients = Arc::new(Mutex::new(HashMap::new()));
    let executed = Arc::new(AtomicU64::new(0));
    // When this node last heard from the orderer (unix ms). Seeded to
    // "now" so a booting node is not instantly degraded; on node 0 the
    // executor refreshes it per batch, on followers the ingest loop
    // refreshes it on every relay signal.
    let last_ordered = Arc::new(AtomicU64::new(unix_ms()));
    let mut cfg = SystemConfig::new(1);
    cfg.acceptors(n);

    let mut group = None;
    let mut racceptor = None;
    let mut driver = None;
    let mut admin_handle = None;
    let submit: Arc<dyn Fn(Vec<u8>) + Send + Sync>;

    if me == 0 {
        let wal = Wal::open(spec.data_dir.join("wal"), WalOptions::default())
            .map_err(|e| format!("open wal: {e}"))?;
        let g = PaxosGroup::spawn_hosted(
            0,
            &cfg,
            paxos_net.clone(),
            Pacing::Batched,
            WalMode::Inline(Arc::new(wal)),
            &[0],
        );
        let handle = g.handle();
        let from = resume.map_or(1, |cut: StreamCut| cut.seq);
        let rx = match handle.subscribe_from(from) {
            Ok(rx) => rx,
            // A WAL trimmed past the durable cut cannot happen (trims
            // follow checkpoints), but fail soft: resume at the edge.
            Err(SubscribeError::Trimmed { first_retained }) => handle
                .subscribe_from(first_retained)
                .map_err(|e| format!("subscribe: {e}"))?,
            Err(SubscribeError::Future { next_seq }) => handle
                .subscribe_from(next_seq)
                .map_err(|e| format!("subscribe: {e}"))?,
        };
        handle.start();

        let mut core = Core {
            me,
            service: Arc::clone(&service),
            store: Arc::clone(&store),
            durable,
            clients: Arc::clone(&clients),
            handle: Some(handle.clone()),
            resume,
            executed: Arc::clone(&executed),
            dedup: restored_dedup,
        };
        let prefixes: PrefixCache = Arc::new(Mutex::new(HashMap::new()));
        let exec_prefixes = Arc::clone(&prefixes);
        let exec_last_ordered = Arc::clone(&last_ordered);
        std::thread::Builder::new()
            .name("node-exec".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    // Export the trace prefix before executing: the
                    // Released stamp below frees the slot, and the relay
                    // forwarders still need the prefix afterwards.
                    if let Some(p) = trace_global().chain_prefix(0, batch.seq, Instant::now()) {
                        let mut cache = exec_prefixes.lock();
                        cache.insert(batch.seq, (p, Instant::now()));
                        if cache.len() as u64 > PREFIX_RETAIN {
                            let floor = batch.seq.saturating_sub(PREFIX_RETAIN);
                            cache.retain(|&s, _| s > floor);
                        }
                    }
                    core.execute_batch(batch.seq, &batch.commands);
                    exec_last_ordered.store(unix_ms(), Ordering::Relaxed);
                }
            })
            .map_err(|e| format!("spawn executor: {e}"))?;

        relay_server(mesh.clone(), handle.clone(), prefixes);
        admin_handle = Some(handle.clone());

        if let Some(interval) = opts.checkpoint_interval {
            let driver_handle = handle.clone();
            driver = Some(AutoCheckpointer::spawn(interval, move || {
                // next_seq is monotonic across incarnations (WAL-backed),
                // so driver request ids never repeat after a restart.
                let request = driver_handle.next_seq();
                let req = Request::new(
                    ClientId::new(DRIVER_CLIENT),
                    RequestId::new(request),
                    CHECKPOINT,
                    Vec::new(),
                );
                driver_handle.submit(Bytes::from(req.encode()));
            }));
        }

        let submit_handle = handle;
        submit = Arc::new(move |command: Vec<u8>| {
            submit_handle.submit(Bytes::from(command));
        });
        group = Some(g);
    } else {
        racceptor = Some(RemoteAcceptor::spawn(0, me, paxos_net.clone()));
        let core = Core {
            me,
            service: Arc::clone(&service),
            store: Arc::clone(&store),
            durable,
            clients: Arc::clone(&clients),
            handle: None,
            resume,
            executed: Arc::clone(&executed),
            dedup: restored_dedup,
        };
        follower_ingest(
            mesh.clone(),
            xfer_net.clone(),
            core,
            n,
            Arc::clone(&last_ordered),
        );

        let submit_mesh = mesh.clone();
        let from = me as u64;
        submit = Arc::new(move |command: Vec<u8>| {
            submit_mesh.send(0, 2, from, 0, &RelayMsg::Submit { command }.encode());
        });
    }

    // Stale reads answer from the local replica without an ordering
    // round-trip: read-only commands only, tagged with how long ago
    // this node last heard from the orderer.
    let stale_service = Arc::clone(&service);
    let stale_last = Arc::clone(&last_ordered);
    let stale: StaleFn = Arc::new(move |command, payload| {
        if command != psmr_kvstore::READ {
            return Err(format!(
                "command {} is not a read-only command",
                command.as_raw()
            ));
        }
        let stale_ms = unix_ms().saturating_sub(stale_last.load(Ordering::Relaxed));
        Ok((stale_ms, stale_service.execute(command, payload)))
    });

    client_listener(me, &spec.client_addr, clients, submit, stale)?;
    logger::info(me, &format!("serving clients on {}", spec.client_addr));

    if !spec.admin_addr.is_empty() {
        admin::serve(
            &spec.admin_addr,
            AdminHub {
                me,
                mesh: mesh.clone(),
                handle: admin_handle,
                executed,
                store,
                last_ordered,
                degraded_after: opts.degraded_after,
            },
        )?;
        logger::info(me, &format!("serving admin on {}", spec.admin_addr));
    }

    Ok(RunningNode {
        mesh,
        _paxos_bridge: paxos_bridge,
        _xfer_bridge: xfer_bridge,
        _xfer_server: xfer_server,
        _group: group,
        _racceptor: racceptor,
        _driver: driver,
        _metrics_recorder: metrics_recorder,
    })
}

/// A node's checkpoint store as a state-transfer source (this
/// deployment routes with a fixed C-G: epoch 0, empty table).
struct StoreSource(Arc<CheckpointStore>);

impl TransferSource for StoreSource {
    fn latest(&self) -> Option<Checkpoint> {
        self.0.latest()
    }

    fn epoch_table(&self) -> (u64, Vec<u8>) {
        (0, Vec::new())
    }
}

/// Reads the exported trace prefix for `seq`, preferring the executor's
/// cache (re-aged by its cache residency) and falling back to the live
/// trace slot for batches the executor has not reached yet.
fn prefix_for(prefixes: &PrefixCache, seq: u64) -> Option<ChainPrefix> {
    if let Some((mut p, exported_at)) = prefixes.lock().get(&seq).copied() {
        p.submitted_age_ns += exported_at.elapsed().as_nanos() as u64;
        return Some(p);
    }
    trace_global().chain_prefix(0, seq, Instant::now())
}

/// Node 0's relay server: answers `Subscribe` with a forwarder thread
/// streaming decided batches to the follower, and orders forwarded
/// `Submit`s. A newer `Subscribe` from the same follower supersedes the
/// old forwarder (generation counter); the superseded thread drops its
/// stream subscription, which the group prunes.
fn relay_server(mesh: TcpMesh, handle: GroupHandle, prefixes: PrefixCache) {
    let rx = mesh.subscribe(2);
    std::thread::Builder::new()
        .name("relay-server".into())
        .spawn(move || {
            let generations: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
            while let Ok(inbound) = rx.recv() {
                match RelayMsg::decode(&inbound.body) {
                    Some(RelayMsg::Subscribe { from_seq }) => {
                        let peer = inbound.from;
                        let generation = {
                            let mut g = generations.lock();
                            let slot = g.entry(peer).or_insert(0);
                            *slot += 1;
                            *slot
                        };
                        match handle.subscribe_from(from_seq) {
                            Ok(batches) => {
                                let mesh = mesh.clone();
                                let generations = Arc::clone(&generations);
                                let prefixes = Arc::clone(&prefixes);
                                std::thread::Builder::new()
                                    .name(format!("relay-fwd-{peer}"))
                                    .spawn(move || loop {
                                        let stale =
                                            || generations.lock().get(&peer) != Some(&generation);
                                        match batches.recv_timeout(Duration::from_millis(100)) {
                                            Ok(batch) => {
                                                if stale() {
                                                    return;
                                                }
                                                let msg = RelayMsg::Batch {
                                                    seq: batch.seq,
                                                    trace: prefix_for(&prefixes, batch.seq),
                                                    commands: (*batch.commands).clone(),
                                                };
                                                if !mesh.send(
                                                    peer as usize,
                                                    2,
                                                    0,
                                                    peer,
                                                    &msg.encode(),
                                                ) {
                                                    return;
                                                }
                                            }
                                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                                if stale() {
                                                    return;
                                                }
                                            }
                                            Err(_) => return,
                                        }
                                    })
                                    .expect("spawn relay forwarder");
                            }
                            Err(SubscribeError::Trimmed { first_retained }) => {
                                mesh.send(
                                    peer as usize,
                                    2,
                                    0,
                                    peer,
                                    &RelayMsg::Trimmed { first_retained }.encode(),
                                );
                            }
                            Err(SubscribeError::Future { next_seq }) => {
                                mesh.send(
                                    peer as usize,
                                    2,
                                    0,
                                    peer,
                                    &RelayMsg::Future { next_seq }.encode(),
                                );
                            }
                        }
                    }
                    Some(RelayMsg::Submit { command }) => {
                        handle.submit(Bytes::from(command));
                    }
                    _ => {}
                }
            }
        })
        .expect("spawn relay server");
}

/// A follower's ingest loop: subscribes to the orderer's decided
/// stream, executes batches in contiguous order, re-subscribes on gaps
/// or silence, and falls back to TCP state transfer when the orderer
/// trimmed past its position.
fn follower_ingest(
    mesh: TcpMesh,
    xfer_net: LiveNet<TransferMsg>,
    mut core: Core,
    n: usize,
    last_ordered: Arc<AtomicU64>,
) {
    let rx = mesh.subscribe(2);
    std::thread::Builder::new()
        .name("node-ingest".into())
        .spawn(move || {
            let me = core.me;
            let peers: Vec<NodeId> = (0..n)
                .filter(|&p| p != me)
                .map(|p| NodeId::new(p as u64))
                .collect();
            let subscribe = |from_seq: u64| {
                mesh.send(
                    0,
                    2,
                    me as u64,
                    0,
                    &RelayMsg::Subscribe { from_seq }.encode(),
                );
            };
            let mut next = core.resume.map_or(1, |cut| cut.seq);
            subscribe(next);
            let mut last_signal = Instant::now();
            loop {
                match rx.recv_timeout(Duration::from_millis(500)) {
                    Ok(inbound) => {
                        // Any relay-plane traffic proves the orderer
                        // link is alive — the freshness the degraded
                        // bound and the stale-read tag measure against.
                        last_ordered.store(unix_ms(), Ordering::Relaxed);
                        match RelayMsg::decode(&inbound.body) {
                        Some(RelayMsg::Batch {
                            seq,
                            trace,
                            commands,
                        }) => {
                            if seq < next {
                                continue; // replayed duplicate
                            }
                            if seq > next {
                                // A gap: frames were lost (resend-buffer
                                // overflow) — rewind the subscription.
                                if last_signal.elapsed() > Duration::from_millis(200) {
                                    subscribe(next);
                                    last_signal = Instant::now();
                                }
                                continue;
                            }
                            if let Some(prefix) = trace {
                                // Re-anchor the wire-carried chain prefix
                                // locally so execute_batch's stamps extend
                                // it into a cross-process chain.
                                let now = Instant::now();
                                let rec = trace_global();
                                rec.adopt_prefix(0, seq, &prefix, now);
                                rec.stamp_at(0, seq, Stage::Delivered, now);
                            }
                            core.execute_batch(seq, &commands);
                            next += 1;
                            last_signal = Instant::now();
                        }
                        Some(RelayMsg::Trimmed { first_retained }) => {
                            logger::info(
                                me,
                                &format!(
                                    "stream trimmed to {first_retained}, need {next}: fetching state over TCP"
                                ),
                            );
                            match fetch_latest(
                                &xfer_net,
                                NodeId::new(FETCHER_BASE + me as u64),
                                &peers,
                                Duration::from_secs(2),
                            ) {
                                Ok(fetched) => {
                                    let ckpt = fetched.checkpoint;
                                    let restored = decode_node_snapshot(&ckpt.snapshot).map(
                                        |(dedup, service_bytes)| {
                                            (dedup, core.service.restore(service_bytes))
                                        },
                                    );
                                    if let Some((dedup, Ok(()))) = restored {
                                        core.dedup = dedup;
                                        core.store.install(ckpt.cut, ckpt.id, ckpt.snapshot.clone());
                                        let _ = core.durable.persist(&ckpt, 0, &[]);
                                        let _ = core.durable.retain_newest(DISK_RETAIN);
                                        core.resume = Some(ckpt.cut);
                                        next = ckpt.cut.seq;
                                        logger::info(
                                            me,
                                            &format!(
                                                "state-transfer ok: checkpoint {} at seq {} from node {}",
                                                ckpt.id,
                                                ckpt.cut.seq,
                                                fetched.from.as_raw()
                                            ),
                                        );
                                    }
                                }
                                Err(e) => {
                                    logger::warn(me, &format!("state transfer failed ({e}), retrying"));
                                    std::thread::sleep(Duration::from_millis(300));
                                }
                            }
                            subscribe(next);
                            last_signal = Instant::now();
                        }
                        Some(RelayMsg::Future { next_seq }) => {
                            next = next_seq;
                            subscribe(next);
                            last_signal = Instant::now();
                        }
                        _ => {}
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        // Silence: the subscribe may have raced the relay
                        // server's startup, or our forwarder died with a
                        // node-0 restart. Idempotent to repeat.
                        if last_signal.elapsed() > Duration::from_secs(2) {
                            subscribe(next);
                            last_signal = Instant::now();
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn follower ingest");
}

/// Answers a stale read locally: `(staleness ms, result)` on success, a
/// refusal reason otherwise.
type StaleFn = Arc<dyn Fn(CommandId, &[u8]) -> Result<(u64, Vec<u8>), String> + Send + Sync>;

/// The client plane: accepts connections on `client_addr`, decodes
/// framed [`Request`]s, registers the connection under the request's
/// client id (the executor routes responses through the registry), and
/// hands the raw command to `submit` for ordering — except
/// [`STALE_READ`]s, which `stale` answers from the local replica
/// without an ordering round-trip.
fn client_listener(
    me: usize,
    client_addr: &str,
    clients: Clients,
    submit: Arc<dyn Fn(Vec<u8>) + Send + Sync>,
    stale: StaleFn,
) -> Result<(), String> {
    let listener =
        TcpListener::bind(client_addr).map_err(|e| format!("bind client {client_addr}: {e}"))?;
    std::thread::Builder::new()
        .name("client-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                let clients = Arc::clone(&clients);
                let submit = Arc::clone(&submit);
                let stale = Arc::clone(&stale);
                std::thread::Builder::new()
                    .name(format!("client-conn-{me}"))
                    .spawn(move || client_conn(stream, &clients, &submit, &stale))
                    .expect("spawn client connection");
            }
        })
        .map_err(|e| format!("spawn client accept: {e}"))?;
    Ok(())
}

fn client_conn(
    mut stream: TcpStream,
    clients: &Clients,
    submit: &Arc<dyn Fn(Vec<u8>) + Send + Sync>,
    stale: &StaleFn,
) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer));
    let mut decoder = psmr_net::FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut registered: Option<u64> = None;
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next() {
                        Ok(Some(body)) => {
                            let Ok(req) = Request::decode(&body) else {
                                continue;
                            };
                            if req.command == STALE_READ {
                                // Served from the local store, bypassing
                                // ordering: never blocks on a lost
                                // orderer link.
                                let outcome = match decode_stale_read(&req.payload) {
                                    Some((command, payload)) => stale(command, payload),
                                    None => Err("malformed stale-read payload".to_string()),
                                };
                                if outcome.is_ok() {
                                    metrics_global().counter(counters::STALE_READS_SERVED).inc();
                                }
                                let frame = encode_frame(&encode_response(
                                    req.request,
                                    &encode_stale_response(&outcome),
                                ));
                                if writer.lock().write_all(&frame).is_err() {
                                    break;
                                }
                                continue;
                            }
                            if registered != Some(req.client.as_raw()) {
                                clients
                                    .lock()
                                    .insert(req.client.as_raw(), Arc::clone(&writer));
                                registered = Some(req.client.as_raw());
                            }
                            submit(body);
                        }
                        Ok(None) => break,
                        Err(_) => return, // poisoned framing: drop the conn
                    }
                }
            }
        }
    }
    if let Some(client) = registered {
        clients.lock().remove(&client);
    }
}

/// Convenience for tests and the `psmr-client` binary: connect to a
/// node with retries (a booting deployment refuses connections until
/// its listener is up).
///
/// # Errors
///
/// The last connect error once `deadline` is exhausted.
pub fn connect_with_retry(
    addr: &str,
    client: u64,
    deadline: Duration,
) -> std::io::Result<NodeClient> {
    let give_up = Instant::now() + deadline;
    // Jittered so a swarm of booting clients does not hammer the
    // listener in lockstep.
    let mut rng = psmr_net::chaos::Rng::seeded(client ^ 0x5EED_C1E0);
    loop {
        match NodeClient::connect(addr, client) {
            Ok(conn) => return Ok(conn),
            Err(e) if Instant::now() >= give_up => return Err(e),
            Err(_) => std::thread::sleep(rng.jittered(Duration::from_millis(50))),
        }
    }
}

/// Issues CHECKPOINT through a client connection and blocks for the
/// ack — the deployment has snapshotted (and node 0 trimmed) once this
/// returns. Used by tests to force the state-transfer path before
/// restarting a wiped node.
///
/// # Errors
///
/// See [`NodeClient::execute`].
pub fn force_checkpoint(client: &mut NodeClient, deadline: Duration) -> std::io::Result<u64> {
    let ack = client.execute(CHECKPOINT, Vec::new(), deadline)?;
    Ok(ack
        .get(0..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .unwrap_or(0))
}

/// Wipes a node's data directory (the rejoin-after-loss scenario: the
/// restarted node must rebuild over TCP state transfer).
pub fn wipe_data_dir(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// One command id is reserved by the recovery layer; everything else is
/// service-defined. Re-exported so binaries need not depend on
/// `psmr-recovery` directly.
pub const CHECKPOINT_COMMAND: CommandId = CHECKPOINT;
