//! The per-node admin endpoint: a line-oriented diagnostic protocol
//! every `psmr-node` serves on its `admin_addr`.
//!
//! Protocol: the client writes one command per line; the server answers
//! with zero or more payload lines terminated by a line containing only
//! `.`. The connection stays open for further commands. Commands:
//!
//! * `metrics` — the [`psmr_common::export::expose_text`] dump of the
//!   process's global registry (peer-labeled mesh counters included);
//! * `metrics.json` — one [`psmr_common::export::snapshot_json_line`]
//!   object, the same shape the flight-recorder JSONL uses;
//! * `trace` — the node's [`TraceReport`] as `key value` lines
//!   (`traced`, `dropped`, `chain_sum_ns`, one `interval` line per
//!   [`psmr_common::trace::INTERVAL_NAMES`] entry). Scrapers divide
//!   `chain_sum_ns` by their own measured end-to-end latency to get
//!   the attributed percentage;
//! * `status` — role, incarnation, per-peer mesh connectivity and
//!   resend-buffer depth, per-group watermarks, and the last
//!   checkpoint cut;
//! * anything else — a single `err unknown command` line.

use psmr_common::export::{expose_text, snapshot_json_line};
use psmr_common::metrics::global as metrics_global;
use psmr_common::trace::{global as trace_global, TraceReport};
use psmr_net::TcpMesh;
use psmr_paxos::runtime::GroupHandle;
use psmr_recovery::CheckpointStore;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything the admin endpoint reports on, shared with the rest of
/// the node process.
pub struct AdminHub {
    /// This node's id.
    pub me: usize,
    /// The mesh endpoint (incarnation + per-peer link health).
    pub mesh: TcpMesh,
    /// Present on the orderer only: the group's watermarks.
    pub handle: Option<GroupHandle>,
    /// Highest stream sequence the local executor has applied.
    pub executed: Arc<AtomicU64>,
    /// The in-memory checkpoint store (last installed cut).
    pub store: Arc<CheckpointStore>,
}

/// Renders a [`TraceReport`] as the `trace` command's payload.
pub fn render_trace(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traced {}", report.traced);
    let _ = writeln!(out, "dropped {}", report.dropped);
    let _ = writeln!(out, "chain_sum_ns {}", report.chain_sum().as_nanos());
    for stat in &report.intervals {
        let _ = writeln!(
            out,
            "interval {} count={} mean_ns={} p50_ns={} p99_ns={} max_ns={}",
            stat.name,
            stat.count,
            stat.mean.as_nanos(),
            stat.p50.as_nanos(),
            stat.p99.as_nanos(),
            stat.max.as_nanos()
        );
    }
    out
}

/// Renders the `status` payload from the hub's current state.
fn render_status(hub: &AdminHub) -> String {
    let mut out = String::new();
    let role = if hub.handle.is_some() {
        "orderer"
    } else {
        "follower"
    };
    let _ = writeln!(out, "node {}", hub.me);
    let _ = writeln!(out, "role {role}");
    let _ = writeln!(out, "incarnation {}", hub.mesh.incarnation());
    for peer in hub.mesh.peer_status() {
        let _ = writeln!(
            out,
            "peer {} connected={} resend_depth={}",
            peer.peer, peer.connected, peer.resend_depth
        );
    }
    let executed = hub.executed.load(Ordering::Relaxed);
    match &hub.handle {
        Some(handle) => {
            let _ = writeln!(
                out,
                "group 0 durable_seq={} next_seq={} executed_seq={executed}",
                handle.durable_seq(),
                handle.next_seq()
            );
        }
        None => {
            // A follower's durability watermark is its newest installed
            // checkpoint; everything past it lives only in memory.
            let durable = hub.store.latest().map_or(0, |c| c.cut.seq);
            let _ = writeln!(out, "group 0 durable_seq={durable} executed_seq={executed}");
        }
    }
    match hub.store.latest() {
        Some(c) => {
            let _ = writeln!(
                out,
                "checkpoint id={} seq={} offset={}",
                c.id, c.cut.seq, c.cut.offset
            );
        }
        None => {
            let _ = writeln!(out, "checkpoint none");
        }
    }
    out
}

/// One command's full payload (without the terminating `.` line).
fn respond(hub: &AdminHub, command: &str) -> String {
    match command {
        "metrics" => expose_text(metrics_global()),
        "metrics.json" => {
            let mut line = snapshot_json_line(metrics_global());
            line.push('\n');
            line
        }
        "trace" => render_trace(&trace_global().report()),
        "status" => render_status(hub),
        _ => "err unknown command\n".to_string(),
    }
}

/// Serves one accepted admin connection until EOF or a write error.
fn serve_conn(hub: &AdminHub, stream: TcpStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let mut payload = respond(hub, command);
        if !payload.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str(".\n");
        if writer.write_all(payload.as_bytes()).is_err() {
            return;
        }
    }
}

/// Binds `addr` and serves the admin protocol from a background thread
/// (one further thread per accepted connection). Runs for the life of
/// the process.
///
/// # Errors
///
/// A human-readable reason when the address cannot be bound.
pub fn serve(addr: &str, hub: AdminHub) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind admin {addr}: {e}"))?;
    let me = hub.me;
    let hub = Arc::new(hub);
    std::thread::Builder::new()
        .name(format!("admin-{me}"))
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                let hub = Arc::clone(&hub);
                std::thread::Builder::new()
                    .name(format!("admin-conn-{me}"))
                    .spawn(move || serve_conn(&hub, stream))
                    .expect("spawn admin connection");
            }
        })
        .map_err(|e| format!("spawn admin listener: {e}"))?;
    Ok(())
}

/// Sends one admin `command` to `addr` and returns the payload (the
/// lines before the `.` terminator, newline-joined).
///
/// # Errors
///
/// Socket errors, or `TimedOut`/`UnexpectedEof` when no terminated
/// response arrives within `timeout`.
pub fn query(addr: &str, command: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut payload = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        if line.trim_end() == "." {
            return Ok(payload);
        }
        payload.push_str(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmr_common::trace::TraceRecorder;
    use psmr_net::{ClusterConfig, NodeSpec};

    fn free_addr() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind :0");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        addr
    }

    fn hub_for_test() -> (AdminHub, TcpMesh) {
        let node = |addr: String| NodeSpec {
            addr,
            client_addr: "127.0.0.1:0".into(),
            admin_addr: String::new(),
            data_dir: std::env::temp_dir().join("psmr-admin-test"),
        };
        let cluster = ClusterConfig {
            nodes: vec![node(free_addr()), node(free_addr())],
        };
        let mesh = TcpMesh::spawn(0, &cluster).expect("mesh");
        let hub = AdminHub {
            me: 0,
            mesh: mesh.clone(),
            handle: None,
            executed: Arc::new(AtomicU64::new(7)),
            store: Arc::new(CheckpointStore::new()),
        };
        (hub, mesh)
    }

    #[test]
    fn admin_endpoint_answers_every_command() {
        let (hub, mesh) = hub_for_test();
        let addr = free_addr();
        serve(&addr, hub).expect("serve");
        let timeout = Duration::from_secs(5);

        let metrics = query(&addr, "metrics", timeout).expect("metrics");
        assert!(metrics.contains("# counters"), "{metrics}");

        let json = query(&addr, "metrics.json", timeout).expect("metrics.json");
        assert!(json.trim().starts_with('{') && json.trim().ends_with('}'));
        assert!(json.contains("\"counters\":{"), "{json}");

        let trace = query(&addr, "trace", timeout).expect("trace");
        assert!(trace.contains("traced "), "{trace}");
        assert!(trace.contains("chain_sum_ns "), "{trace}");
        assert!(trace.contains("interval end_to_end "), "{trace}");

        let status = query(&addr, "status", timeout).expect("status");
        assert!(status.contains("node 0"), "{status}");
        assert!(status.contains("role follower"), "{status}");
        assert!(status.contains("incarnation "), "{status}");
        assert!(status.contains("peer 1 connected="), "{status}");
        assert!(status.contains("executed_seq=7"), "{status}");
        assert!(status.contains("checkpoint none"), "{status}");

        let err = query(&addr, "bogus", timeout).expect("bogus");
        assert_eq!(err.trim(), "err unknown command");
        mesh.shutdown();
    }

    #[test]
    fn trace_rendering_exposes_the_chain() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        let rendered = render_trace(&rec.report());
        assert!(rendered.starts_with("traced 0\n"), "{rendered}");
        for name in psmr_common::trace::INTERVAL_NAMES {
            assert!(rendered.contains(&format!("interval {name} ")), "{name}");
        }
    }
}
