//! The per-node admin endpoint: a line-oriented diagnostic protocol
//! every `psmr-node` serves on its `admin_addr`.
//!
//! Protocol: the client writes one command per line; the server answers
//! with zero or more payload lines terminated by a line containing only
//! `.`. The connection stays open for further commands. Commands:
//!
//! * `metrics` — the [`psmr_common::export::expose_text`] dump of the
//!   process's global registry (peer-labeled mesh counters included);
//! * `metrics.json` — one [`psmr_common::export::snapshot_json_line`]
//!   object, the same shape the flight-recorder JSONL uses;
//! * `trace` — the node's [`TraceReport`] as `key value` lines
//!   (`traced`, `dropped`, `chain_sum_ns`, one `interval` line per
//!   [`psmr_common::trace::INTERVAL_NAMES`] entry). Scrapers divide
//!   `chain_sum_ns` by their own measured end-to-end latency to get
//!   the attributed percentage;
//! * `status` — role, incarnation, health (`ok` or `degraded` with the
//!   orderer-link staleness), per-peer mesh connectivity and
//!   resend-buffer depth, per-group watermarks, and the last
//!   checkpoint cut;
//! * `chaos get` — the mesh's live fault-injection policy, one
//!   `peer N <grammar>` line per faulted link (`chaos none` if clean);
//! * `chaos set <peer> key=value...` — install a fault mix on one
//!   outbound link, e.g. `chaos set 1 drop=5 delay_ms=200
//!   jitter_ms=50 partition=out` (see [`psmr_net::LinkChaos`] for the
//!   grammar); answers `ok` or `err <reason>`;
//! * `chaos clear [peer]` — heal one link, or every link;
//! * anything else — a single `err unknown command` line.

use psmr_common::export::{expose_text, snapshot_json_line};
use psmr_common::metrics::global as metrics_global;
use psmr_common::trace::{global as trace_global, TraceReport};
use psmr_net::{LinkChaos, TcpMesh};
use psmr_paxos::runtime::GroupHandle;
use psmr_recovery::CheckpointStore;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything the admin endpoint reports on, shared with the rest of
/// the node process.
pub struct AdminHub {
    /// This node's id.
    pub me: usize,
    /// The mesh endpoint (incarnation + per-peer link health).
    pub mesh: TcpMesh,
    /// Present on the orderer only: the group's watermarks.
    pub handle: Option<GroupHandle>,
    /// Highest stream sequence the local executor has applied.
    pub executed: Arc<AtomicU64>,
    /// The in-memory checkpoint store (last installed cut).
    pub store: Arc<CheckpointStore>,
    /// When this node last heard from the orderer (unix ms).
    pub last_ordered: Arc<AtomicU64>,
    /// Orderer-link silence past this bound reports `degraded`.
    pub degraded_after: Duration,
}

impl AdminHub {
    /// The node's health verdict: `("ok" | "degraded", staleness ms)`.
    /// The orderer is its own ordering source and never degrades; a
    /// follower degrades when the orderer link has been silent past the
    /// configured bound (on an idle cluster, node 0's periodic
    /// CHECKPOINT batches are the heartbeat).
    pub fn health(&self) -> (&'static str, u64) {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let stale_ms = now.saturating_sub(self.last_ordered.load(Ordering::Relaxed));
        let degraded = self.handle.is_none() && stale_ms > self.degraded_after.as_millis() as u64;
        (if degraded { "degraded" } else { "ok" }, stale_ms)
    }
}

/// Renders a [`TraceReport`] as the `trace` command's payload.
pub fn render_trace(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traced {}", report.traced);
    let _ = writeln!(out, "dropped {}", report.dropped);
    let _ = writeln!(out, "chain_sum_ns {}", report.chain_sum().as_nanos());
    for stat in &report.intervals {
        let _ = writeln!(
            out,
            "interval {} count={} mean_ns={} p50_ns={} p99_ns={} max_ns={}",
            stat.name,
            stat.count,
            stat.mean.as_nanos(),
            stat.p50.as_nanos(),
            stat.p99.as_nanos(),
            stat.max.as_nanos()
        );
    }
    out
}

/// Renders the `status` payload from the hub's current state.
fn render_status(hub: &AdminHub) -> String {
    let mut out = String::new();
    let role = if hub.handle.is_some() {
        "orderer"
    } else {
        "follower"
    };
    let _ = writeln!(out, "node {}", hub.me);
    let _ = writeln!(out, "role {role}");
    let _ = writeln!(out, "incarnation {}", hub.mesh.incarnation());
    let (health, stale_ms) = hub.health();
    let _ = writeln!(out, "health {health} stale_ms={stale_ms}");
    for peer in hub.mesh.peer_status() {
        let _ = writeln!(
            out,
            "peer {} connected={} resend_depth={}",
            peer.peer, peer.connected, peer.resend_depth
        );
    }
    let executed = hub.executed.load(Ordering::Relaxed);
    match &hub.handle {
        Some(handle) => {
            let _ = writeln!(
                out,
                "group 0 durable_seq={} next_seq={} executed_seq={executed}",
                handle.durable_seq(),
                handle.next_seq()
            );
        }
        None => {
            // A follower's durability watermark is its newest installed
            // checkpoint; everything past it lives only in memory.
            let durable = hub.store.latest().map_or(0, |c| c.cut.seq);
            let _ = writeln!(out, "group 0 durable_seq={durable} executed_seq={executed}");
        }
    }
    match hub.store.latest() {
        Some(c) => {
            let _ = writeln!(
                out,
                "checkpoint id={} seq={} offset={}",
                c.id, c.cut.seq, c.cut.offset
            );
        }
        None => {
            let _ = writeln!(out, "checkpoint none");
        }
    }
    out
}

/// Handles the `chaos` verb family against the mesh's live policy.
fn respond_chaos(hub: &AdminHub, args: &[&str]) -> String {
    let chaos = hub.mesh.chaos();
    match args {
        ["get"] => {
            let links = chaos.snapshot();
            if links.is_empty() {
                return "chaos none\n".to_string();
            }
            let mut out = String::new();
            for (peer, link) in links {
                let _ = writeln!(out, "peer {peer} {link}");
            }
            out
        }
        ["set", peer, rest @ ..] => {
            let Ok(peer) = peer.parse::<usize>() else {
                return "err bad peer id\n".to_string();
            };
            match LinkChaos::parse_args(rest) {
                Ok(link) => {
                    chaos.set(peer, link);
                    "ok\n".to_string()
                }
                Err(reason) => format!("err {reason}\n"),
            }
        }
        ["clear"] => {
            chaos.clear();
            "ok\n".to_string()
        }
        ["clear", peer] => match peer.parse::<usize>() {
            Ok(peer) => {
                chaos.clear_peer(peer);
                "ok\n".to_string()
            }
            Err(_) => "err bad peer id\n".to_string(),
        },
        _ => "err usage: chaos get | chaos set <peer> key=value... | chaos clear [peer]\n"
            .to_string(),
    }
}

/// One command's full payload (without the terminating `.` line).
fn respond(hub: &AdminHub, command: &str) -> String {
    let words: Vec<&str> = command.split_whitespace().collect();
    match words.as_slice() {
        ["metrics"] => expose_text(metrics_global()),
        ["metrics.json"] => {
            let mut line = snapshot_json_line(metrics_global());
            line.push('\n');
            line
        }
        ["trace"] => render_trace(&trace_global().report()),
        ["status"] => render_status(hub),
        ["chaos", args @ ..] => respond_chaos(hub, args),
        _ => "err unknown command\n".to_string(),
    }
}

/// Serves one accepted admin connection until EOF or a write error.
fn serve_conn(hub: &AdminHub, stream: TcpStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let mut payload = respond(hub, command);
        if !payload.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str(".\n");
        if writer.write_all(payload.as_bytes()).is_err() {
            return;
        }
    }
}

/// Binds `addr` and serves the admin protocol from a background thread
/// (one further thread per accepted connection). Runs for the life of
/// the process.
///
/// # Errors
///
/// A human-readable reason when the address cannot be bound.
pub fn serve(addr: &str, hub: AdminHub) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind admin {addr}: {e}"))?;
    let me = hub.me;
    let hub = Arc::new(hub);
    std::thread::Builder::new()
        .name(format!("admin-{me}"))
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                let hub = Arc::clone(&hub);
                std::thread::Builder::new()
                    .name(format!("admin-conn-{me}"))
                    .spawn(move || serve_conn(&hub, stream))
                    .expect("spawn admin connection");
            }
        })
        .map_err(|e| format!("spawn admin listener: {e}"))?;
    Ok(())
}

/// Sends one admin `command` to `addr` and returns the payload (the
/// lines before the `.` terminator, newline-joined).
///
/// # Errors
///
/// Socket errors, or `TimedOut`/`UnexpectedEof` when no terminated
/// response arrives within `timeout`.
pub fn query(addr: &str, command: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut payload = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        if line.trim_end() == "." {
            return Ok(payload);
        }
        payload.push_str(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psmr_common::trace::TraceRecorder;
    use psmr_net::{ClusterConfig, NodeSpec};

    fn free_addr() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind :0");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        addr
    }

    fn hub_for_test() -> (AdminHub, TcpMesh) {
        let node = |addr: String| NodeSpec {
            addr,
            client_addr: "127.0.0.1:0".into(),
            admin_addr: String::new(),
            data_dir: std::env::temp_dir().join("psmr-admin-test"),
        };
        let cluster = ClusterConfig {
            nodes: vec![node(free_addr()), node(free_addr())],
        };
        let mesh = TcpMesh::spawn(0, &cluster).expect("mesh");
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let hub = AdminHub {
            me: 0,
            mesh: mesh.clone(),
            handle: None,
            executed: Arc::new(AtomicU64::new(7)),
            store: Arc::new(CheckpointStore::new()),
            last_ordered: Arc::new(AtomicU64::new(now)),
            degraded_after: Duration::from_secs(3),
        };
        (hub, mesh)
    }

    #[test]
    fn admin_endpoint_answers_every_command() {
        let (hub, mesh) = hub_for_test();
        let addr = free_addr();
        serve(&addr, hub).expect("serve");
        let timeout = Duration::from_secs(5);

        let metrics = query(&addr, "metrics", timeout).expect("metrics");
        assert!(metrics.contains("# counters"), "{metrics}");

        let json = query(&addr, "metrics.json", timeout).expect("metrics.json");
        assert!(json.trim().starts_with('{') && json.trim().ends_with('}'));
        assert!(json.contains("\"counters\":{"), "{json}");

        let trace = query(&addr, "trace", timeout).expect("trace");
        assert!(trace.contains("traced "), "{trace}");
        assert!(trace.contains("chain_sum_ns "), "{trace}");
        assert!(trace.contains("interval end_to_end "), "{trace}");

        let status = query(&addr, "status", timeout).expect("status");
        assert!(status.contains("node 0"), "{status}");
        assert!(status.contains("role follower"), "{status}");
        assert!(status.contains("incarnation "), "{status}");
        assert!(status.contains("health ok stale_ms="), "{status}");
        assert!(status.contains("peer 1 connected="), "{status}");
        assert!(status.contains("executed_seq=7"), "{status}");
        assert!(status.contains("checkpoint none"), "{status}");

        let err = query(&addr, "bogus", timeout).expect("bogus");
        assert_eq!(err.trim(), "err unknown command");
        mesh.shutdown();
    }

    #[test]
    fn chaos_verbs_drive_the_live_policy() {
        let (hub, mesh) = hub_for_test();
        let addr = free_addr();
        serve(&addr, hub).expect("serve");
        let timeout = Duration::from_secs(5);

        assert_eq!(
            query(&addr, "chaos get", timeout).expect("get").trim(),
            "chaos none"
        );
        assert_eq!(
            query(
                &addr,
                "chaos set 1 drop=5 delay_ms=200 jitter_ms=50",
                timeout
            )
            .expect("set")
            .trim(),
            "ok"
        );
        // The verb acted on the *live* mesh policy, not a copy.
        assert!(mesh.chaos().is_active());
        let get = query(&addr, "chaos get", timeout).expect("get");
        assert!(
            get.contains("peer 1") && get.contains("drop=5") && get.contains("delay_ms=200"),
            "{get}"
        );
        // Bad grammar is rejected without touching the policy.
        let err = query(&addr, "chaos set 1 drop=200", timeout).expect("bad set");
        assert!(err.starts_with("err "), "{err}");
        let err = query(&addr, "chaos set x drop=1", timeout).expect("bad peer");
        assert!(err.starts_with("err "), "{err}");
        assert_eq!(
            query(&addr, "chaos clear 1", timeout)
                .expect("clear")
                .trim(),
            "ok"
        );
        assert!(!mesh.chaos().is_active());
        assert_eq!(
            query(&addr, "chaos clear", timeout)
                .expect("clear all")
                .trim(),
            "ok"
        );
        mesh.shutdown();
    }

    #[test]
    fn degraded_health_reflects_orderer_silence() {
        let (hub, mesh) = hub_for_test();
        // Pretend the follower last heard from the orderer long ago.
        hub.last_ordered.store(1, Ordering::Relaxed);
        let (health, stale_ms) = hub.health();
        assert_eq!(health, "degraded");
        assert!(stale_ms > 3_000);
        assert!(render_status(&hub).contains("health degraded"));
        mesh.shutdown();
    }

    #[test]
    fn trace_rendering_exposes_the_chain() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        let rendered = render_trace(&rec.report());
        assert!(rendered.starts_with("traced 0\n"), "{rendered}");
        for name in psmr_common::trace::INTERVAL_NAMES {
            assert!(rendered.contains(&format!("interval {name} ")), "{name}");
        }
    }
}
