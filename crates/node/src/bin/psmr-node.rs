//! One node of a multi-process deployment.
//!
//! ```text
//! psmr-node --config cluster.toml --id 0 [--keys 8] [--checkpoint-ms 200] [--trace-sample 32] \
//!           [--degraded-after-ms 3000]
//! ```
//!
//! `--id` indexes the `[[node]]` sections of the config; node 0 hosts
//! the orderer. `--checkpoint-ms 0` disables the periodic checkpoint
//! driver (node 0 only; other nodes ignore the flag). `--trace-sample n`
//! stamps every `n`-th stream sequence with the lifecycle trace (0
//! disables tracing). `--degraded-after-ms` sets how long a follower may
//! go without hearing from the orderer before its admin `status`
//! reports `degraded` (keep it well above the checkpoint interval — on
//! an idle cluster the periodic checkpoints are the heartbeat).
//!
//! Panics in any thread are routed through the structured logger (so
//! they land in the node's flight recorder) and then exit the process
//! with a nonzero code — a wedged half-dead node never lingers.

use psmr_net::ClusterConfig;
use psmr_node::{logger, run_node, NodeOptions};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: psmr-node --config <cluster.toml> --id <n> [--keys <k>] [--checkpoint-ms <ms>] \
         [--trace-sample <n>] [--degraded-after-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = None;
    let mut id = None;
    let mut opts = NodeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--config" => config = Some(value),
            "--id" => id = value.parse::<usize>().ok(),
            "--keys" => opts.keys = value.parse().unwrap_or_else(|_| usage()),
            "--checkpoint-ms" => {
                let ms: u64 = value.parse().unwrap_or_else(|_| usage());
                opts.checkpoint_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--trace-sample" => opts.trace_sample = value.parse().unwrap_or_else(|_| usage()),
            "--degraded-after-ms" => {
                opts.degraded_after =
                    Duration::from_millis(value.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let (Some(config), Some(id)) = (config, id) else {
        usage();
    };
    logger::install_panic_hook(id);
    let cluster = match ClusterConfig::load(&config) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("psmr-node: {e}");
            std::process::exit(1);
        }
    };
    match run_node(&cluster, id, &opts) {
        Ok(node) => node.park(),
        Err(e) => {
            eprintln!("psmr-node[{id}]: {e}");
            std::process::exit(1);
        }
    }
}
