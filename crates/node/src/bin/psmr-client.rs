//! Minimal command-line client of a `psmr-node` deployment.
//!
//! ```text
//! psmr-client --addr 127.0.0.1:7501 --client 42 read 3
//! psmr-client --addr 127.0.0.1:7501 --client 42 update 3 999
//! psmr-client --addr 127.0.0.1:7501 --client 42 insert 100 1
//! psmr-client --addr 127.0.0.1:7501 --client 42 delete 100
//! psmr-client --addr 127.0.0.1:7501 --client 42 checkpoint
//! ```
//!
//! `--client` must be unique across concurrently connected clients.

use psmr_kvstore::{KvOp, KvResult};
use psmr_node::{connect_with_retry, force_checkpoint};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: psmr-client --addr <host:port> --client <id> \
         (read <key> | update <key> <value> | insert <key> <value> | delete <key> | checkpoint)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = None;
    let mut client = 1u64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--client" => {
                client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => rest.push(arg),
        }
    }
    let Some(addr) = addr else { usage() };
    let mut conn = match connect_with_retry(&addr, client, Duration::from_secs(5)) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("psmr-client: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let deadline = Duration::from_secs(10);
    let parse = |s: &String| s.parse::<u64>().unwrap_or_else(|_| usage());
    let op = match rest.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["read", _] => KvOp::Read {
            key: parse(&rest[1]),
        },
        ["update", _, _] => KvOp::Update {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["insert", _, _] => KvOp::Insert {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["delete", _] => KvOp::Delete {
            key: parse(&rest[1]),
        },
        ["checkpoint"] => match force_checkpoint(&mut conn, deadline) {
            Ok(id) => {
                println!("checkpoint {id}");
                return;
            }
            Err(e) => {
                eprintln!("psmr-client: {e}");
                std::process::exit(1);
            }
        },
        _ => usage(),
    };
    match conn.execute(op.command(), op.encode(), deadline) {
        Ok(result) => println!("{:?}", KvResult::decode(&result)),
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    }
}
