//! Minimal command-line client of a `psmr-node` deployment.
//!
//! ```text
//! psmr-client --addr 127.0.0.1:7501 --client 42 read 3
//! psmr-client --addr 127.0.0.1:7501 --client 42 update 3 999
//! psmr-client --addr 127.0.0.1:7501 --client 42 insert 100 1
//! psmr-client --addr 127.0.0.1:7501 --client 42 delete 100
//! psmr-client --addr 127.0.0.1:7501 --client 42 stale-read 3
//! psmr-client --addr 127.0.0.1:7501 --client 42 checkpoint
//! psmr-client --config cluster.toml --client 42 read 3
//! psmr-client ops --config cluster.toml
//! ```
//!
//! `--client` must be unique across concurrently connected clients.
//! `--config` replaces `--addr` with the whole deployment: the client
//! connects to the first reachable node and fails over across the
//! remaining `client_addr`s on socket errors or deadline pressure.
//! `stale-read` asks the contacted node to answer from its **local**
//! replica without ordering the request — the reply carries how stale
//! the replica's ordered stream is. `ops` is the operator's view: it
//! scrapes every node's admin endpoint from the cluster config and
//! prints one merged table (role, health, stream watermarks, durability
//! lag, mesh health, throughput).
//!
//! Every failure path exits nonzero with a single-line error (no
//! panics); unreachable-deployment errors list each address the client
//! tried.

use psmr_kvstore::{KvOp, KvResult};
use psmr_net::ClusterConfig;
use psmr_node::{connect_with_retry, force_checkpoint, ops, NodeClient};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: psmr-client (--addr <host:port> | --config <cluster.toml>) --client <id> \
         (read <key> | stale-read <key> | update <key> <value> | insert <key> <value> | \
         delete <key> | checkpoint)\n\
         \u{20}      psmr-client ops --config <cluster.toml> [--timeout-ms <ms>]"
    );
    std::process::exit(2);
}

/// Builds the failover client out of every node's `client_addr`.
fn connect_cluster(config: &str, client: u64) -> NodeClient {
    let cluster = match ClusterConfig::load(config) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    };
    let addrs: Vec<String> = cluster
        .nodes
        .iter()
        .map(|n| n.client_addr.clone())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        eprintln!("psmr-client: no node in {config} has a client_addr");
        std::process::exit(1);
    }
    NodeClient::connect_multi(addrs, client)
}

fn run_ops_command(mut args: impl Iterator<Item = String>) -> ! {
    let mut config = None;
    let mut timeout = Duration::from_secs(2);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--config" => config = Some(value),
            "--timeout-ms" => {
                timeout = Duration::from_millis(value.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let Some(config) = config else { usage() };
    let cluster = match ClusterConfig::load(&config) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    };
    match ops::run_ops(&cluster, timeout) {
        Ok(table) => {
            print!("{table}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut addr = None;
    let mut config = None;
    let mut client = 1u64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("ops") {
        run_ops_command(args.skip(1));
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--config" => config = Some(args.next().unwrap_or_else(|| usage())),
            "--client" => {
                client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => rest.push(arg),
        }
    }
    let mut conn = match (addr, config) {
        (Some(addr), None) => match connect_with_retry(&addr, client, Duration::from_secs(5)) {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("psmr-client: connect {addr}: {e}");
                std::process::exit(1);
            }
        },
        (None, Some(config)) => connect_cluster(&config, client),
        _ => usage(),
    };
    let deadline = Duration::from_secs(10);
    let parse = |s: &String| s.parse::<u64>().unwrap_or_else(|_| usage());
    let op = match rest.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["read", _] => KvOp::Read {
            key: parse(&rest[1]),
        },
        ["update", _, _] => KvOp::Update {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["insert", _, _] => KvOp::Insert {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["delete", _] => KvOp::Delete {
            key: parse(&rest[1]),
        },
        ["stale-read", _] => {
            let op = KvOp::Read {
                key: parse(&rest[1]),
            };
            match conn.execute_stale(op.command(), &op.encode(), deadline) {
                Ok((stale, result)) => {
                    println!(
                        "stale_ms={} {:?}",
                        stale.as_millis(),
                        KvResult::decode(&result)
                    );
                    return;
                }
                Err(e) => {
                    eprintln!("psmr-client: {e}");
                    std::process::exit(1);
                }
            }
        }
        ["checkpoint"] => match force_checkpoint(&mut conn, deadline) {
            Ok(id) => {
                println!("checkpoint {id}");
                return;
            }
            Err(e) => {
                eprintln!("psmr-client: {e}");
                std::process::exit(1);
            }
        },
        _ => usage(),
    };
    match conn.execute(op.command(), op.encode(), deadline) {
        Ok(result) => println!("{:?}", KvResult::decode(&result)),
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    }
}
