//! Minimal command-line client of a `psmr-node` deployment.
//!
//! ```text
//! psmr-client --addr 127.0.0.1:7501 --client 42 read 3
//! psmr-client --addr 127.0.0.1:7501 --client 42 update 3 999
//! psmr-client --addr 127.0.0.1:7501 --client 42 insert 100 1
//! psmr-client --addr 127.0.0.1:7501 --client 42 delete 100
//! psmr-client --addr 127.0.0.1:7501 --client 42 checkpoint
//! psmr-client ops --config cluster.toml
//! ```
//!
//! `--client` must be unique across concurrently connected clients.
//! `ops` is the operator's view: it scrapes every node's admin endpoint
//! from the cluster config and prints one merged table (role, stream
//! watermarks, durability lag, mesh health, throughput).

use psmr_kvstore::{KvOp, KvResult};
use psmr_net::ClusterConfig;
use psmr_node::{connect_with_retry, force_checkpoint, ops};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: psmr-client --addr <host:port> --client <id> \
         (read <key> | update <key> <value> | insert <key> <value> | delete <key> | checkpoint)\n\
         \u{20}      psmr-client ops --config <cluster.toml> [--timeout-ms <ms>]"
    );
    std::process::exit(2);
}

fn run_ops_command(mut args: impl Iterator<Item = String>) -> ! {
    let mut config = None;
    let mut timeout = Duration::from_secs(2);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--config" => config = Some(value),
            "--timeout-ms" => {
                timeout = Duration::from_millis(value.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let Some(config) = config else { usage() };
    let cluster = match ClusterConfig::load(&config) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    };
    match ops::run_ops(&cluster, timeout) {
        Ok(table) => {
            print!("{table}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut addr = None;
    let mut client = 1u64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("ops") {
        run_ops_command(args.skip(1));
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--client" => {
                client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => rest.push(arg),
        }
    }
    let Some(addr) = addr else { usage() };
    let mut conn = match connect_with_retry(&addr, client, Duration::from_secs(5)) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("psmr-client: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let deadline = Duration::from_secs(10);
    let parse = |s: &String| s.parse::<u64>().unwrap_or_else(|_| usage());
    let op = match rest.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["read", _] => KvOp::Read {
            key: parse(&rest[1]),
        },
        ["update", _, _] => KvOp::Update {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["insert", _, _] => KvOp::Insert {
            key: parse(&rest[1]),
            value: parse(&rest[2]),
        },
        ["delete", _] => KvOp::Delete {
            key: parse(&rest[1]),
        },
        ["checkpoint"] => match force_checkpoint(&mut conn, deadline) {
            Ok(id) => {
                println!("checkpoint {id}");
                return;
            }
            Err(e) => {
                eprintln!("psmr-client: {e}");
                std::process::exit(1);
            }
        },
        _ => usage(),
    };
    match conn.execute(op.command(), op.encode(), deadline) {
        Ok(result) => println!("{:?}", KvResult::decode(&result)),
        Err(e) => {
            eprintln!("psmr-client: {e}");
            std::process::exit(1);
        }
    }
}
