//! Leveled, timestamped structured logging for `psmr-node` processes.
//!
//! Every event goes two places:
//!
//! * **stderr**, as a human-readable line
//!   (`[<unix_ms>] psmr-node[<id>] LEVEL <msg>`) — what an operator
//!   tailing the process sees, and what the multi-process tests grep;
//! * the node's **flight recorder** — `flight.jsonl` in the node's data
//!   dir, one self-contained JSON object per event
//!   (`{"ts_ms":..,"level":"..","node":..,"msg":".."}`), hand-formatted
//!   like [`psmr_common::export`] because the workspace carries no JSON
//!   dependency. CI uploads these files from every node after a run,
//!   pass or fail, so post-mortems never depend on reproducing a
//!   failure.
//!
//! [`init`] is idempotent per process (first data dir wins — a process
//! hosts one node). Before `init`, events still reach stderr, so library
//! code logs unconditionally. [`install_panic_hook`] routes panics from
//! *any* thread through the same two sinks and then exits the process
//! with a nonzero code: a panicked background thread (executor, ingest,
//! relay) otherwise leaves a wedged node that hangs deployment tests
//! instead of failing them.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Exit code a panicking node process dies with once the hook from
/// [`install_panic_hook`] has logged the panic.
pub const PANIC_EXIT_CODE: i32 = 101;

/// Event severity. Rendered uppercase in the human line, lowercase in
/// the JSONL event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Normal lifecycle progress.
    Info,
    /// Degraded but self-healing (retries, fallbacks).
    Warn,
    /// A failure the process cannot recover from by itself.
    Error,
}

impl Level {
    fn upper(self) -> &'static str {
        match self {
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    fn lower(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

struct Sink {
    me: usize,
    file: Mutex<File>,
}

static SINK: OnceLock<Sink> = OnceLock::new();

/// Milliseconds since the unix epoch — the `ts_ms` every event carries.
fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_millis()
}

/// Escapes a message for embedding in a JSON string.
fn json_escape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Opens (appends to) `data_dir/flight.jsonl` and binds the flight
/// recorder to node `me`. Idempotent: only the first call takes effect.
///
/// # Errors
///
/// The error of opening the flight-recorder file for append.
pub fn init(me: usize, data_dir: &Path) -> std::io::Result<()> {
    if SINK.get().is_some() {
        return Ok(());
    }
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(data_dir.join("flight.jsonl"))?;
    let _ = SINK.set(Sink {
        me,
        file: Mutex::new(file),
    });
    Ok(())
}

/// Logs one event at `level` for node `me` (stderr always; the flight
/// recorder too once [`init`] ran).
pub fn log(level: Level, me: usize, msg: &str) {
    let ts = now_ms();
    eprintln!("[{ts}] psmr-node[{me}] {} {msg}", level.upper());
    if let Some(sink) = SINK.get() {
        let line = format!(
            "{{\"ts_ms\":{ts},\"level\":\"{}\",\"node\":{},\"msg\":\"{}\"}}\n",
            level.lower(),
            sink.me,
            json_escape(msg)
        );
        let mut file = sink.file.lock();
        let _ = file.write_all(line.as_bytes()).and_then(|()| file.flush());
    }
}

/// [`log`] at [`Level::Info`].
pub fn info(me: usize, msg: &str) {
    log(Level::Info, me, msg);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(me: usize, msg: &str) {
    log(Level::Warn, me, msg);
}

/// [`log`] at [`Level::Error`].
pub fn error(me: usize, msg: &str) {
    log(Level::Error, me, msg);
}

/// Routes panics from any thread through the structured logger, then
/// exits with [`PANIC_EXIT_CODE`]. Installed by the `psmr-node` binary
/// (not by [`crate::process::run_node`]: in-process tests must keep the
/// harness's unwinding hook).
pub fn install_panic_hook(me: usize) {
    std::panic::set_hook(Box::new(move |info| {
        let thread = std::thread::current();
        let msg = format!(
            "panic in thread '{}': {info}",
            thread.name().unwrap_or("<unnamed>")
        );
        error(me, &msg.replace('\n', " "));
        std::process::exit(PANIC_EXIT_CODE);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_bytes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn init_binds_the_flight_recorder_once() {
        let dir = std::env::temp_dir().join(format!("psmr-logger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        init(3, &dir).expect("init");
        init(4, &dir).expect("re-init is a no-op");
        info(3, "hello \"flight\" recorder");
        warn(3, "fallback engaged");
        let body = std::fs::read_to_string(dir.join("flight.jsonl")).expect("read");
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 2, "both events recorded: {body}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ts_ms\":"), "{line}");
            assert!(line.contains("\"node\":3"), "first init wins: {line}");
        }
        assert!(body.contains("\\\"flight\\\""), "quotes escaped: {body}");
        assert!(body.contains("\"level\":\"warn\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
