//! Socket-level battery: a real 3-process deployment on loopback TCP.
//!
//! Boots three `psmr-node` OS processes from a generated cluster
//! config, drives closed-loop kvstore client sessions against every
//! node, SIGKILLs a follower mid-load, restarts it with a **wiped data
//! directory** (forcing rejoin via TCP state transfer), and checks the
//! combined per-key history — spanning both incarnations — for
//! linearizability with the same checker the in-process tests use.
//!
//! Mid-run, the battery also exercises the observability plane: every
//! node's admin endpoint is scraped for peer-labeled mesh counters and
//! a status snapshot, the followers' cross-process trace chains are
//! checked against the measured client end-to-end latency, and the
//! restarted follower's flight-recorder JSONL must show its
//! state-transfer catch-up.
//!
//! The `chaos_`-prefixed tests are the **fault battery**: they drive
//! the same closed-loop workload while the admin `chaos` verb injects
//! one-way partitions, frame corruption, and jittered delay into the
//! live mesh — plus an orderer SIGKILL + restart under failover clients
//! — asserting the injected faults leave their full counter trail and
//! that every history spanning a fault epoch stays linearizable.
//!
//! Node logs land in `$TMPDIR/psmr-smoke-logs/` so CI can attach them
//! as artifacts when the test fails.

use psmr_core::linear::{OpRecord, RegisterOp};
use psmr_kvstore::{KvOp, KvResult};
use psmr_net::{ClusterConfig, NodeSpec};
use psmr_node::{admin, connect_with_retry, force_checkpoint, ops, NodeClient};
use psmr_sim::check::{check_linearizable, KEYS};
use std::fs::File;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills every spawned node on drop, so a panicking test never leaks
/// processes.
struct Deployment {
    children: Vec<Option<Child>>,
    cluster: ClusterConfig,
    logs: PathBuf,
}

impl Drop for Deployment {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Deployment {
    fn spawn_node(&mut self, id: usize, log_name: &str) {
        self.spawn_node_with(id, log_name, &[]);
    }

    fn spawn_node_with(&mut self, id: usize, log_name: &str, extra: &[&str]) {
        let log = File::create(self.logs.join(log_name)).expect("create node log");
        let err = log.try_clone().expect("clone log handle");
        let config = self.logs.join("cluster.toml");
        let child = Command::new(env!("CARGO_BIN_EXE_psmr-node"))
            .args(["--config", config.to_str().unwrap()])
            .args(["--id", &id.to_string()])
            .args(["--keys", &KEYS.to_string()])
            .args(["--checkpoint-ms", "200"])
            .args(["--trace-sample", "1"])
            .args(extra)
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(err))
            .spawn()
            .expect("spawn psmr-node");
        self.children[id] = Some(child);
    }

    fn kill_node(&mut self, id: usize) {
        if let Some(mut child) = self.children[id].take() {
            child.kill().expect("SIGKILL node");
            child.wait().expect("reap node");
        }
    }

    fn client_addr(&self, id: usize) -> &str {
        &self.cluster.nodes[id].client_addr
    }

    fn admin_addr(&self, id: usize) -> &str {
        &self.cluster.nodes[id].admin_addr
    }
}

/// Serializes the deployment tests: two 3-process clusters fighting for
/// the same cores skew the latency measurements the trace-attribution
/// check depends on.
fn deployment_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn free_ports(n: usize) -> Vec<u16> {
    // Hold all listeners at once so the ports are pairwise distinct.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind a free port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

fn deployment(tag: &str) -> Deployment {
    let logs = std::env::temp_dir()
        .join("psmr-smoke-logs")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&logs);
    std::fs::create_dir_all(&logs).expect("create log dir");
    let ports = free_ports(9);
    let nodes = (0..3)
        .map(|i| NodeSpec {
            addr: format!("127.0.0.1:{}", ports[i]),
            client_addr: format!("127.0.0.1:{}", ports[3 + i]),
            admin_addr: format!("127.0.0.1:{}", ports[6 + i]),
            data_dir: logs.join(format!("data-n{i}")),
        })
        .collect();
    let cluster = ClusterConfig { nodes };
    std::fs::write(logs.join("cluster.toml"), cluster.to_toml()).expect("write cluster config");
    Deployment {
        children: vec![None, None, None],
        cluster,
        logs,
    }
}

/// Blocks until the node answers a read through the ordered stream —
/// which implies its whole pipeline (mesh, relay/subscription, catch-up
/// including any state transfer, executor, client plane) is live.
fn await_serving(addr: &str, probe_client: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut conn) = connect_with_retry(addr, probe_client, Duration::from_secs(5)) {
            let op = KvOp::Read { key: 0 };
            if let Ok(result) = conn.execute(op.command(), op.encode(), Duration::from_secs(5)) {
                if matches!(KvResult::decode(&result), KvResult::Value(_)) {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "node at {addr} never came up serving"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One closed-loop session over the TCP client plane — the same op mix,
/// value numbering, and record shape as `psmr_sim::check::client_session`,
/// so the shared checker applies unchanged.
fn session(addr: String, c: u64, ops: u64, t0: Instant) -> Vec<(u64, OpRecord)> {
    let conn = connect_with_retry(&addr, 1000 + c, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("session {c}: connect {addr}: {e}"));
    session_conn(conn, c, ops, t0)
}

/// The session loop over an already-built client — so chaos tests can
/// run the same workload through a failover set or a shortened
/// per-try timeout.
fn session_conn(mut conn: NodeClient, c: u64, ops: u64, t0: Instant) -> Vec<(u64, OpRecord)> {
    let mut records = Vec::new();
    let kv = |conn: &mut NodeClient, op: KvOp| {
        let result = conn
            .execute(op.command(), op.encode(), Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("session {c}: {op:?} failed: {e}"));
        KvResult::decode(&result)
    };
    for i in 0..ops {
        let key = (c * 3 + i) % KEYS;
        let invoked = t0.elapsed().as_nanos() as u64;
        let op = if (i + c).is_multiple_of(3) {
            let value = c * 1_000_000 + i;
            assert_eq!(kv(&mut conn, KvOp::Update { key, value }), KvResult::Ok);
            RegisterOp::Write { value }
        } else {
            match kv(&mut conn, KvOp::Read { key }) {
                KvResult::Value(v) => RegisterOp::Read { value: Some(v) },
                other => panic!("session {c}: read returned {other:?}"),
            }
        };
        let returned = t0.elapsed().as_nanos() as u64;
        records.push((
            key,
            OpRecord {
                invoked,
                returned,
                op,
            },
        ));
    }
    records
}

fn run_sessions(plan: Vec<(String, u64)>, ops: u64, t0: Instant) -> Vec<(u64, OpRecord)> {
    let handles: Vec<_> = plan
        .into_iter()
        .map(|(addr, c)| std::thread::spawn(move || session(addr, c, ops, t0)))
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("session thread"))
        .collect()
}

/// One admin command against a live node, with a hard failure when the
/// endpoint stays unreachable or silent — mid-run observability must
/// work. Brief retries absorb the instant between a node answering
/// clients and binding its admin listener.
fn scrape(addr: &str, command: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match admin::query(addr, command, Duration::from_secs(5)) {
            Ok(payload) => return payload,
            Err(e) if Instant::now() >= deadline => {
                panic!("admin scrape {command} at {addr}: {e}")
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// First integer after `key` (admin payloads render fields as `key=N`
/// or `key N`).
fn int_after(text: &str, key: &str) -> u64 {
    let at = text
        .find(key)
        .unwrap_or_else(|| panic!("`{key}` missing from admin payload:\n{text}"))
        + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` not followed by an integer:\n{text}"))
}

/// Non-panicking variant of [`int_after`] for counters that may not
/// exist yet (a counter is only rendered once first incremented).
fn try_int_after(text: &str, key: &str) -> Option<u64> {
    let at = text.find(key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One `chaos ...` admin verb against a live node, asserting it was
/// accepted.
fn chaos(admin_addr: &str, args: &str) {
    let reply = scrape(admin_addr, &format!("chaos {args}"));
    assert!(
        reply.starts_with("ok"),
        "chaos {args} at {admin_addr} rejected: {reply}"
    );
}

/// Polls a node's `status` until its health verdict matches `want`.
fn await_health(admin_addr: &str, want: &str) {
    let needle = format!("health {want}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = scrape(admin_addr, "status");
        if status.contains(&needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "node at {admin_addr} never reported `{needle}`:\n{status}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Mean client-side end-to-end latency over a batch of session records.
fn mean_e2e_ns(records: &[(u64, OpRecord)]) -> u64 {
    let sum: u64 = records.iter().map(|(_, r)| r.returned - r.invoked).sum();
    sum / records.len().max(1) as u64
}

/// The `interval <name> ...` payload line of an admin `trace` response.
fn interval_line<'a>(trace: &'a str, name: &str) -> &'a str {
    trace
        .lines()
        .find(|l| l.starts_with(&format!("interval {name} ")))
        .unwrap_or_else(|| panic!("interval {name} missing from trace payload:\n{trace}"))
}

/// Mean chain latency of exactly the lifecycles folded *between* two
/// cumulative trace scrapes: per interval, (total_after − total_before)
/// / (count_after − count_before), summed over the telescoping chain.
/// Windowing keeps cheap idle-era sequences (boot probes, idle
/// checkpoints) from diluting the mean the loaded phase is checked
/// against.
fn windowed_chain_ns(before: &str, after: &str) -> u64 {
    use psmr_common::trace::{CHAIN_INTERVALS, INTERVAL_NAMES};
    let mut sum = 0u64;
    for name in &INTERVAL_NAMES[..CHAIN_INTERVALS] {
        let totals = |trace| {
            let line = interval_line(trace, name);
            let count = int_after(line, "count=");
            (count, count * int_after(line, "mean_ns="))
        };
        let (c0, s0) = totals(before);
        let (c1, s1) = totals(after);
        assert!(c1 > c0, "no new `{name}` samples between scrapes:\n{after}");
        sum += s1.saturating_sub(s0) / (c1 - c0);
    }
    sum
}

/// One trace-attribution measurement round: snapshot the followers'
/// cumulative trace reports, drive one closed-loop session per node,
/// and require the chains each follower folded *inside* that window
/// (prefix adopted off the wire + local execution stamps) to attribute
/// >= 90% of the orderer session's measured client end-to-end latency.
///
/// The orderer session is the latency reference because its ops have no
/// relay-forward leg in front of the chain's `Submitted` anchor; the
/// follower sessions keep all three client planes and the relay path
/// under load during the window. Completed ops are appended to
/// `records` even when the round falls short — they are real history
/// for the linearizability check.
fn attribution_round(
    deploy: &Deployment,
    round: u64,
    t0: Instant,
    records: &mut Vec<(u64, OpRecord)>,
) -> Result<(), String> {
    let trace_before: Vec<String> = (1..3)
        .map(|id| scrape(deploy.admin_addr(id), "trace"))
        .collect();

    let sessions: Vec<Vec<(u64, OpRecord)>> = (0..3)
        .map(|c| {
            let addr = deploy.client_addr(c as usize).to_string();
            let client = 30 + round * 3 + c;
            std::thread::spawn(move || session(addr, client, 16, t0))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("attribution session"))
        .collect();
    let measured_ns = mean_e2e_ns(&sessions[0]);

    let mut result = Ok(());
    for (i, id) in (1..3).enumerate() {
        let before = &trace_before[i];
        let folded_before = int_after(before, "traced ");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut last_folded = 0;
        let after = loop {
            let after = scrape(deploy.admin_addr(id), "trace");
            let folded = int_after(&after, "traced ");
            // Closed-loop sessions have <= 3 ops in flight, so the
            // round's 48 ops span at least 16 batches: a handful of new
            // folds proves the follower kept chaining under load. Wait
            // for the count to settle so the tail batches (in flight
            // when the sessions returned) are inside the window too.
            if folded >= folded_before + 8 && folded == last_folded {
                break after;
            }
            last_folded = folded;
            assert!(
                Instant::now() < deadline,
                "follower {id} folded no new chains under load:\n{after}"
            );
            std::thread::sleep(Duration::from_millis(100));
        };
        let chain_ns = windowed_chain_ns(before, &after);
        let attributed = chain_ns as f64 / measured_ns as f64 * 100.0;
        println!(
            "follower {id}: windowed chain {chain_ns}ns attributes {attributed:.1}% \
             of the measured {measured_ns}ns mean end-to-end"
        );
        if result.is_ok() && attributed < 90.0 {
            result = Err(format!(
                "follower {id} chain attributes {attributed:.1}% of the measured \
                 {measured_ns}ns mean end-to-end (windowed chain {chain_ns}ns):\n{after}"
            ));
        }
    }
    for s in sessions {
        records.extend(s);
    }
    result
}

#[test]
fn three_process_deployment_survives_sigkill_and_rejoins_via_state_transfer() {
    let _serial = deployment_lock();
    let mut deploy = deployment("smoke");
    for id in 0..3 {
        deploy.spawn_node(id, &format!("n{id}.log"));
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }

    let t0 = Instant::now();
    let mut records = Vec::new();

    // Phase 1 doubles as the trace-attribution measurement. Bounded
    // retries absorb transient scheduler bursts — on a shared box a
    // single descheduled executor tick inflates one round's tails by
    // milliseconds — without weakening the >= 90% bar a quiet round
    // must meet. Every round's ops feed the linearizability history
    // either way.
    let mut attribution = Err(String::from("no attribution round ran"));
    for round in 0..3 {
        attribution = attribution_round(&deploy, round, t0, &mut records);
        match &attribution {
            Ok(()) => break,
            Err(shortfall) => println!("attribution round {round} fell short: {shortfall}"),
        }
    }
    if let Err(shortfall) = attribution {
        panic!("cross-process trace attribution failed in 3 rounds: {shortfall}");
    }

    // Mid-run observability: every node's admin endpoint answers with
    // peer-labeled mesh counters and a coherent status while load ran.
    for id in 0..3 {
        let metrics = scrape(deploy.admin_addr(id), "metrics");
        assert!(metrics.contains("# counters"), "node {id}: {metrics}");
        assert!(
            metrics.contains("{peer="),
            "node {id} has no peer-labeled mesh counters:\n{metrics}"
        );
        let status = scrape(deploy.admin_addr(id), "status");
        assert!(status.contains(&format!("node {id}")), "{status}");
        assert!(status.contains("durable_seq="), "{status}");
        let role = if id == 0 {
            "role orderer"
        } else {
            "role follower"
        };
        assert!(status.contains(role), "node {id}: {status}");
    }

    // The merged operator view reaches every node too.
    let table = ops::run_ops(&deploy.cluster, Duration::from_secs(5)).expect("ops scrape");
    assert!(
        table.contains("orderer") && table.contains("follower") && !table.contains("unreachable"),
        "ops table incomplete:\n{table}"
    );

    // Force a checkpoint through the client plane: once acked, node 0
    // has snapshotted and trimmed its stream, so the wiped follower's
    // rejoin below *must* go through TCP state transfer.
    let mut admin =
        connect_with_retry(deploy.client_addr(0), 999, Duration::from_secs(10)).expect("admin");
    let ckpt = force_checkpoint(&mut admin, Duration::from_secs(30)).expect("checkpoint acked");
    assert!(ckpt >= 1, "checkpoint driver produced id {ckpt}");

    // Phase 2: load on the surviving nodes, and SIGKILL node 2 mid-load.
    let phase2: Vec<_> = (0..2)
        .map(|n| {
            let addr = deploy.client_addr(n).to_string();
            let c = 10 + n as u64;
            std::thread::spawn(move || session(addr, c, 24, t0))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    deploy.kill_node(2);
    for h in phase2 {
        records.extend(h.join().expect("phase-2 session"));
    }

    // Restart node 2 with a wiped data directory: its only way back is
    // a checkpoint fetched from a live peer over TCP.
    let n2_data = deploy.cluster.nodes[2].data_dir.clone();
    std::fs::remove_dir_all(&n2_data).expect("wipe node 2 data dir");
    deploy.spawn_node(2, "n2-restart.log");
    await_serving(deploy.client_addr(2), 950);

    // Phase 3: all three nodes again, including the rejoined one.
    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), 20 + c))
            .collect(),
        16,
        t0,
    ));

    // The restarted incarnation really took the transfer path.
    let restart_log =
        std::fs::read_to_string(deploy.logs.join("n2-restart.log")).expect("read restart log");
    assert!(
        restart_log.contains("state-transfer ok"),
        "rejoined node did not report a completed state transfer; logs in {}",
        deploy.logs.display()
    );

    // The flight recorder of the restarted incarnation captured the
    // rejoin: the state-transfer event as structured JSONL, and mesh
    // connect activity in its metrics snapshots.
    let flight = std::fs::read_to_string(n2_data.join("flight.jsonl")).expect("read n2 flight");
    assert!(
        flight.contains("state-transfer ok"),
        "flight recorder missed the state transfer:\n{flight}"
    );
    for line in flight.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"ts_ms\":"),
            "malformed flight-recorder line: {line}"
        );
    }
    // Search the whole file, not the newest line: the snapshotter may
    // be mid-append, leaving a torn final line. And poll briefly — a
    // fast rejoin can reach this read before the recorder has
    // snapshotted the mesh dialer's first connect.
    let n2_metrics_path = n2_data.join("node2_metrics.jsonl");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = std::fs::read_to_string(&n2_metrics_path).unwrap_or_default();
        if body.contains("\"net_connects") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted follower's metrics JSONL shows no mesh connects:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // And the surviving orderer counted a reconnect to the node's new
    // incarnation on its peer-labeled dialer counters.
    let n0_metrics = scrape(deploy.admin_addr(0), "metrics");
    assert!(
        int_after(&n0_metrics, "net_reconnects{peer=2} ") >= 1,
        "orderer never re-dialed the restarted follower:\n{n0_metrics}"
    );

    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "cross-incarnation history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }

    // Keep the log dir only on failure paths above; a green run cleans
    // up — unless CI asked to keep the flight recorders for upload.
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// The boot-time catch-up path: a follower that starts *after* the
/// orderer has already checkpointed and trimmed must also rebuild via
/// transfer — and a client session against it still linearizes.
#[test]
fn late_follower_bootstraps_through_state_transfer() {
    let _serial = deployment_lock();
    let mut deploy = deployment("late");
    deploy.spawn_node(0, "n0.log");
    deploy.spawn_node(1, "n1.log");
    await_serving(deploy.client_addr(0), 900);
    await_serving(deploy.client_addr(1), 901);

    let t0 = Instant::now();
    let mut records = run_sessions(
        vec![
            (deploy.client_addr(0).to_string(), 0),
            (deploy.client_addr(1).to_string(), 1),
        ],
        12,
        t0,
    );
    let mut admin =
        connect_with_retry(deploy.client_addr(0), 999, Duration::from_secs(10)).expect("admin");
    force_checkpoint(&mut admin, Duration::from_secs(30)).expect("checkpoint acked");

    deploy.spawn_node(2, "n2.log");
    await_serving(deploy.client_addr(2), 950);
    records.extend(run_sessions(
        vec![(deploy.client_addr(2).to_string(), 20)],
        12,
        t0,
    ));

    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "late-follower history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// Chaos battery, part 1 — a one-way partition: the orderer's egress to
/// follower 1 is withheld at the mesh (the reverse direction still
/// flows). The healthy majority keeps ordering, the cut-off follower
/// reports `degraded` (and the ops table shows it), stale reads against
/// it still answer locally with an honest staleness tag, and healing
/// the link flushes the withheld backlog in order — the combined
/// history spanning the whole fault epoch stays linearizable.
#[test]
fn chaos_one_way_partition_degrades_follower_then_heals() {
    let _serial = deployment_lock();
    let mut deploy = deployment("chaos-part");
    for id in 0..3 {
        deploy.spawn_node_with(id, &format!("n{id}.log"), &["--degraded-after-ms", "1000"]);
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }
    let t0 = Instant::now();
    let mut records = run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), c))
            .collect(),
        8,
        t0,
    );

    chaos(deploy.admin_addr(0), "set 1 partition=out");
    let live = scrape(deploy.admin_addr(0), "chaos get");
    assert!(
        live.contains("peer 1") && live.contains("partition=out"),
        "chaos get does not reflect the set policy:\n{live}"
    );

    await_health(deploy.admin_addr(1), "degraded");
    assert!(
        scrape(deploy.admin_addr(0), "status").contains("health ok"),
        "the orderer must never report degraded"
    );
    assert!(
        scrape(deploy.admin_addr(2), "status").contains("health ok"),
        "the unpartitioned follower degraded too"
    );
    let m0 = scrape(deploy.admin_addr(0), "metrics");
    assert!(
        int_after(&m0, "chaos_frames_partitioned{peer=1} ") >= 1,
        "withheld frames invisible in the injecting node's counters:\n{m0}"
    );
    let table = ops::run_ops(&deploy.cluster, Duration::from_secs(5)).expect("ops scrape");
    assert!(
        table.contains("degraded"),
        "ops table hides the degraded follower:\n{table}"
    );

    // Ordering continues on the healthy majority while the link is cut.
    records.extend(run_sessions(
        vec![
            (deploy.client_addr(0).to_string(), 10),
            (deploy.client_addr(2).to_string(), 12),
        ],
        8,
        t0,
    ));

    // The partitioned follower still answers stale reads from its local
    // store, tagged with how far behind it has fallen.
    let mut stale_conn = NodeClient::connect(deploy.client_addr(1), 777).expect("stale conn");
    let op = KvOp::Read { key: 0 };
    let (stale, body) = stale_conn
        .execute_stale(op.command(), &op.encode(), Duration::from_secs(10))
        .expect("stale read against a degraded follower");
    assert!(
        stale >= Duration::from_millis(1000),
        "staleness tag {stale:?} is under the degradation bound the node already tripped"
    );
    assert!(
        matches!(KvResult::decode(&body), KvResult::Value(_)),
        "stale read returned a non-value"
    );
    let m1 = scrape(deploy.admin_addr(1), "metrics");
    assert!(
        int_after(&m1, "stale_reads_served ") >= 1,
        "stale read not counted:\n{m1}"
    );

    // Heal: the withheld backlog flushes in order and health recovers.
    chaos(deploy.admin_addr(0), "clear");
    assert!(
        scrape(deploy.admin_addr(0), "chaos get").contains("chaos none"),
        "clear left policy behind"
    );
    await_health(deploy.admin_addr(1), "ok");
    records.extend(run_sessions(
        vec![(deploy.client_addr(1).to_string(), 20)],
        8,
        t0,
    ));

    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "partition-epoch history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// Chaos battery, part 2 — frame corruption on the orderer→follower
/// link: a flipped byte must poison the receiver's decoder (never
/// surface a wrong frame), tear the connection down, and heal by
/// replaying the *uncorrupted* resend buffer on reconnect. All of it is
/// observable: `chaos_frames_corrupted` on the injector,
/// `net_decode_poisoned` on the victim, `net_frames_resent` and
/// `net_reconnects` on the healed link — and the history stays
/// linearizable across every torn connection.
#[test]
fn chaos_frame_corruption_recovers_by_replay() {
    let _serial = deployment_lock();
    let mut deploy = deployment("chaos-corrupt");
    for id in 0..3 {
        deploy.spawn_node(id, &format!("n{id}.log"));
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }
    let t0 = Instant::now();

    chaos(deploy.admin_addr(0), "set 1 corrupt=5");
    let mut records = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut round = 0u64;
    loop {
        // Drive load through the corrupted relay path; each round's ops
        // are real history for the final check.
        records.extend(run_sessions(
            vec![(deploy.client_addr(1).to_string(), 30 + round)],
            8,
            t0,
        ));
        round += 1;
        let m0 = scrape(deploy.admin_addr(0), "metrics");
        let m1 = scrape(deploy.admin_addr(1), "metrics");
        let corrupted = try_int_after(&m0, "chaos_frames_corrupted{peer=1} ").unwrap_or(0);
        let poisoned = try_int_after(&m1, "net_decode_poisoned{peer=0} ").unwrap_or(0);
        let resent = try_int_after(&m0, "net_frames_resent{peer=1} ").unwrap_or(0);
        let reconnects = try_int_after(&m0, "net_reconnects{peer=1} ").unwrap_or(0);
        if corrupted >= 1 && poisoned >= 1 && resent >= 1 && reconnects >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "corruption epoch never left its full counter trail: corrupted={corrupted} \
             poisoned={poisoned} resent={resent} reconnects={reconnects}"
        );
    }
    chaos(deploy.admin_addr(0), "clear");

    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), 50 + c))
            .collect(),
        8,
        t0,
    ));
    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "corruption-epoch history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// Chaos battery, part 3 — jittered delay on the relay link slows every
/// response past a deliberately short client try-timeout: the client
/// must retransmit under the *same* request id, and server-side dedup
/// must absorb the re-ordered duplicates so nothing executes twice —
/// closed-loop load stays linearizable even though every op was sent
/// more than once.
#[test]
fn chaos_delay_forces_retransmits_that_dedup_absorbs() {
    use psmr_common::metrics::{counters, global};
    let _serial = deployment_lock();
    let mut deploy = deployment("chaos-delay");
    for id in 0..3 {
        // Every ordered command costs *two* delayed frames on the slow
        // link (phase2a to the remote acceptor + the relay batch), so
        // the background checkpoint cadence must stay well under the
        // link's serialized capacity or the queue never drains.
        deploy.spawn_node_with(id, &format!("n{id}.log"), &["--checkpoint-ms", "2000"]);
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }
    let t0 = Instant::now();

    chaos(deploy.admin_addr(0), "set 1 delay_ms=120 jitter_ms=80");
    let deduped_before = try_int_after(
        &scrape(deploy.admin_addr(0), "metrics"),
        "requests_deduped ",
    )
    .unwrap_or(0);
    let retransmits_before = global().value(counters::REQUESTS_RETRANSMITTED);

    // Every op through follower 1 now takes >= 120ms (the relay leg is
    // delayed), so a 100ms first-try timeout guarantees at least one
    // retransmission per op; the client's doubling try window keeps the
    // duplicates bounded.
    let mut conn = NodeClient::connect(deploy.client_addr(1), 1300).expect("delay client");
    conn.set_try_timeout(Duration::from_millis(100));
    let mut records = session_conn(conn, 40, 8, t0);

    assert!(
        global().value(counters::REQUESTS_RETRANSMITTED) > retransmits_before,
        "the short try-timeout never retransmitted"
    );
    let m0 = scrape(deploy.admin_addr(0), "metrics");
    assert!(
        int_after(&m0, "chaos_frames_delayed{peer=1} ") >= 1,
        "delays invisible in the injector's counters:\n{m0}"
    );
    assert!(
        try_int_after(&m0, "requests_deduped ").unwrap_or(0) > deduped_before,
        "re-ordered duplicates were not absorbed by dedup:\n{m0}"
    );

    chaos(deploy.admin_addr(0), "clear");
    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), 50 + c))
            .collect(),
        8,
        t0,
    ));
    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "delay-epoch history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// Chaos battery, part 4 — the orderer is SIGKILLed and restarted (data
/// dir intact) while failover clients are mid-session. Every in-flight
/// request must complete without manual intervention: clients reconnect
/// and rotate through their failover set, retransmit under unchanged
/// request ids, the follower meshes replay queued submissions to the
/// restarted orderer, and dedup keeps re-ordered duplicates from
/// executing twice — proven by the cross-epoch linearizability check.
#[test]
fn chaos_orderer_restart_mid_session_heals_clients() {
    use psmr_common::metrics::{counters, global};
    let _serial = deployment_lock();
    let mut deploy = deployment("chaos-restart");
    for id in 0..3 {
        deploy.spawn_node(id, &format!("n{id}.log"));
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }
    let t0 = Instant::now();
    let reconnects_before = global().value(counters::CLIENT_RECONNECTS);

    // Three failover clients, each starting at a different node so one
    // is always talking to the orderer when it dies.
    let handles: Vec<_> = (0..3usize)
        .map(|c| {
            let addrs: Vec<String> = (0..3)
                .map(|i| deploy.client_addr((c + i) % 3).to_string())
                .collect();
            std::thread::spawn(move || {
                let mut conn = NodeClient::connect_multi(addrs, 1400 + c as u64);
                conn.set_try_timeout(Duration::from_millis(300));
                // Long sessions: healthy ops take single-digit
                // milliseconds, so the workload must be deep enough to
                // still be mid-flight when the orderer dies below.
                session_conn(conn, 60 + c as u64, 120, t0)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    deploy.kill_node(0);
    std::thread::sleep(Duration::from_millis(500));
    deploy.spawn_node(0, "n0-restart.log");

    let mut records = Vec::new();
    for h in handles {
        records.extend(h.join().expect("session across the orderer restart"));
    }
    assert!(
        global().value(counters::CLIENT_RECONNECTS) > reconnects_before,
        "no client self-healed across the restart"
    );

    for id in 0..3 {
        await_serving(deploy.client_addr(id), 960 + id as u64);
    }
    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), 70 + c))
            .collect(),
        8,
        t0,
    ));
    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "restart-epoch history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    if std::env::var_os("PSMR_KEEP_LOGS").is_none() {
        let _ = std::fs::remove_dir_all(logs);
    }
}

/// Sanity on the artifact the launcher writes: the generated config
/// round-trips through the parser the binaries load with.
#[test]
fn generated_cluster_config_round_trips() {
    let deploy = deployment("toml");
    let loaded =
        ClusterConfig::load(deploy.logs.join("cluster.toml")).expect("load generated config");
    assert_eq!(loaded, deploy.cluster);
    let _ = std::fs::remove_dir_all(&deploy.logs);
}
