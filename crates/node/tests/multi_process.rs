//! Socket-level battery: a real 3-process deployment on loopback TCP.
//!
//! Boots three `psmr-node` OS processes from a generated cluster
//! config, drives closed-loop kvstore client sessions against every
//! node, SIGKILLs a follower mid-load, restarts it with a **wiped data
//! directory** (forcing rejoin via TCP state transfer), and checks the
//! combined per-key history — spanning both incarnations — for
//! linearizability with the same checker the in-process tests use.
//!
//! Node logs land in `$TMPDIR/psmr-smoke-logs/` so CI can attach them
//! as artifacts when the test fails.

use psmr_core::linear::{OpRecord, RegisterOp};
use psmr_kvstore::{KvOp, KvResult};
use psmr_net::{ClusterConfig, NodeSpec};
use psmr_node::{connect_with_retry, force_checkpoint, NodeClient};
use psmr_sim::check::{check_linearizable, KEYS};
use std::fs::File;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills every spawned node on drop, so a panicking test never leaks
/// processes.
struct Deployment {
    children: Vec<Option<Child>>,
    cluster: ClusterConfig,
    logs: PathBuf,
}

impl Drop for Deployment {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Deployment {
    fn spawn_node(&mut self, id: usize, log_name: &str) {
        let log = File::create(self.logs.join(log_name)).expect("create node log");
        let err = log.try_clone().expect("clone log handle");
        let config = self.logs.join("cluster.toml");
        let child = Command::new(env!("CARGO_BIN_EXE_psmr-node"))
            .args(["--config", config.to_str().unwrap()])
            .args(["--id", &id.to_string()])
            .args(["--keys", &KEYS.to_string()])
            .args(["--checkpoint-ms", "200"])
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(err))
            .spawn()
            .expect("spawn psmr-node");
        self.children[id] = Some(child);
    }

    fn kill_node(&mut self, id: usize) {
        if let Some(mut child) = self.children[id].take() {
            child.kill().expect("SIGKILL node");
            child.wait().expect("reap node");
        }
    }

    fn client_addr(&self, id: usize) -> &str {
        &self.cluster.nodes[id].client_addr
    }
}

fn free_ports(n: usize) -> Vec<u16> {
    // Hold all listeners at once so the ports are pairwise distinct.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind a free port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

fn deployment(tag: &str) -> Deployment {
    let logs = std::env::temp_dir()
        .join("psmr-smoke-logs")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&logs);
    std::fs::create_dir_all(&logs).expect("create log dir");
    let ports = free_ports(6);
    let nodes = (0..3)
        .map(|i| NodeSpec {
            addr: format!("127.0.0.1:{}", ports[i]),
            client_addr: format!("127.0.0.1:{}", ports[3 + i]),
            data_dir: logs.join(format!("data-n{i}")),
        })
        .collect();
    let cluster = ClusterConfig { nodes };
    std::fs::write(logs.join("cluster.toml"), cluster.to_toml()).expect("write cluster config");
    Deployment {
        children: vec![None, None, None],
        cluster,
        logs,
    }
}

/// Blocks until the node answers a read through the ordered stream —
/// which implies its whole pipeline (mesh, relay/subscription, catch-up
/// including any state transfer, executor, client plane) is live.
fn await_serving(addr: &str, probe_client: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut conn) = connect_with_retry(addr, probe_client, Duration::from_secs(5)) {
            let op = KvOp::Read { key: 0 };
            if let Ok(result) = conn.execute(op.command(), op.encode(), Duration::from_secs(5)) {
                if matches!(KvResult::decode(&result), KvResult::Value(_)) {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "node at {addr} never came up serving"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One closed-loop session over the TCP client plane — the same op mix,
/// value numbering, and record shape as `psmr_sim::check::client_session`,
/// so the shared checker applies unchanged.
fn session(addr: String, c: u64, ops: u64, t0: Instant) -> Vec<(u64, OpRecord)> {
    let mut conn = connect_with_retry(&addr, 1000 + c, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("session {c}: connect {addr}: {e}"));
    let mut records = Vec::new();
    let kv = |conn: &mut NodeClient, op: KvOp| {
        let result = conn
            .execute(op.command(), op.encode(), Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("session {c}: {op:?} failed: {e}"));
        KvResult::decode(&result)
    };
    for i in 0..ops {
        let key = (c * 3 + i) % KEYS;
        let invoked = t0.elapsed().as_nanos() as u64;
        let op = if (i + c).is_multiple_of(3) {
            let value = c * 1_000_000 + i;
            assert_eq!(kv(&mut conn, KvOp::Update { key, value }), KvResult::Ok);
            RegisterOp::Write { value }
        } else {
            match kv(&mut conn, KvOp::Read { key }) {
                KvResult::Value(v) => RegisterOp::Read { value: Some(v) },
                other => panic!("session {c}: read returned {other:?}"),
            }
        };
        let returned = t0.elapsed().as_nanos() as u64;
        records.push((
            key,
            OpRecord {
                invoked,
                returned,
                op,
            },
        ));
    }
    records
}

fn run_sessions(plan: Vec<(String, u64)>, ops: u64, t0: Instant) -> Vec<(u64, OpRecord)> {
    let handles: Vec<_> = plan
        .into_iter()
        .map(|(addr, c)| std::thread::spawn(move || session(addr, c, ops, t0)))
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("session thread"))
        .collect()
}

#[test]
fn three_process_deployment_survives_sigkill_and_rejoins_via_state_transfer() {
    let mut deploy = deployment("smoke");
    for id in 0..3 {
        deploy.spawn_node(id, &format!("n{id}.log"));
    }
    for id in 0..3 {
        await_serving(deploy.client_addr(id), 900 + id as u64);
    }

    let t0 = Instant::now();
    let mut records = Vec::new();

    // Phase 1: closed-loop sessions against all three nodes.
    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), c))
            .collect(),
        16,
        t0,
    ));

    // Force a checkpoint through the client plane: once acked, node 0
    // has snapshotted and trimmed its stream, so the wiped follower's
    // rejoin below *must* go through TCP state transfer.
    let mut admin =
        connect_with_retry(deploy.client_addr(0), 999, Duration::from_secs(10)).expect("admin");
    let ckpt = force_checkpoint(&mut admin, Duration::from_secs(30)).expect("checkpoint acked");
    assert!(ckpt >= 1, "checkpoint driver produced id {ckpt}");

    // Phase 2: load on the surviving nodes, and SIGKILL node 2 mid-load.
    let phase2: Vec<_> = (0..2)
        .map(|n| {
            let addr = deploy.client_addr(n).to_string();
            let c = 10 + n as u64;
            std::thread::spawn(move || session(addr, c, 24, t0))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    deploy.kill_node(2);
    for h in phase2 {
        records.extend(h.join().expect("phase-2 session"));
    }

    // Restart node 2 with a wiped data directory: its only way back is
    // a checkpoint fetched from a live peer over TCP.
    let n2_data = deploy.cluster.nodes[2].data_dir.clone();
    std::fs::remove_dir_all(&n2_data).expect("wipe node 2 data dir");
    deploy.spawn_node(2, "n2-restart.log");
    await_serving(deploy.client_addr(2), 950);

    // Phase 3: all three nodes again, including the rejoined one.
    records.extend(run_sessions(
        (0..3)
            .map(|c| (deploy.client_addr(c as usize).to_string(), 20 + c))
            .collect(),
        16,
        t0,
    ));

    // The restarted incarnation really took the transfer path.
    let restart_log =
        std::fs::read_to_string(deploy.logs.join("n2-restart.log")).expect("read restart log");
    assert!(
        restart_log.contains("state-transfer ok"),
        "rejoined node did not report a completed state transfer; logs in {}",
        deploy.logs.display()
    );

    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "cross-incarnation history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }

    // Keep the log dir only on failure paths above; a green run cleans up.
    let logs = deploy.logs.clone();
    drop(deploy);
    let _ = std::fs::remove_dir_all(logs);
}

/// The boot-time catch-up path: a follower that starts *after* the
/// orderer has already checkpointed and trimmed must also rebuild via
/// transfer — and a client session against it still linearizes.
#[test]
fn late_follower_bootstraps_through_state_transfer() {
    let mut deploy = deployment("late");
    deploy.spawn_node(0, "n0.log");
    deploy.spawn_node(1, "n1.log");
    await_serving(deploy.client_addr(0), 900);
    await_serving(deploy.client_addr(1), 901);

    let t0 = Instant::now();
    let mut records = run_sessions(
        vec![
            (deploy.client_addr(0).to_string(), 0),
            (deploy.client_addr(1).to_string(), 1),
        ],
        12,
        t0,
    );
    let mut admin =
        connect_with_retry(deploy.client_addr(0), 999, Duration::from_secs(10)).expect("admin");
    force_checkpoint(&mut admin, Duration::from_secs(30)).expect("checkpoint acked");

    deploy.spawn_node(2, "n2.log");
    await_serving(deploy.client_addr(2), 950);
    records.extend(run_sessions(
        vec![(deploy.client_addr(2).to_string(), 20)],
        12,
        t0,
    ));

    if let Err(violation) = check_linearizable(&records) {
        panic!(
            "late-follower history is not linearizable: {violation}\nnode logs kept in {}",
            deploy.logs.display()
        );
    }
    let logs = deploy.logs.clone();
    drop(deploy);
    let _ = std::fs::remove_dir_all(logs);
}

/// Sanity on the artifact the launcher writes: the generated config
/// round-trips through the parser the binaries load with.
#[test]
fn generated_cluster_config_round_trips() {
    let deploy = deployment("toml");
    let loaded =
        ClusterConfig::load(deploy.logs.join("cluster.toml")).expect("load generated config");
    assert_eq!(loaded, deploy.cluster);
    let _ = std::fs::remove_dir_all(&deploy.logs);
}
