//! Workload generation for the evaluation (paper §VII).
//!
//! * [`dist::KeyDist`] — key-selection distributions: uniform (the default
//!   of §VI-B) and Zipfian with exponent 1 (the skewed workload of §VII-G).
//! * [`mix::KvMix`] — command mixes over the key-value store: read-only
//!   (§VII-C), insert/delete-only (§VII-D), mixed with a given percentage
//!   of dependent commands (§VII-F), and the 50/50 update/read skew
//!   workload (§VII-G).
//!
//! Generators are deterministic given a seed, so experiment runs are
//! repeatable.
//!
//! # Example
//!
//! ```
//! use psmr_workload::dist::KeyDist;
//! use psmr_workload::mix::KvMix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let dist = KeyDist::zipf(1_000_000, 1.0);
//! let mix = KvMix::mixed(0.1); // 0.1% dependent commands (Figure 6)
//! let op = mix.sample(&dist, &mut rng);
//! assert!(op.key() < 1_000_000);
//! ```

pub mod dist;
pub mod mix;

pub use dist::KeyDist;
pub use mix::KvMix;
